//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the slice of the `rand` 0.8 API that the
//! workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`]. The generator
//! is xoshiro256++ seeded through SplitMix64 — statistically strong,
//! deterministic per seed, and fast. Stream values differ from upstream
//! `SmallRng`; nothing in the workspace depends on the exact stream, only
//! on determinism and uniformity.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the subset gswitch uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, span)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone || zone == u64::MAX {
            return v % span;
        }
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator backing `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn rejection_is_uniform_over_small_span() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }
}
