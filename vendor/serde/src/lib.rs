//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! a deliberately small serialization framework under the `serde` name:
//! a JSON-shaped [`Value`] tree, [`Serialize`]/[`Deserialize`] traits
//! that convert to and from it, and re-exported derive macros (from the
//! sibling `serde_derive` stand-in) for structs with named fields and
//! enums with unit/struct/tuple variants — the shapes this workspace
//! actually serializes. Enum representation matches serde_json's
//! external tagging (`"Variant"` / `{"Variant": {...}}`), so files
//! written by a real-serde build parse identically.
//!
//! Differences from real serde, by design:
//! - No `Serializer`/`Deserializer` visitor machinery; everything goes
//!   through [`Value`].
//! - Non-finite floats serialize as `null` and deserialize back as NaN
//!   (real serde_json errors instead).
//! - `&'static str` deserializes by leaking the parsed string — only the
//!   seed's `Representative::paper_name` field relies on it, and only in
//!   tooling contexts where the leak is bounded and harmless.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, negative).
    Int(i64),
    /// Unsigned integer (JSON number without fraction/exponent).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as u64, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as i64, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Numeric view as f64 (integers widen; `null` reads as NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Short tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Convert a value into the [`Value`] tree.
pub trait Serialize {
    /// Produce the document tree for `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `self` out of a document tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Field extraction helper used by derived code: looks `name` up in an
/// object and deserializes it; a missing field deserializes from `null`
/// so `Option` fields may be absent.
pub fn __field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(f) => T::from_value(f).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

/// Tuple-variant element extraction helper used by derived code.
pub fn __elem<T: Deserialize>(v: &Value, idx: usize) -> Result<T, DeError> {
    let arr = v.as_array().ok_or_else(|| DeError(format!("expected array, found {}", v.kind())))?;
    let e = arr.get(idx).ok_or_else(|| DeError(format!("missing tuple element {idx}")))?;
    T::from_value(e).map_err(|e| DeError(format!("element {idx}: {e}")))
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| {
                    DeError(format!(concat!("expected ", stringify!($t), ", found {}"), v.kind()))
                })?;
                <$t>::try_from(u).map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| {
                    DeError(format!(concat!("expected ", stringify!($t), ", found {}"), v.kind()))
                })?;
                <$t>::try_from(i).map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError(format!("expected f64, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError(format!("expected bool, found {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // Leaks intentionally; see the module docs.
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr =
            v.as_array().ok_or_else(|| DeError(format!("expected array, found {}", v.kind())))?;
        if arr.len() != N {
            return Err(DeError(format!("expected array of {N}, found {}", arr.len())));
        }
        let mut out = [T::default(); N];
        for (slot, e) in out.iter_mut().zip(arr) {
            *slot = T::from_value(e)?;
        }
        Ok(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok((__elem(v, 0)?, __elem(v, 1)?))
    }
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl<K: fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hasher state.
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u8> = Some(3);
        let none: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&some.to_value()).unwrap(), Some(3));
        assert_eq!(Option::<u8>::from_value(&none.to_value()).unwrap(), None);
    }

    #[test]
    fn array_roundtrip() {
        let a = [1.5f64, 2.5, 3.5];
        let v = a.to_value();
        let b: [f64; 3] = Deserialize::from_value(&v).unwrap();
        assert_eq!(a, b);
        assert!(<[f64; 2]>::from_value(&v).is_err());
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(f64::from_value(&Value::UInt(4)).unwrap(), 4.0);
        assert_eq!(u32::from_value(&Value::Float(7.0)).unwrap(), 7);
        assert!(u32::from_value(&Value::Float(7.5)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn missing_field_is_none_for_option() {
        let obj = Value::Object(vec![]);
        let got: Option<u8> = __field(&obj, "absent").unwrap();
        assert_eq!(got, None);
        assert!(__field::<u8>(&obj, "absent").is_err());
    }
}
