//! Offline stand-in for `serde_json`.
//!
//! JSON text encoding/decoding over the vendored `serde` stand-in's
//! [`Value`] model. Output is deterministic (object order preserved) and
//! the parser accepts the full JSON grammar. One deliberate divergence:
//! non-finite floats serialize as `null` instead of erroring, and `null`
//! deserializes into `f64` as NaN — the workspace stores simulator
//! timings that are occasionally non-finite in degenerate configs, and
//! losing them to NaN is preferable to failing a whole save.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Build a [`Value`] from a JSON-ish literal. Covers the shapes this
/// workspace uses: `null`, flat `{"key": expr}` objects, `[expr, ...]`
/// arrays, and bare expressions (converted via [`Serialize`]). Unlike
/// the real `serde_json`, object/array literals do not nest — bind a
/// nested `json!` to a variable and interpolate it as an expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! conversion cannot fail")
    };
}

/// Encoding/decoding error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize any [`Serialize`] value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Convert to the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from the [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    Ok(T::from_value(&v)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a fractional marker so the value re-parses as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self.peek().ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}`, found `{}` at byte {}",
                b as char,
                got as char,
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek().ok_or_else(|| Error::new("unexpected end of input"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::new(format!("unexpected `{}` at byte {}", c as char, self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        c as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(pairs)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        c as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling.
                        if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                    }
                    c => return Err(Error::new(format!("invalid escape `\\{}`", c as char))),
                },
                c => return Err(Error::new(format!("raw control byte {c:#x} in string"))),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump()? as char;
            v = v * 16
                + c.to_digit(16).ok_or_else(|| Error::new(format!("invalid hex digit `{c}`")))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for s in ["null", "true", "false", "0", "-17", "3.5", "\"hi\\nthere\""] {
            let v = parse(s).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out);
            assert_eq!(parse(&out).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn roundtrip_structures() {
        let s = r#"{"a":[1,2.5,{"b":null}],"c":"x","d":{"e":[]}}"#;
        let v = parse(s).unwrap();
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_marker_survives() {
        // 4.0 must re-parse as a float, not an integer.
        let text = to_string(&4.0f64).unwrap();
        assert_eq!(text, "4.0");
        assert!(matches!(parse(&text).unwrap(), Value::Float(_)));
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![1u32, 2, 3];
        let text = to_string(&xs).unwrap();
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""A😀""#).unwrap();
        assert_eq!(v, Value::Str("A😀".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn nonfinite_floats_to_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
