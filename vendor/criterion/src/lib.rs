//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's benches use:
//! `Criterion`, `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId::from_parameter`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Cargo runs `harness = false` bench targets during both `cargo bench`
//! (with a `--bench` argument) and `cargo test` (without). Like real
//! criterion, this harness detects the missing `--bench` flag and
//! switches to a smoke-test mode that executes each benchmark body once
//! so `cargo test` stays fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark in measurement mode.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// How a batched iteration's input should be sized. Only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; batches could be large.
    SmallInput,
    /// Large setup output; run one routine call per setup call.
    LargeInput,
    /// Setup output per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a parameter's `Display` form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Build an id from a function name and a parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing collector handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    smoke_only: bool,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let n = if self.smoke_only { 1 } else { self.sample_size };
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..n {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if !self.smoke_only && Instant::now() > deadline {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let n = if self.smoke_only { 1 } else { self.sample_size };
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..n {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if !self.smoke_only && Instant::now() > deadline {
                break;
            }
        }
    }
}

fn report(name: &str, samples: &[Duration], smoke_only: bool) {
    if smoke_only {
        println!("bench {name}: ok (smoke)");
        return;
    }
    if samples.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    let mut us: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    us.sort_by(|a, b| a.total_cmp(b));
    let mean = us.iter().sum::<f64>() / us.len() as f64;
    let median = us[us.len() / 2];
    println!(
        "bench {name}: mean {mean:.2} us, median {median:.2} us, min {:.2} us, max {:.2} us ({} samples)",
        us[0],
        us[us.len() - 1],
        us.len()
    );
}

/// Top-level harness state.
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--bench` when invoked via `cargo bench`; its
        // absence means we are running under `cargo test`.
        let smoke_only = !std::env::args().any(|a| a == "--bench");
        Criterion { smoke_only }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 100, criterion: self }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: 100, smoke_only: self.smoke_only };
        f(&mut b);
        report(name, &b.samples, self.smoke_only);
        self
    }
}

/// A set of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            smoke_only: self.criterion.smoke_only,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b.samples, self.criterion.smoke_only);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &In),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            smoke_only: self.criterion.smoke_only,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.samples, self.criterion.smoke_only);
        self
    }

    /// End the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher { samples: Vec::new(), sample_size: 5, smoke_only: false };
        let mut count = 0u32;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.samples.len(), 5);
        assert_eq!(count, 5);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bencher { samples: Vec::new(), sample_size: 50, smoke_only: true };
        let mut count = 0u32;
        b.iter_batched(|| 1u32, |x| count += x, BatchSize::LargeInput);
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(4096).id, "4096");
        assert_eq!(BenchmarkId::new("expand", "push").id, "expand/push");
    }
}
