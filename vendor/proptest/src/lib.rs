//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest DSL the workspace's property
//! tests use: the `proptest!` macro (with `#![proptest_config(...)]`),
//! `Strategy` for integer/float ranges, tuples, `Just`,
//! `collection::vec`, `any::<bool>()` / `any::<f64>()`, the
//! `prop_flat_map` / `prop_filter` adapters, and the
//! `prop_assume!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its message but not a minimized input), and the RNG is seeded from
//! the test name, so runs are fully deterministic.

use std::ops::Range;

/// Everything the `proptest!` DSL needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Why a generated case did not produce a pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions were not met; resample.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

/// Runner configuration (`ProptestConfig::with_cases(n)`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Require `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary byte string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. `generate` returns `None` when the sample must be
/// rejected (e.g. a filter could not be satisfied).
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Feed each generated value into `f` to build a dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`; rejects after bounded retries.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Transform each generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let v = self.inner.generate(rng)?;
        (self.f)(v).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        for _ in 0..256 {
            let v = self.inner.generate(rng)?;
            if (self.pred)(&v) {
                return Some(v);
            }
        }
        let _ = self.whence;
        None
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                Some(self.start.wrapping_add((rng.next_u64() % span) as $t))
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                Some(($($s.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly reinterpret raw bits (covers NaN/inf/subnormals), with
        // a slice of small "ordinary" magnitudes like real proptest.
        if rng.next_u64().is_multiple_of(4) {
            (rng.next_f64() - 0.5) * 2e6
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Drive one property: draw cases until `config.cases` pass, panicking
/// on the first `Fail` and on reject exhaustion.
pub fn run_proptest<S, F>(config: ProptestConfig, name: &str, strat: S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = config.cases as u64 * 64 + 1024;
    while passed < config.cases {
        let Some(value) = strat.generate(&mut rng) else {
            rejected += 1;
            assert!(rejected <= max_rejects, "{name}: too many rejected samples ({rejected})");
            continue;
        };
        match f(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(rejected <= max_rejects, "{name}: too many rejected samples ({rejected})");
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(
                config,
                ::std::stringify!($name),
                ($($strat,)+),
                |($($pat,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(::std::stringify!($cond)),
            ));
        }
    };
}

/// Fail the property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn flat_map_dependent(v in (1usize..8).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..100, 0..16))
        })) {
            let (n, items) = v;
            prop_assert!((1..8).contains(&n));
            prop_assert!(items.len() < 16);
        }

        #[test]
        fn filter_holds(x in any::<f64>().prop_filter("finite", |v| v.is_finite())) {
            prop_assert!(x.is_finite());
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::from_name("t");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::from_name("t");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
