//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of the rayon API the workspace uses:
//! `par_iter` / `par_chunks` / `par_chunks_mut` on slices,
//! `into_par_iter` on integer ranges and vectors, and the adapter and
//! terminal methods (`map`, `filter`, `chunks`, `enumerate`, `fold`,
//! `reduce`, `collect`, `for_each`, `sum`, `count`).
//!
//! Execution model: every parallel iterator knows its remaining length
//! and can split itself at an index. Terminal operations split the chain
//! into one contiguous part per available core and run each part's
//! sequential iterator on a `std::thread::scope` thread, then combine
//! the per-part results in order. Semantics match rayon's for the
//! operations provided (ordered `collect`, unordered side effects); the
//! number of `fold` accumulators equals the number of parts rather than
//! rayon's adaptive split count, which `reduce` makes observationally
//! equivalent.

use std::ops::Range;

/// Everything a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Smallest number of items a worker thread is worth spawning for.
const MIN_ITEMS_PER_PART: usize = 256;

fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A splittable, exactly-sized parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;
    /// The sequential iterator driving one part.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Remaining item count (an upper bound downstream of `filter`).
    fn pi_len(&self) -> usize;

    /// Split into `[0, index)` and `[index, len)`.
    fn pi_split_at(self, index: usize) -> (Self, Self);

    /// Sequential drain of this part.
    fn into_seq(self) -> Self::SeqIter;

    // ---- adapters ----------------------------------------------------

    /// Map each item.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { inner: self, f }
    }

    /// Keep items satisfying the predicate.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send + Clone,
    {
        Filter { inner: self, p }
    }

    /// Group items into `Vec`s of `size` (last may be short). Chunk
    /// boundaries are global, exactly as in rayon.
    fn chunks(self, size: usize) -> Chunks<Self> {
        assert!(size > 0, "chunk size must be positive");
        Chunks { inner: self, size }
    }

    /// Pair each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self, base: 0 }
    }

    /// Per-part accumulation; combine the accumulators with [`reduce`].
    ///
    /// [`reduce`]: ParallelIterator::reduce
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Sync + Send + Clone,
        F: Fn(T, Self::Item) -> T + Sync + Send + Clone,
    {
        Fold { inner: self, identity, fold_op }
    }

    // ---- terminals ---------------------------------------------------

    /// Collect into a container, preserving order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Run `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_parts(self, &|part: Self| part.into_seq().for_each(&f));
    }

    /// Sum all items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        run_parts(self, &|part: Self| part.into_seq().sum::<S>()).into_iter().sum()
    }

    /// Count surviving items.
    fn count(self) -> usize {
        run_parts(self, &|part: Self| part.into_seq().count()).into_iter().sum()
    }

    /// Combine all items with `op`, seeding each part with `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        run_parts(self, &|part: Self| part.into_seq().fold(identity(), &op))
            .into_iter()
            .reduce(&op)
            .unwrap_or_else(identity)
    }

    /// Minimum by a comparator.
    fn min_by<F>(self, cmp: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering + Sync + Send,
    {
        run_parts(self, &|part: Self| part.into_seq().min_by(&cmp))
            .into_iter()
            .flatten()
            .min_by(&cmp)
    }

    /// Maximum by a comparator.
    fn max_by<F>(self, cmp: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering + Sync + Send,
    {
        run_parts(self, &|part: Self| part.into_seq().max_by(&cmp))
            .into_iter()
            .flatten()
            .max_by(&cmp)
    }
}

/// Split `iter` into per-core parts, run `f` on each part on a scoped
/// thread, and return the per-part results in order.
fn run_parts<I, R>(iter: I, f: &(dyn Fn(I) -> R + Sync)) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
{
    let len = iter.pi_len();
    let nparts = num_threads().min(len.div_ceil(MIN_ITEMS_PER_PART).max(1)).max(1);
    if nparts == 1 {
        return vec![f(iter)];
    }
    let per = len.div_ceil(nparts).max(1);
    let mut parts = Vec::with_capacity(nparts);
    let mut rest = iter;
    let mut remaining = len;
    while remaining > per {
        let (left, right) = rest.pi_split_at(per);
        parts.push(left);
        rest = right;
        remaining -= per;
    }
    parts.push(rest);
    std::thread::scope(|s| {
        let handles: Vec<_> = parts.into_iter().map(|part| s.spawn(move || f(part))).collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// Containers buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the container, preserving item order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let parts = run_parts(iter, &|part: I| part.into_seq().collect::<Vec<_>>());
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// ---- adapters --------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type SeqIter = std::iter::Map<I::SeqIter, F>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.pi_split_at(index);
        (Map { inner: l, f: self.f.clone() }, Map { inner: r, f: self.f })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.inner.into_seq().map(self.f)
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<I, P> {
    inner: I,
    p: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Sync + Send + Clone,
{
    type Item = I::Item;
    type SeqIter = std::iter::Filter<I::SeqIter, P>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.pi_split_at(index);
        (Filter { inner: l, p: self.p.clone() }, Filter { inner: r, p: self.p })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.inner.into_seq().filter(self.p)
    }
}

/// See [`ParallelIterator::chunks`].
pub struct Chunks<I> {
    inner: I,
    size: usize,
}

impl<I> ParallelIterator for Chunks<I>
where
    I: ParallelIterator,
{
    type Item = Vec<I::Item>;
    type SeqIter = ChunksSeq<I::SeqIter>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len().div_ceil(self.size)
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.pi_split_at(index * self.size);
        (Chunks { inner: l, size: self.size }, Chunks { inner: r, size: self.size })
    }

    fn into_seq(self) -> Self::SeqIter {
        ChunksSeq { inner: self.inner.into_seq(), size: self.size }
    }
}

/// Sequential driver for [`Chunks`].
pub struct ChunksSeq<It> {
    inner: It,
    size: usize,
}

impl<It: Iterator> Iterator for ChunksSeq<It> {
    type Item = Vec<It::Item>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut chunk = Vec::with_capacity(self.size);
        for _ in 0..self.size {
            match self.inner.next() {
                Some(x) => chunk.push(x),
                None => break,
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
    base: usize,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: ParallelIterator,
{
    type Item = (usize, I::Item);
    type SeqIter = EnumerateSeq<I::SeqIter>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.pi_split_at(index);
        (Enumerate { inner: l, base: self.base }, Enumerate { inner: r, base: self.base + index })
    }

    fn into_seq(self) -> Self::SeqIter {
        EnumerateSeq { inner: self.inner.into_seq(), next: self.base }
    }
}

/// Sequential driver for [`Enumerate`], carrying the global base index.
pub struct EnumerateSeq<It> {
    inner: It,
    next: usize,
}

impl<It: Iterator> Iterator for EnumerateSeq<It> {
    type Item = (usize, It::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let x = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }
}

/// See [`ParallelIterator::fold`].
pub struct Fold<I, ID, F> {
    inner: I,
    identity: ID,
    fold_op: F,
}

impl<I, T, ID, F> ParallelIterator for Fold<I, ID, F>
where
    I: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Sync + Send + Clone,
    F: Fn(T, I::Item) -> T + Sync + Send + Clone,
{
    type Item = T;
    type SeqIter = std::iter::Once<T>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.pi_split_at(index);
        (
            Fold { inner: l, identity: self.identity.clone(), fold_op: self.fold_op.clone() },
            Fold { inner: r, identity: self.identity, fold_op: self.fold_op },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        let acc = self.inner.into_seq().fold((self.identity)(), self.fold_op);
        std::iter::once(acc)
    }
}

// ---- sources ---------------------------------------------------------

/// Conversion into a parallel iterator, mirroring rayon's trait.
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct ParRange<T> {
    range: Range<T>,
}

macro_rules! impl_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Iter = ParRange<$t>;
            type Item = $t;
            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { range: self }
            }
        }

        impl ParallelIterator for ParRange<$t> {
            type Item = $t;
            type SeqIter = Range<$t>;

            fn pi_len(&self) -> usize {
                (self.range.end.saturating_sub(self.range.start)) as usize
            }

            fn pi_split_at(self, index: usize) -> (Self, Self) {
                let mid = self
                    .range
                    .start
                    .checked_add(index as $t)
                    .unwrap_or(self.range.end)
                    .min(self.range.end);
                (
                    ParRange { range: self.range.start..mid },
                    ParRange { range: mid..self.range.end },
                )
            }

            fn into_seq(self) -> Range<$t> {
                self.range
            }
        }
    )*};
}

impl_par_range!(usize, u32, u64, i32, i64);

/// Parallel iterator over an owned vector.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    type Item = T;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn pi_len(&self) -> usize {
        self.items.len()
    }

    fn pi_split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index.min(self.items.len()));
        (self, ParVec { items: tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.items.into_iter()
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParSliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index.min(self.slice.len()));
        (ParSliceIter { slice: l }, ParSliceIter { slice: r })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// Parallel iterator over `size`-chunks of `&[T]`.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (ParChunks { slice: l, size: self.size }, ParChunks { slice: r, size: self.size })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.size)
    }
}

/// Parallel iterator over `size`-chunks of `&mut [T]`.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (ParChunksMut { slice: l, size: self.size }, ParChunksMut { slice: r, size: self.size })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.size)
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iteration.
    fn par_iter(&self) -> ParSliceIter<'_, T>;
    /// Parallel iteration over `size`-chunks.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunks { slice: self, size }
    }
}

/// `par_chunks_mut` on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iteration over exclusive `size`-chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

/// Run two closures, potentially in parallel (sequential here: the
/// workspace never calls this on hot paths).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v[7], 14);
    }

    #[test]
    fn filter_then_sum() {
        let s: u64 = (0..1_000u64).into_par_iter().filter(|&x| x % 2 == 0).sum();
        assert_eq!(s, (0..1_000).filter(|&x| x % 2 == 0).sum::<u64>());
    }

    #[test]
    fn chunks_are_globally_aligned() {
        let chunks: Vec<Vec<usize>> = (0..2_500usize).into_par_iter().chunks(512).collect();
        assert_eq!(chunks.len(), 5);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c[0], i * 512, "chunk {i} misaligned");
        }
        assert_eq!(chunks[4].len(), 2_500 - 4 * 512);
    }

    #[test]
    fn enumerate_has_global_indices() {
        let data = vec![7u8; 5_000];
        let pairs: Vec<(usize, &u8)> = data.par_iter().enumerate().collect();
        for (expect, (got, _)) in pairs.iter().enumerate() {
            assert_eq!(expect, *got);
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjointly() {
        let mut data = vec![0u32; 10_000];
        data.par_chunks_mut(256).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = ci as u32;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[256], 1);
        assert_eq!(data[9_999], (9_999 / 256) as u32);
    }

    #[test]
    fn fold_reduce_matches_sequential() {
        let data: Vec<u32> = (0..50_000).collect();
        let total: u64 = data
            .par_chunks(128)
            .fold(|| 0u64, |acc, chunk| acc + chunk.iter().map(|&x| x as u64).sum::<u64>())
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, (0..50_000u64).sum::<u64>());
    }

    #[test]
    fn reduce_on_map() {
        let (any, total) = (0..1_000usize)
            .into_par_iter()
            .map(|x| (x == 997, x as u64))
            .reduce(|| (false, 0), |(a, s1), (b, s2)| (a || b, s1 + s2));
        assert!(any);
        assert_eq!(total, (0..1_000u64).sum::<u64>());
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = (0..0u32).into_par_iter().collect();
        assert!(v.is_empty());
        let s: u64 = Vec::<u64>::new().into_par_iter().sum();
        assert_eq!(s, 0);
        let r = (0..0usize).into_par_iter().reduce(|| 42, |a, b| a + b);
        assert_eq!(r, 42);
    }
}
