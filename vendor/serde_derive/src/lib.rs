//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the vendored `serde` stand-in's `Value` model. Because the
//! sandbox has no crates.io access, this macro parses the item token
//! stream by hand instead of using `syn`/`quote`. Supported shapes —
//! exactly the ones this workspace derives on:
//!
//! - structs with named fields (non-generic),
//! - enums with unit, struct, and tuple variants (non-generic).
//!
//! Anything else (generics, tuple structs, unions) panics with a clear
//! message at expansion time rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive target.
struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Struct(Vec<String>),
    Tuple(usize),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, found {other:?}"),
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("derive stand-in does not support generic type `{name}`")
        }
        other => panic!("derive: expected braced body for `{name}`, found {other:?}"),
    };
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        k => panic!("derive stand-in cannot handle `{k} {name}`"),
    };
    Item { name, kind }
}

/// Parse `name: Type, ...` out of a braced field list, skipping
/// attributes and visibility; commas inside `<...>` or any bracket group
/// do not terminate a field.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes / visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive: expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a top-level `,` (angle-depth aware).
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive: expected variant name, found {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_elems(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Consume up to and including the trailing comma (also skips any
        // explicit discriminant, which we do not support semantically but
        // tolerate syntactically).
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Count top-level comma-separated elements of a tuple-variant body.
fn count_tuple_elems(body: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tt in body {
        saw_any = true;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

// ---- codegen ---------------------------------------------------------

fn obj_pairs(fields: &[String], access: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let pairs = obj_pairs(fields, |f| format!("&self.{f}"));
            format!("serde::Value::Object(::std::vec![{pairs}])")
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pairs = obj_pairs(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), serde::Value::Object(::std::vec![{pairs}]))]),"
                            )
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), serde::Serialize::to_value(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let elems: String = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), serde::Value::Array(::std::vec![{elems}]))]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: String =
                fields.iter().map(|f| format!("{f}: serde::__field(v, \"{f}\")?,")).collect();
            format!(
                "if !matches!(v, serde::Value::Object(_)) {{\n\
                     return ::std::result::Result::Err(serde::DeError(::std::format!(\n\
                         \"expected object for {name}, found {{}}\", v.kind())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),", vn = v.name)
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: serde::__field(inner, \"{f}\")?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),"
                            ))
                        }
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: String =
                                (0..*n).map(|i| format!("serde::__elem(inner, {i})?,")).collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({elems})),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(serde::DeError(::std::format!(\n\
                             \"unknown unit variant `{{}}` for {name}\", other))),\n\
                     }},\n\
                     serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => ::std::result::Result::Err(serde::DeError(::std::format!(\n\
                                 \"unknown variant `{{}}` for {name}\", other))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(serde::DeError(::std::format!(\n\
                         \"expected variant of {name}, found {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
