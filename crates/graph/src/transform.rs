//! Graph transformations: relabeling and permutation.
//!
//! Degree-descending relabeling is the classic GPU graph preprocessing
//! step (Gunrock and B40C both ship it): hubs get small ids, so sorted
//! queues and bitmap scans touch them with maximal locality, and TWC's
//! degree buckets become contiguous id ranges.

use crate::{Graph, GraphBuilder, VertexId};

/// Apply a vertex permutation: `perm[old] = new`. Weights follow their
/// edges. The permutation must be a bijection on `0..n`.
///
/// # Panics
/// Panics when `perm` is not a permutation of the vertex set.
pub fn permute(g: &Graph, perm: &[VertexId]) -> Graph {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation arity mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!((p as usize) < n && !seen[p as usize], "not a permutation");
        seen[p as usize] = true;
    }

    let csr = g.out_csr();
    let ws = g.out_weights();
    let mut b = GraphBuilder::with_capacity(n, g.num_edges());
    let b_ref = &mut b;
    for u in 0..n as VertexId {
        let r = csr.edge_range(u);
        for (i, &v) in csr.neighbors(u).iter().enumerate() {
            let (nu, nv) = (perm[u as usize], perm[v as usize]);
            match ws {
                Some(ws) => b_ref.push_weighted_edge(nu, nv, ws[r.start + i]),
                None => b_ref.push_edge(nu, nv),
            }
        }
    }
    // The input already stores both directions of every undirected edge;
    // re-symmetrizing would be redundant (dedup keeps it correct) but
    // directed graphs must stay directed.
    let b = b.symmetric(g.is_symmetric()).dedup(true).drop_self_loops(false);
    b.name(format!("{}-perm", g.name())).build()
}

/// Relabel vertices in descending out-degree order (stable: ties keep
/// their original relative order). Returns the relabeled graph and the
/// permutation used (`perm[old] = new`), so results can be mapped back.
pub fn relabel_by_degree(g: &Graph) -> (Graph, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
    let mut perm = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    let gp = permute(g, &perm);
    (gp.with_name(format!("{}-bydeg", g.name())), perm)
}

/// Extract the largest (weakly) connected component, relabeling its
/// vertices compactly in original id order. Returns the component graph
/// and the mapping `new_id -> old_id`. Benchmark preprocessing: traversal
/// metrics over a fragmented graph otherwise measure the fragment lottery
/// rather than the algorithm.
pub fn largest_component(g: &Graph) -> (Graph, Vec<VertexId>) {
    let n = g.num_vertices();
    // Label components by BFS flood (weak connectivity).
    let mut comp = vec![u32::MAX; n];
    let mut sizes: Vec<(u32, usize)> = Vec::new();
    for s in 0..n as VertexId {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        let mut q = std::collections::VecDeque::from([s]);
        comp[s as usize] = id;
        while let Some(u) = q.pop_front() {
            size += 1;
            let mut visit = |v: VertexId| {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = id;
                    q.push_back(v);
                }
            };
            for &v in g.out_csr().neighbors(u) {
                visit(v);
            }
            if !g.is_symmetric() {
                for &v in g.in_csr().neighbors(u) {
                    visit(v);
                }
            }
        }
        sizes.push((id, size));
    }
    let (big, big_size) = sizes.iter().max_by_key(|&&(_, s)| s).copied().unwrap_or((0, 0));

    // Compact relabeling of the winning component.
    let mut old_of_new = Vec::with_capacity(big_size);
    let mut new_of_old = vec![u32::MAX; n];
    for v in 0..n as VertexId {
        if comp[v as usize] == big {
            new_of_old[v as usize] = old_of_new.len() as VertexId;
            old_of_new.push(v);
        }
    }
    let csr = g.out_csr();
    let ws = g.out_weights();
    let mut b = GraphBuilder::new(big_size);
    for &old in &old_of_new {
        let r = csr.edge_range(old);
        for (i, &t) in csr.neighbors(old).iter().enumerate() {
            let nt = new_of_old[t as usize];
            if nt == u32::MAX {
                continue; // edge leaves the component (directed case)
            }
            match ws {
                Some(ws) => b.push_weighted_edge(new_of_old[old as usize], nt, ws[r.start + i]),
                None => b.push_edge(new_of_old[old as usize], nt),
            }
        }
    }
    let b = b.symmetric(g.is_symmetric()).drop_self_loops(false);
    (b.name(format!("{}-lcc", g.name())).build(), old_of_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn permutation_preserves_structure() {
        let g = gen::erdos_renyi(60, 200, 5);
        let perm: Vec<u32> = (0..60u32).map(|v| (v + 17) % 60).collect();
        let gp = permute(&g, &perm);
        assert_eq!(gp.num_vertices(), g.num_vertices());
        assert_eq!(gp.num_edges(), g.num_edges());
        // Degrees move with the permutation.
        for v in 0..60u32 {
            assert_eq!(g.out_degree(v), gp.out_degree(perm[v as usize]));
        }
        // Global statistics are permutation-invariant.
        assert_eq!(g.stats().gini, gp.stats().gini);
        assert_eq!(g.stats().max_degree, gp.stats().max_degree);
    }

    #[test]
    fn permutation_preserves_adjacency() {
        let g = gen::barabasi_albert(50, 3, 2);
        let perm: Vec<u32> = (0..50u32).rev().collect();
        let gp = permute(&g, &perm);
        for u in 0..50u32 {
            let mut want: Vec<u32> =
                g.out_csr().neighbors(u).iter().map(|&v| perm[v as usize]).collect();
            want.sort_unstable();
            assert_eq!(gp.out_csr().neighbors(perm[u as usize]), &want[..]);
        }
    }

    #[test]
    fn permutation_carries_weights() {
        let g = gen::with_random_weights(&gen::erdos_renyi(40, 100, 1), 16, 3);
        let perm: Vec<u32> = (0..40u32).map(|v| (v + 7) % 40).collect();
        let gp = permute(&g, &perm);
        assert!(gp.is_weighted());
        // Pick an edge and chase its weight through the permutation.
        let u = (0..40u32).find(|&v| g.out_degree(v) > 0).unwrap();
        let v = g.out_csr().neighbors(u)[0];
        let w = g.out_weights().unwrap()[g.out_csr().edge_range(u).start];
        let (nu, nv) = (perm[u as usize], perm[v as usize]);
        let pos = gp.out_csr().neighbors(nu).iter().position(|&x| x == nv).unwrap();
        let w2 = gp.out_weights().unwrap()[gp.out_csr().edge_range(nu).start + pos];
        assert_eq!(w, w2);
    }

    #[test]
    fn relabel_by_degree_puts_hubs_first() {
        let g = gen::barabasi_albert(200, 4, 9);
        let (gp, perm) = relabel_by_degree(&g);
        // New ids are degree-sorted.
        for v in 1..200u32 {
            assert!(gp.out_degree(v - 1) >= gp.out_degree(v), "not sorted at {v}");
        }
        // perm is consistent: old max-degree vertex becomes id 0.
        let old_hub = g.max_degree_vertex().unwrap();
        assert_eq!(perm[old_hub as usize], 0);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_bijection() {
        let g = gen::erdos_renyi(10, 20, 1);
        permute(&g, &[0; 10]);
    }

    #[test]
    fn largest_component_extracts_and_maps_back() {
        // Two components: a triangle {0,1,2} and an edge {3,4}.
        let g = crate::GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 0), (3, 4)]).build();
        let (lcc, old) = largest_component(&g);
        assert_eq!(lcc.num_vertices(), 3);
        assert_eq!(lcc.num_edges(), 6);
        assert_eq!(old, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity() {
        let g = gen::grid2d(8, 8, 0.0, 1);
        let (lcc, old) = largest_component(&g);
        assert_eq!(lcc.num_vertices(), g.num_vertices());
        assert_eq!(lcc.num_edges(), g.num_edges());
        assert_eq!(old.len(), 64);
        assert_eq!(lcc.out_csr(), g.out_csr());
    }

    #[test]
    fn largest_component_keeps_weights() {
        let g =
            crate::GraphBuilder::new(4).weighted_edges([(0, 1, 5), (2, 3, 9), (1, 0, 5)]).build();
        let (lcc, old) = largest_component(&g);
        assert_eq!(lcc.num_vertices(), 2);
        assert!(lcc.is_weighted());
        let w = lcc.out_weights().unwrap()[0];
        // Whichever pair won, its weight must have followed.
        let expect = if old[0] == 0 { 5 } else { 9 };
        assert_eq!(w, expect);
    }

    #[test]
    fn largest_component_on_sparse_er_shrinks() {
        // Far below the connectivity threshold: many fragments.
        let g = gen::erdos_renyi(400, 150, 8);
        let (lcc, _) = largest_component(&g);
        assert!(lcc.num_vertices() < g.num_vertices());
        assert!(lcc.num_vertices() >= 2);
        // The result is itself connected: one label in its CC.
        let labels = {
            // simple BFS check
            let mut seen = vec![false; lcc.num_vertices()];
            let mut q = std::collections::VecDeque::from([0u32]);
            seen[0] = true;
            let mut count = 1;
            while let Some(u) = q.pop_front() {
                for &v in lcc.out_csr().neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        count += 1;
                        q.push_back(v);
                    }
                }
            }
            count
        };
        assert_eq!(labels, lcc.num_vertices(), "LCC must be connected");
    }
}
