//! Synthetic graph generators.
//!
//! The paper trains and evaluates on 1,288 real graphs spanning five domains
//! (Table 2): social networks, web graphs, generated graphs, road networks,
//! and scientific-computing meshes. We cannot redistribute
//! networkrepository.com, so each domain gets a parameterized generator
//! whose outputs cover the same topology-statistic ranges the model keys on
//! (degree Gini, entropy, skew, diameter class, hub presence):
//!
//! | Domain | Generator | Character |
//! |---|---|---|
//! | SN social  | [`barabasi_albert`], [`rmat`] | power-law, hubs, small diameter |
//! | WG web     | [`rmat`] (skewed), [`copying_model`] | power-law + locality |
//! | GG generated | [`rmat`] (kron_g500 params), [`rgg`] | synthetic benchmarks |
//! | RN road    | [`grid2d`] | bounded degree, huge diameter |
//! | SC scientific | [`banded`] | near-regular stencil meshes |
//!
//! All generators are deterministic in their seed.

use crate::{Graph, GraphBuilder, VertexId, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi G(n, m): `m` undirected edges sampled uniformly.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        b.push_edge(u, v);
    }
    b.name(format!("er-{n}-{m}-s{seed}")).build()
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_per_vertex` existing vertices with probability proportional to degree.
/// Produces the hub-heavy power-law degree distribution typical of social
/// networks (soc-orkut, soc-pokec).
pub fn barabasi_albert(n: usize, m_per_vertex: usize, seed: u64) -> Graph {
    assert!(n > m_per_vertex && m_per_vertex >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    // `endpoints` holds every edge endpoint ever created; sampling an index
    // uniformly from it IS degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_per_vertex);
    let mut b = GraphBuilder::with_capacity(n, n * m_per_vertex);
    // Seed clique over the first m_per_vertex + 1 vertices.
    for u in 0..=m_per_vertex {
        for v in (u + 1)..=m_per_vertex {
            b.push_edge(u as VertexId, v as VertexId);
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }
    for u in (m_per_vertex + 1)..n {
        for _ in 0..m_per_vertex {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            b.push_edge(u as VertexId, t);
            endpoints.push(u as VertexId);
            endpoints.push(t);
        }
    }
    b.name(format!("ba-{n}-{m_per_vertex}-s{seed}")).build()
}

/// R-MAT / Kronecker generator (Graph500 style). `scale` gives `n = 2^scale`
/// vertices; `edge_factor` edges per vertex; `(a, b, c)` the recursive
/// quadrant probabilities (d = 1 − a − b − c). Graph500 uses
/// (0.57, 0.19, 0.19), giving kron_g500-like skew.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!((1..=30).contains(&scale));
    assert!(a + b + c < 1.0 + 1e-9, "quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        builder.push_edge(u as VertexId, v as VertexId);
    }
    builder.name(format!("rmat-{scale}-{edge_factor}-s{seed}")).build()
}

/// Graph500 reference parameters for [`rmat`].
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    rmat(scale, edge_factor, 0.57, 0.19, 0.19, seed)
        .with_name(format!("kron-{scale}-{edge_factor}-s{seed}"))
}

/// Linear-preferential copying model: a new vertex copies a fraction of a
/// random prototype's links, the web-graph growth process (web-uk,
/// web-wikipedia have this mixture of hubs and locality).
pub fn copying_model(n: usize, out_deg: usize, copy_prob: f64, seed: u64) -> Graph {
    assert!(n > out_deg + 1 && out_deg >= 1);
    assert!((0.0..=1.0).contains(&copy_prob));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * out_deg);
    // adjacency so far, for copying
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)] // u/f index several arrays
    for u in 0..=out_deg {
        for v in 0..u {
            b.push_edge(u as VertexId, v as VertexId);
            adj[u].push(v as VertexId);
        }
    }
    for u in (out_deg + 1)..n {
        let proto = rng.gen_range(0..u);
        for k in 0..out_deg {
            let t = if rng.gen::<f64>() < copy_prob && !adj[proto].is_empty() {
                adj[proto][rng.gen_range(0..adj[proto].len())]
            } else {
                rng.gen_range(0..u) as VertexId
            };
            if t as usize != u {
                b.push_edge(u as VertexId, t);
                adj[u].push(t);
            } else if k > 0 {
                // rare self-hit: retry by uniform pick
                let t2 = rng.gen_range(0..u) as VertexId;
                b.push_edge(u as VertexId, t2);
                adj[u].push(t2);
            }
        }
    }
    b.name(format!("web-{n}-{out_deg}-s{seed}")).build()
}

/// 2-D grid with `rows × cols` vertices, 4-neighborhood, a fraction
/// `defect_prob` of lattice links removed and a sparse set of random
/// "highway" shortcuts. Reproduces the roadNet-CA profile: degree ≈ 2–4,
/// enormous diameter, near-regular distribution.
pub fn grid2d(rows: usize, cols: usize, defect_prob: f64, seed: u64) -> Graph {
    assert!(rows >= 2 && cols >= 2);
    let n = rows * cols;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen::<f64>() >= defect_prob {
                b.push_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows && rng.gen::<f64>() >= defect_prob {
                b.push_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    // A few *local* shortcuts (ramps) to keep the graph connected despite
    // defects. They must stay local: uniform long-range links would
    // collapse the diameter, and the huge diameter (BFS depth ~550 on
    // roadNet-CA) is exactly the property that makes road networks the
    // fusion-friendly extreme of Fig. 1/9.
    let shortcuts = (n / 400).max(1);
    let reach = (cols / 4).max(2);
    for _ in 0..shortcuts {
        let r = rng.gen_range(0..rows);
        let c = rng.gen_range(0..cols);
        let dr = rng.gen_range(0..reach.min(rows));
        let dc = rng.gen_range(0..reach);
        let (r2, c2) = ((r + dr) % rows, (c + dc) % cols);
        if (r, c) != (r2, c2) {
            b.push_edge(id(r, c), id(r2, c2));
        }
    }
    b.name(format!("grid-{rows}x{cols}-s{seed}")).build()
}

/// Random geometric graph on the unit square: vertices connect when within
/// `radius`. Bucketed into a cell grid so generation is O(n · expected
/// degree). Matches rgg_n_2_24 (bounded degree ≈ 40, mesh-like, large
/// diameter).
pub fn rgg(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(n >= 2);
    assert!(radius > 0.0 && radius < 1.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let cells = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        grid[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cells + nx as usize] {
                    if (j as usize) <= i {
                        continue; // count each pair once
                    }
                    let (px, py) = pts[j as usize];
                    let (ddx, ddy) = (px - x, py - y);
                    if ddx * ddx + ddy * ddy <= r2 {
                        b.push_edge(i as VertexId, j);
                    }
                }
            }
        }
    }
    b.name(format!("rgg-{n}-s{seed}")).build()
}

/// Banded "stencil" graph: vertex `i` links to `i ± 1 .. i ± half_band`,
/// with a small dropout. This is the profile of assembled FEM matrices such
/// as sc-msdoor / sc-ldoor: near-constant degree, very low Gini.
pub fn banded(n: usize, half_band: usize, dropout: f64, seed: u64) -> Graph {
    assert!(n > half_band && half_band >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * half_band);
    for u in 0..n {
        for k in 1..=half_band {
            if u + k < n && rng.gen::<f64>() >= dropout {
                b.push_edge(u as VertexId, (u + k) as VertexId);
            }
        }
    }
    b.name(format!("band-{n}-{half_band}-s{seed}")).build()
}

/// Star graph: vertex 0 is a hub adjacent to all others — the extreme
/// hub-imbalance stress case for the STRICT load balancer.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    GraphBuilder::new(n).edges((1..n as VertexId).map(|i| (0, i))).name(format!("star-{n}")).build()
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side, each edge rewired with probability `beta`.
pub fn small_world(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(n > 2 * k && k >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k);
    for u in 0..n {
        for j in 1..=k {
            let mut v = (u + j) % n;
            if rng.gen::<f64>() < beta {
                v = rng.gen_range(0..n);
                if v == u {
                    v = (u + 1) % n;
                }
            }
            b.push_edge(u as VertexId, v as VertexId);
        }
    }
    b.name(format!("sw-{n}-{k}-s{seed}")).build()
}

/// Attach uniformly random integer weights in `1..=max_w` to an existing
/// graph, deterministic per (graph topology, seed). Symmetric edges get the
/// same weight in both directions (weights keyed on the unordered pair).
pub fn with_random_weights(g: &Graph, max_w: Weight, seed: u64) -> Graph {
    assert!(max_w >= 1);
    let csr = g.out_csr();
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
    for u in 0..g.num_vertices() as VertexId {
        for &v in csr.neighbors(u) {
            if u <= v || !g.is_symmetric() {
                // Hash the unordered pair with the seed -> deterministic and
                // symmetric without storing a map.
                let (a, z) = if u <= v { (u, v) } else { (v, u) };
                let h = splitmix64(seed ^ ((a as u64) << 32 | z as u64));
                let w = 1 + (h % max_w as u64) as Weight;
                b.push_weighted_edge(u, v, w);
            }
        }
    }
    let b = if g.is_symmetric() { b.symmetric(true) } else { b.symmetric(false) };
    b.name(format!("{}-w{max_w}", g.name())).build()
}

/// SplitMix64: tiny statelss mixer used for symmetric weight assignment.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_has_requested_shape() {
        let g = erdos_renyi(100, 300, 1);
        assert_eq!(g.num_vertices(), 100);
        // Symmetrized & deduped: strictly fewer than 600 but most survive.
        assert!(g.num_edges() > 400 && g.num_edges() <= 600);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(erdos_renyi(50, 100, 7).out_csr(), erdos_renyi(50, 100, 7).out_csr());
        assert_eq!(kronecker(8, 8, 3).out_csr(), kronecker(8, 8, 3).out_csr());
        assert_ne!(erdos_renyi(50, 100, 7).out_csr(), erdos_renyi(50, 100, 8).out_csr());
    }

    #[test]
    fn ba_is_hubby() {
        let g = barabasi_albert(2000, 4, 11);
        let s = g.stats();
        assert!(s.gini > 0.3, "BA should be unequal, gini={}", s.gini);
        assert!(s.max_degree > 20);
    }

    #[test]
    fn kron_is_more_skewed_than_er() {
        let k = kronecker(11, 8, 5);
        let e = erdos_renyi(2048, 2048 * 8, 5);
        assert!(k.stats().gini > e.stats().gini + 0.2);
    }

    #[test]
    fn grid_is_near_regular_low_gini() {
        let g = grid2d(50, 50, 0.05, 2);
        let s = g.stats();
        assert!(s.gini < 0.2, "grid gini={}", s.gini);
        assert!(s.max_degree <= 6);
        assert!(s.avg_degree > 2.0);
    }

    #[test]
    fn rgg_degree_bounded() {
        let g = rgg(2000, 0.05, 9);
        let s = g.stats();
        // Expected degree ≈ nπr² ≈ 15.7; max should stay modest.
        assert!(s.avg_degree > 4.0 && s.avg_degree < 40.0);
        assert!(s.gini < 0.35);
    }

    #[test]
    fn banded_is_regular() {
        let g = banded(1000, 24, 0.1, 4);
        let s = g.stats();
        assert!(s.gini < 0.1, "banded gini={}", s.gini);
        assert!((s.avg_degree - 43.2).abs() < 4.0, "avg={}", s.avg_degree);
    }

    #[test]
    fn star_is_the_extreme() {
        let g = star(500);
        assert_eq!(g.out_degree(0), 499);
        // Half of the degree mass sits on the hub: Gini ≈ 0.5 exactly.
        assert!((g.stats().gini - 0.5).abs() < 0.01, "gini={}", g.stats().gini);
    }

    #[test]
    fn small_world_connected_ring_backbone() {
        let g = small_world(300, 3, 0.1, 6);
        assert!(g.stats().avg_degree >= 4.0);
    }

    #[test]
    fn weights_symmetric_and_in_range() {
        let g = with_random_weights(&erdos_renyi(80, 200, 3), 64, 99);
        assert!(g.is_weighted());
        let csr = g.out_csr();
        let w = g.out_weights().unwrap();
        for u in 0..g.num_vertices() as VertexId {
            let r = csr.edge_range(u);
            for (idx, &v) in csr.neighbors(u).iter().enumerate() {
                let wu = w[r.start + idx];
                assert!((1..=64).contains(&wu));
                // find reverse edge weight
                let rv = csr.edge_range(v);
                let pos = csr.neighbors(v).iter().position(|&x| x == u).unwrap();
                assert_eq!(w[rv.start + pos], wu, "asymmetric weight {u}-{v}");
            }
        }
    }

    #[test]
    fn rmat_rejects_bad_probabilities() {
        let r = std::panic::catch_unwind(|| rmat(4, 2, 0.6, 0.3, 0.3, 1));
        assert!(r.is_err());
    }
}
