//! Graph substrate for the GSWITCH reproduction.
//!
//! This crate provides everything the autotuner needs to know about its
//! input *before* and *during* execution:
//!
//! - [`Csr`] — compressed sparse row adjacency, the canonical storage used by
//!   every kernel variant (push walks the out-CSR, pull walks the in-CSR).
//! - [`Graph`] — a symmetric (or directed) graph bundling out/in CSR views,
//!   optional edge weights, and precomputed [`stats::GraphStats`].
//! - [`builder::GraphBuilder`] — edge-list ingestion with deduplication,
//!   self-loop removal and symmetrization (the paper transforms all inputs to
//!   undirected form, §5.1 footnote 3).
//! - [`gen`] — synthetic generators covering the five dataset domains of the
//!   paper's Table 2 (social network, web graph, generated graph, road
//!   network, scientific computing).
//! - [`io`] — MatrixMarket / edge-list / DIMACS loaders so real
//!   networkrepository.com data can be substituted in, with size limits
//!   and a strict-vs-repair mode for untrusted files.
//! - [`validate`] — panic-free [`CsrValidator`] re-checking every CSR
//!   invariant, for graphs that arrive from outside the builder.
//! - [`stats`] — the "dataset attributes" slice of the paper's Table 1
//!   feature vector: N, M, average/σ/relative-range of degrees, Gini
//!   coefficient and relative edge-distribution entropy.
//! - [`corpus`] — the deterministic 644+644 graph training/evaluation corpus
//!   and scaled topological twins of the ten representative graphs.
//! - [`shard`] — edge-cut partitioning into K locally-renumbered shards
//!   with halo tables and per-shard stats, for the partitioned execution
//!   subsystem (`gswitch-shard`).

#![warn(missing_docs)]

pub mod builder;
pub mod corpus;
pub mod csr;
pub mod fingerprint;
pub mod gen;
pub mod io;
pub mod shard;
pub mod stats;
pub mod transform;
pub mod validate;

pub use builder::{BuildReport, GraphBuilder};
pub use csr::{Csr, EdgeRange};
pub use fingerprint::Fingerprint;
pub use shard::{LocalShard, ShardedCsr};
pub use stats::GraphStats;
pub use validate::{CsrValidator, ValidationReport};

/// Vertex identifier. 32 bits is enough for every graph in the paper's
/// corpus (largest: 16.8M vertices) and halves memory traffic versus u64 —
/// the same choice CUDA graph frameworks make.
pub type VertexId = u32;

/// Edge weights. The paper's SSSP uses integer weights; we follow suit.
pub type Weight = u32;

/// A graph ready for processing: out-edges, in-edges (shared when the graph
/// is symmetric), optional weights aligned with the out-CSR, and topology
/// statistics.
#[derive(Clone, Debug)]
pub struct Graph {
    out: std::sync::Arc<Csr>,
    incoming: std::sync::Arc<Csr>,
    /// Weights aligned with `out.targets()`; `in_weights` aligned with the
    /// in-CSR (only distinct when the graph is directed).
    out_weights: Option<std::sync::Arc<[Weight]>>,
    in_weights: Option<std::sync::Arc<[Weight]>>,
    stats: GraphStats,
    name: String,
}

impl Graph {
    /// Assemble a graph from prebuilt CSR parts. Prefer [`GraphBuilder`].
    pub fn from_parts(
        out: Csr,
        incoming: Option<Csr>,
        out_weights: Option<Vec<Weight>>,
        in_weights: Option<Vec<Weight>>,
        name: impl Into<String>,
    ) -> Self {
        let out = std::sync::Arc::new(out);
        let incoming = match incoming {
            Some(c) => std::sync::Arc::new(c),
            None => std::sync::Arc::clone(&out),
        };
        let stats = GraphStats::compute(&out);
        let out_weights = out_weights.map(std::sync::Arc::from);
        let in_weights = match in_weights {
            Some(w) => Some(std::sync::Arc::from(w)),
            // Symmetric graph sharing one CSR shares one weight array too.
            None if std::sync::Arc::ptr_eq(&out, &incoming) => out_weights.clone(),
            None => None,
        };
        Graph { out, incoming, out_weights, in_weights, stats, name: name.into() }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges stored in the out-CSR (an undirected edge
    /// counts twice, matching the paper's nnz convention).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// Out-adjacency (push direction).
    #[inline]
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// In-adjacency (pull direction). Identical to the out-CSR for
    /// symmetric graphs.
    #[inline]
    pub fn in_csr(&self) -> &Csr {
        &self.incoming
    }

    /// True when out- and in-CSR are the same object (undirected graph).
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        std::sync::Arc::ptr_eq(&self.out, &self.incoming)
    }

    /// Edge weights aligned with [`Csr::targets`] of the out-CSR.
    #[inline]
    pub fn out_weights(&self) -> Option<&[Weight]> {
        self.out_weights.as_deref()
    }

    /// Edge weights aligned with the in-CSR.
    #[inline]
    pub fn in_weights(&self) -> Option<&[Weight]> {
        self.in_weights.as_deref()
    }

    /// Whether the graph carries edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.out_weights.is_some()
    }

    /// Dataset attributes (Table 1, first block).
    #[inline]
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Human-readable dataset name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.incoming.degree(v)
    }

    /// Rename the dataset (used by the corpus to tag scaled twins).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The vertex with the highest out-degree; `None` on the empty graph.
    pub fn max_degree_vertex(&self) -> Option<VertexId> {
        (0..self.num_vertices() as VertexId).max_by_key(|&v| self.out.degree(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        // Path 0-1-2 plus edge 1-3.
        GraphBuilder::new(4).edges([(0, 1), (1, 2), (1, 3)]).symmetric(true).build()
    }

    #[test]
    fn from_parts_shares_csr_when_symmetric() {
        let g = tiny();
        assert!(g.is_symmetric());
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6); // 3 undirected edges stored twice
    }

    #[test]
    fn degrees_match_topology() {
        let g = tiny();
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(1), 3);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.max_degree_vertex(), Some(1));
    }

    #[test]
    fn directed_graph_distinguishes_in_out() {
        let g = GraphBuilder::new(3).edges([(0, 1), (0, 2), (1, 2)]).symmetric(false).build();
        assert!(!g.is_symmetric());
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(2), 2);
    }

    #[test]
    fn unweighted_graph_reports_no_weights() {
        let g = tiny();
        assert!(!g.is_weighted());
        assert!(g.out_weights().is_none());
    }
}
