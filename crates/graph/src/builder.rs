//! Edge-list ingestion: dedup, self-loop removal, symmetrization, weights.
//!
//! The paper transforms every input to undirected form (§5.1 footnote 3);
//! `symmetric(true)` (the default) mirrors that. Construction is a
//! counting-sort into CSR — O(n + m), parallel-friendly, no comparison sort
//! of the whole edge list.

use crate::csr::Csr;
use crate::{Graph, VertexId, Weight};

/// Accumulates edges and produces a [`Graph`].
#[derive(Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<Weight>,
    symmetric: bool,
    dedup: bool,
    drop_self_loops: bool,
    name: String,
}

impl GraphBuilder {
    /// A builder for a graph over vertices `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            weights: Vec::new(),
            symmetric: true,
            dedup: true,
            drop_self_loops: true,
            name: String::from("unnamed"),
        }
    }

    /// Reserve room for `m` edges up front.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Symmetrize on build (store each edge in both directions). Default on.
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Remove duplicate (parallel) edges on build. Default on.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Remove self loops on build. Default on.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Name the dataset.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Add one unweighted edge.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.push_edge(u, v);
        self
    }

    /// Add many unweighted edges.
    pub fn edges(mut self, it: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        for (u, v) in it {
            self.push_edge(u, v);
        }
        self
    }

    /// Add many weighted edges. Mixing weighted and unweighted pushes is a
    /// builder-misuse panic at `build` time.
    pub fn weighted_edges(
        mut self,
        it: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        for (u, v, w) in it {
            self.push_weighted_edge(u, v, w);
        }
        self
    }

    /// Non-consuming edge push (for loops that cannot use the fluent API).
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for {} vertices",
            self.n
        );
        self.edges.push((u, v));
    }

    /// Non-consuming weighted edge push.
    pub fn push_weighted_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.push_edge(u, v);
        self.weights.push(w);
    }

    /// Current number of pushed edges (pre-dedup/symmetrize).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges were pushed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalize into a [`Graph`], discarding the repair counts.
    pub fn build(self) -> Graph {
        self.build_with_report().0
    }

    /// Finalize into a [`Graph`] and report what was repaired along the
    /// way: self loops skipped and parallel edges collapsed by dedup.
    /// Counts are in *directed-edge* units — with `symmetric(true)` a
    /// duplicated undirected input edge shows up as two deduped
    /// directed edges, matching the `num_edges` convention everywhere
    /// else in this crate.
    pub fn build_with_report(self) -> (Graph, BuildReport) {
        let weighted = !self.weights.is_empty();
        assert!(
            !weighted || self.weights.len() == self.edges.len(),
            "mixed weighted and unweighted edges"
        );
        let GraphBuilder { n, edges, weights, symmetric, dedup, drop_self_loops, name } = self;
        let mut report = BuildReport::default();

        // Expand to directed triples (u, v, w).
        let mut triples: Vec<(VertexId, VertexId, Weight)> =
            Vec::with_capacity(edges.len() * if symmetric { 2 } else { 1 });
        for (i, &(u, v)) in edges.iter().enumerate() {
            if drop_self_loops && u == v {
                report.self_loops_dropped += 1;
                continue;
            }
            let w = if weighted { weights[i] } else { 1 };
            triples.push((u, v, w));
            if symmetric && u != v {
                triples.push((v, u, w));
            }
        }

        // Sort by (source, target) then dedup on the pair, keeping the first
        // weight seen — deterministic regardless of input order because the
        // sort is stable on the (u, v, w) triple.
        triples.sort_unstable();
        if dedup {
            let before = triples.len();
            triples.dedup_by_key(|t| (t.0, t.1));
            report.parallel_edges_deduped = before - triples.len();
        }

        // Counting pass into CSR.
        let m = triples.len();
        let mut offsets = vec![0u64; n + 1];
        for &(u, _, _) in &triples {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = Vec::with_capacity(m);
        let mut out_weights = if weighted { Vec::with_capacity(m) } else { Vec::new() };
        for &(_, v, w) in &triples {
            targets.push(v);
            if weighted {
                out_weights.push(w);
            }
        }
        let out = Csr::new(offsets, targets);

        if symmetric {
            let g = Graph::from_parts(out, None, weighted.then_some(out_weights), None, name);
            return (g, report);
        }

        // Directed: build the transpose for the pull direction.
        let mut in_offsets = vec![0u64; n + 1];
        for &(_, v, _) in &triples {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u64> = in_offsets[..n].to_vec();
        let mut in_targets = vec![0 as VertexId; m];
        let mut in_weights = if weighted { vec![0 as Weight; m] } else { Vec::new() };
        for &(u, v, w) in &triples {
            let c = &mut cursor[v as usize];
            in_targets[*c as usize] = u;
            if weighted {
                in_weights[*c as usize] = w;
            }
            *c += 1;
        }
        let incoming = Csr::new(in_offsets, in_targets);
        let g = Graph::from_parts(
            out,
            Some(incoming),
            weighted.then_some(out_weights),
            weighted.then_some(in_weights),
            name,
        );
        (g, report)
    }
}

/// What [`GraphBuilder::build_with_report`] had to repair, in
/// directed-edge units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildReport {
    /// Input edges skipped because source == target.
    pub self_loops_dropped: usize,
    /// Directed triples removed by dedup (parallel edges).
    pub parallel_edges_deduped: usize,
}

impl BuildReport {
    /// True when nothing needed repairing.
    pub fn is_clean(&self) -> bool {
        self.self_loops_dropped == 0 && self.parallel_edges_deduped == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrize_and_dedup() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 0), (0, 1), (1, 2)]).build();
        // Unique undirected edges {0,1},{1,2} stored both ways.
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_csr().neighbors(1), &[0, 2]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = GraphBuilder::new(2).edges([(0, 0), (0, 1)]).build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_csr().neighbors(0), &[1]);
    }

    #[test]
    fn self_loops_kept_when_asked() {
        let g = GraphBuilder::new(2).edges([(0, 0), (0, 1)]).drop_self_loops(false).build();
        assert_eq!(g.out_csr().neighbors(0), &[0, 1]);
    }

    #[test]
    fn directed_transpose_is_correct() {
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (3, 2)]).symmetric(false).build();
        assert_eq!(g.in_csr().neighbors(2), &[0, 3]);
        assert_eq!(g.in_csr().neighbors(0), &[] as &[VertexId]);
        assert_eq!(g.out_csr().neighbors(0), &[1, 2]);
    }

    #[test]
    fn weights_follow_edges_both_directions() {
        let g = GraphBuilder::new(3).weighted_edges([(0, 1, 5), (1, 2, 7)]).build();
        assert!(g.is_weighted());
        let csr = g.out_csr();
        let w = g.out_weights().unwrap();
        // Row 1 has neighbors [0, 2] with weights [5, 7].
        let r = csr.edge_range(1);
        assert_eq!(csr.neighbors(1), &[0, 2]);
        assert_eq!(&w[r], &[5, 7]);
    }

    #[test]
    fn directed_weights_transpose() {
        let g =
            GraphBuilder::new(3).weighted_edges([(0, 2, 9), (1, 2, 4)]).symmetric(false).build();
        let r = g.in_csr().edge_range(2);
        assert_eq!(g.in_csr().neighbors(2), &[0, 1]);
        assert_eq!(&g.in_weights().unwrap()[r], &[9, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        GraphBuilder::new(2).edge(0, 5);
    }

    #[test]
    fn build_report_counts_repairs() {
        let (g, rep) = GraphBuilder::new(3)
            .edges([(0, 0), (0, 1), (1, 0), (0, 1), (1, 2)])
            .build_with_report();
        // One self loop; {0,1} appears three times post-symmetrization
        // (0→1 twice + mirrored 1→0 twice + 1→0 mirrored back), so four
        // directed duplicates collapse away.
        assert_eq!(rep.self_loops_dropped, 1);
        assert_eq!(rep.parallel_edges_deduped, 4);
        assert!(!rep.is_clean());
        assert_eq!(g.num_edges(), 4);

        let (_, clean) = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build_with_report();
        assert!(clean.is_clean());
    }

    #[test]
    fn deterministic_under_permutation() {
        let e1 = [(2u32, 0u32), (0, 1), (1, 2)];
        let mut e2 = e1;
        e2.reverse();
        let g1 = GraphBuilder::new(3).edges(e1).build();
        let g2 = GraphBuilder::new(3).edges(e2).build();
        assert_eq!(g1.out_csr(), g2.out_csr());
    }
}
