//! Compressed sparse row adjacency storage.
//!
//! CSR is the storage every GPU graph framework in the paper's related-work
//! section uses (Gunrock, Enterprise, B40C, ...): a `row_offsets` array of
//! length `n + 1` and a `targets` array of length `m`. All kernel variants
//! in `gswitch-kernels` traverse this structure; the load-balancing pattern
//! (P3) differs only in *how* the `offsets` ranges are mapped onto warps.

use crate::VertexId;

/// Immutable CSR adjacency. Offsets are `u64` so graphs beyond 4B edges are
/// representable; targets are `u32` to halve bandwidth (cf. crate docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Box<[u64]>,
    targets: Box<[VertexId]>,
}

/// Half-open range of edge indices for one vertex: `start..end` indexes into
/// [`Csr::targets`] (and any parallel weight array).
pub type EdgeRange = std::ops::Range<usize>;

impl Csr {
    /// Build from raw parts, validating the CSR invariants:
    /// monotone offsets, `offsets[0] == 0`, `offsets[n] == targets.len()`,
    /// and every target in `0..n`.
    ///
    /// # Panics
    /// Panics when an invariant is violated — CSR construction happens once
    /// per dataset, so we prefer loud failure over a `Result` that every
    /// kernel would have to thread through.
    pub fn new(offsets: Vec<u64>, targets: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n+1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at zero");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as u64,
            "last offset must equal the edge count"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotonically non-decreasing"
        );
        let n = offsets.len() - 1;
        assert!(targets.iter().all(|&t| (t as usize) < n), "edge target out of range");
        Csr { offsets: offsets.into_boxed_slice(), targets: targets.into_boxed_slice() }
    }

    /// CSR with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Csr { offsets: vec![0u64; n + 1].into_boxed_slice(), targets: Box::new([]) }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Raw row offsets (`n + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw edge targets (`m` entries).
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        let v = v as usize;
        debug_assert!(v < self.num_vertices());
        (self.offsets[v + 1] - self.offsets[v]) as u32
    }

    /// Edge-index range of `v`, for indexing [`Self::targets`] and parallel
    /// weight arrays.
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> EdgeRange {
        let v = v as usize;
        self.offsets[v] as usize..self.offsets[v + 1] as usize
    }

    /// Neighbors of `v` as a slice.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.edge_range(v)]
    }

    /// Iterate `(source, target)` pairs in row order (edge-centric view,
    /// used by the GPUCC baseline).
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// The source vertex of edge index `e`, found by binary search on the
    /// offsets — this is exactly the `sorted_search` primitive the STRICT
    /// load balancer uses on device (Fig. 6).
    #[inline]
    pub fn edge_source(&self, e: usize) -> VertexId {
        debug_assert!(e < self.num_edges());
        let e = e as u64;
        // partition_point returns the first row whose offset exceeds e;
        // its predecessor owns the edge.
        let idx = self.offsets.partition_point(|&off| off <= e);
        (idx - 1) as VertexId
    }

    /// Maximum degree over all vertices (0 on an empty graph).
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices() as VertexId).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Sort each adjacency list in place (by target id). Builder output is
    /// already sorted; loaders use this after permutation tricks.
    pub fn sort_adjacency(&mut self) {
        let n = self.num_vertices();
        // Split borrow: offsets immutably, targets mutably.
        let offsets = &self.offsets;
        let targets = &mut self.targets;
        for v in 0..n {
            let r = offsets[v] as usize..offsets[v + 1] as usize;
            targets[r].sort_unstable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> {1,2}; 1 -> {2}; 2 -> {}; 3 -> {0}
        Csr::new(vec![0, 2, 3, 3, 4], vec![1, 2, 2, 0])
    }

    #[test]
    fn basic_accessors() {
        let c = sample();
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_edges(), 4);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(2), 0);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbors(3), &[0]);
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn edge_source_by_binary_search() {
        let c = sample();
        assert_eq!(c.edge_source(0), 0);
        assert_eq!(c.edge_source(1), 0);
        assert_eq!(c.edge_source(2), 1);
        assert_eq!(c.edge_source(3), 3);
    }

    #[test]
    fn iter_edges_row_order() {
        let c = sample();
        let edges: Vec<_> = c.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (3, 0)]);
    }

    #[test]
    fn empty_graph() {
        let c = Csr::empty(5);
        assert_eq!(c.num_vertices(), 5);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.degree(4), 0);
        assert_eq!(c.max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn rejects_decreasing_offsets() {
        Csr::new(vec![0, 3, 2, 4], vec![0, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        Csr::new(vec![0, 1], vec![7]);
    }

    #[test]
    #[should_panic(expected = "edge count")]
    fn rejects_offset_target_mismatch() {
        Csr::new(vec![0, 2], vec![0]);
    }

    #[test]
    fn sort_adjacency_orders_each_row() {
        let mut c = Csr::new(vec![0, 3, 4], vec![1, 0, 1, 0]);
        c.sort_adjacency();
        assert_eq!(c.neighbors(0), &[0, 1, 1]);
        assert_eq!(c.neighbors(1), &[0]);
    }
}
