//! Edge-cut CSR partitioning for sharded execution.
//!
//! [`ShardedCsr::partition`] splits a graph into `K` shards the way the
//! multi-device Gunrock lineage does (see PAPERS.md): each shard *owns* a
//! contiguous range of global vertices (ranges chosen to balance edge
//! count), keeps the out-edges of its owned vertices in a **local** CSR
//! with renumbered vertex ids, and appends a *halo* — the out-of-shard
//! vertices its edges point at — after the owned range. Halo rows are
//! empty (a shard never expands a vertex it does not own); updates that
//! land on halo vertices are the inter-shard frontier-exchange traffic
//! the sharded driver in `gswitch-core` routes and the cost model
//! charges.
//!
//! Each shard carries its own [`GraphStats`], so the autotuner's
//! Selector can tune kernel format and load-balance per shard — a
//! web-graph shard and a road-network shard of the same composite graph
//! get different configurations, exactly as if they were separate
//! datasets.

use crate::csr::Csr;
use crate::stats::GraphStats;
use crate::{Graph, VertexId};
use std::collections::BTreeSet;

/// One shard of a partitioned graph: a local renumbered sub-CSR plus the
/// tables that relate it back to the global vertex space.
///
/// Local vertex ids are laid out as `[0, n_owned)` for owned vertices
/// (global ids `owner_start + local`) followed by `[n_owned, n_local)`
/// for halo vertices (global ids in the sorted [`LocalShard::halo`]
/// table). Halo rows of the local CSR are empty by construction.
#[derive(Clone, Debug)]
pub struct LocalShard {
    id: u32,
    graph: Graph,
    n_owned: usize,
    owner_start: VertexId,
    halo_global: Vec<VertexId>,
    cut_edges: usize,
}

impl LocalShard {
    /// Shard index in `0..k`.
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The local graph: `n_owned + n_halo` vertices, owned rows carrying
    /// the owned vertices' out-edges (targets renumbered), halo rows
    /// empty.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Owned vertices (the first `n_owned` local ids).
    #[inline]
    pub fn n_owned(&self) -> usize {
        self.n_owned
    }

    /// Halo vertices referenced but not owned.
    #[inline]
    pub fn n_halo(&self) -> usize {
        self.halo_global.len()
    }

    /// Total local vertices (`n_owned + n_halo`).
    #[inline]
    pub fn n_local(&self) -> usize {
        self.n_owned + self.halo_global.len()
    }

    /// Global id of the first owned vertex.
    #[inline]
    pub fn owner_start(&self) -> VertexId {
        self.owner_start
    }

    /// Global ids owned by this shard, as a half-open range.
    #[inline]
    pub fn owner_range(&self) -> std::ops::Range<VertexId> {
        self.owner_start..self.owner_start + self.n_owned as VertexId
    }

    /// Sorted global ids of the halo vertices.
    #[inline]
    pub fn halo(&self) -> &[VertexId] {
        &self.halo_global
    }

    /// Out-edges whose target is a halo vertex — the shard's share of
    /// the edge cut, i.e. its worst-case per-super-step exchange fan-out.
    #[inline]
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// Whether `local` is a halo vertex (owned by another shard).
    #[inline]
    pub fn is_halo(&self, local: VertexId) -> bool {
        (local as usize) >= self.n_owned
    }

    /// Translate a local id to its global id.
    ///
    /// # Panics
    /// Panics when `local` is out of the shard's local range.
    #[inline]
    pub fn to_global(&self, local: VertexId) -> VertexId {
        let l = local as usize;
        if l < self.n_owned {
            self.owner_start + local
        } else {
            self.halo_global[l - self.n_owned]
        }
    }

    /// Translate a global id to this shard's local id, if the shard
    /// knows the vertex at all (owned or halo).
    #[inline]
    pub fn to_local(&self, global: VertexId) -> Option<VertexId> {
        if self.owner_range().contains(&global) {
            return Some(global - self.owner_start);
        }
        self.halo_global.binary_search(&global).ok().map(|i| (self.n_owned + i) as VertexId)
    }

    /// Per-shard dataset attributes over the local CSR (halo rows count
    /// as zero-degree vertices — they are part of the vertex space the
    /// shard's Filter kernel scans, so the Selector should see them).
    #[inline]
    pub fn stats(&self) -> &GraphStats {
        self.graph.stats()
    }
}

/// A graph partitioned into `K` edge-balanced shards with local
/// renumbering and halo tables. Built once per `(graph, K)` and shared
/// immutably (`Arc<ShardedCsr>`) across every query of a serving batch.
#[derive(Clone, Debug)]
pub struct ShardedCsr {
    shards: Vec<LocalShard>,
    /// `k + 1` cut points into the global vertex space; shard `s` owns
    /// `boundaries[s]..boundaries[s + 1]`.
    boundaries: Vec<VertexId>,
    num_vertices: usize,
    num_edges: usize,
    name: String,
}

impl ShardedCsr {
    /// Partition `g` into `k` shards of contiguous vertex-ownership
    /// ranges balanced by `degree + 1` weight (edges dominate, the `+ 1`
    /// keeps vertex-heavy sparse regions from collapsing into one
    /// shard). `k` greater than the vertex count is clamped so no shard
    /// owns zero vertices. Fails only on `k == 0`.
    pub fn partition(g: &Graph, k: u32) -> Result<ShardedCsr, String> {
        if k == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        let n = g.num_vertices();
        let m = g.num_edges();
        let k = (k as usize).min(n.max(1));
        let out = g.out_csr();

        // Greedy balanced cut: boundary s lands on the first vertex
        // where the cumulative weight reaches s/k of the total, with a
        // forced cut when exactly one vertex per remaining shard is left.
        let total = (m + n) as u64;
        let mut boundaries: Vec<VertexId> = Vec::with_capacity(k + 1);
        boundaries.push(0);
        let mut acc = 0u64;
        let mut next = 1usize;
        for v in 0..n {
            acc += out.degree(v as VertexId) as u64 + 1;
            let remaining_vertices = n - (v + 1);
            let remaining_cuts = k - next;
            if next < k
                && (acc * k as u64 >= total * next as u64 || remaining_vertices == remaining_cuts)
            {
                boundaries.push((v + 1) as VertexId);
                next += 1;
            }
        }
        // Degenerate inputs (n == 0 with k clamped to 1) fall through
        // with only the leading 0; pad any unplaced cuts at the end.
        while boundaries.len() < k {
            boundaries.push(n as VertexId);
        }
        boundaries.push(n as VertexId);

        let weights = g.out_weights();
        let shards = (0..k)
            .map(|s| {
                let start = boundaries[s] as usize;
                let end = boundaries[s + 1] as usize;
                build_shard(g, out, weights, s as u32, k, start, end)
            })
            .collect();

        Ok(ShardedCsr {
            shards,
            boundaries,
            num_vertices: n,
            num_edges: m,
            name: g.name().to_string(),
        })
    }

    /// Number of shards.
    #[inline]
    pub fn k(&self) -> u32 {
        self.shards.len() as u32
    }

    /// All shards in id order.
    #[inline]
    pub fn shards(&self) -> &[LocalShard] {
        &self.shards
    }

    /// One shard by id.
    #[inline]
    pub fn shard(&self, s: u32) -> &LocalShard {
        &self.shards[s as usize]
    }

    /// Which shard owns global vertex `v`.
    ///
    /// # Panics
    /// Panics when `v` is outside the global vertex space.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> u32 {
        assert!((v as usize) < self.num_vertices.max(1), "vertex {v} out of range");
        (self.boundaries.partition_point(|&b| b <= v) - 1) as u32
    }

    /// Global vertex count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Global edge count (every edge lives in exactly one shard).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Source graph name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total halo entries across shards (replication overhead of the
    /// edge cut).
    pub fn halo_total(&self) -> usize {
        self.shards.iter().map(|s| s.n_halo()).sum()
    }

    /// Total cut edges across shards (edges whose endpoint is remote).
    pub fn cut_edges_total(&self) -> usize {
        self.shards.iter().map(|s| s.cut_edges()).sum()
    }

    /// Edge imbalance: max shard edge count over the perfect-balance
    /// average (1.0 = perfectly balanced; 1.0 on edgeless graphs).
    pub fn edge_imbalance(&self) -> f64 {
        if self.num_edges == 0 {
            return 1.0;
        }
        let max = self.shards.iter().map(|s| s.graph().num_edges()).max().unwrap_or(0) as f64;
        let avg = self.num_edges as f64 / self.shards.len() as f64;
        max / avg
    }
}

fn build_shard(
    g: &Graph,
    out: &Csr,
    weights: Option<&[crate::Weight]>,
    id: u32,
    k: usize,
    start: usize,
    end: usize,
) -> LocalShard {
    let n_owned = end - start;
    let owned_range = start as VertexId..end as VertexId;

    // Halo discovery: every out-of-range target, sorted + deduplicated.
    let mut halo_set = BTreeSet::new();
    for v in start..end {
        for &t in out.neighbors(v as VertexId) {
            if !owned_range.contains(&t) {
                halo_set.insert(t);
            }
        }
    }
    let halo_global: Vec<VertexId> = halo_set.into_iter().collect();

    // Local CSR: owned rows keep their global edge order with targets
    // renumbered; halo rows are appended empty.
    let edge_lo = out.offsets()[start] as usize;
    let edge_hi = out.offsets()[end] as usize;
    let mut offsets: Vec<u64> = Vec::with_capacity(n_owned + halo_global.len() + 1);
    offsets.push(0);
    let mut targets: Vec<VertexId> = Vec::with_capacity(edge_hi - edge_lo);
    let mut cut_edges = 0usize;
    for v in start..end {
        for &t in out.neighbors(v as VertexId) {
            let local = if owned_range.contains(&t) {
                t - start as VertexId
            } else {
                cut_edges += 1;
                // The target is in the halo set by construction.
                let i = halo_global.partition_point(|&h| h < t);
                (n_owned + i) as VertexId
            };
            targets.push(local);
        }
        offsets.push(targets.len() as u64);
    }
    for _ in 0..halo_global.len() {
        offsets.push(targets.len() as u64);
    }
    let local_csr = Csr::new(offsets, targets);

    // Owned rows preserve global edge order, so the weight slice maps
    // one-to-one onto the contiguous global range.
    let local_weights = weights.map(|ws| ws[edge_lo..edge_hi].to_vec());
    let name = format!("{}#{}of{}", g.name(), id, k);
    let graph = Graph::from_parts(local_csr, None, local_weights, None, name);

    LocalShard { id, graph, n_owned, owner_start: start as VertexId, halo_global, cut_edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::GraphBuilder;

    fn check_invariants(g: &Graph, sharded: &ShardedCsr) {
        let k = sharded.k();
        assert!(k >= 1);
        // Ownership ranges tile the vertex space.
        let total_owned: usize = sharded.shards().iter().map(|s| s.n_owned()).sum();
        assert_eq!(total_owned, g.num_vertices());
        // Every edge lands in exactly one shard, and the local→global
        // round trip reproduces the global edge multiset in order.
        let mut rebuilt: Vec<(VertexId, VertexId)> = Vec::new();
        for s in sharded.shards() {
            let lg = s.graph();
            for lu in 0..s.n_owned() as VertexId {
                let gu = s.to_global(lu);
                assert_eq!(sharded.owner_of(gu), s.id());
                assert_eq!(s.to_local(gu), Some(lu));
                for &lt in lg.out_csr().neighbors(lu) {
                    let gt = s.to_global(lt);
                    assert_eq!(s.to_local(gt), Some(lt), "round-trip failed");
                    rebuilt.push((gu, gt));
                }
            }
            // Halo rows are empty and halo ids round-trip too.
            for h in 0..s.n_halo() {
                let l = (s.n_owned() + h) as VertexId;
                assert!(s.is_halo(l));
                assert_eq!(lg.out_csr().degree(l), 0);
                assert_eq!(s.to_local(s.to_global(l)), Some(l));
                assert_ne!(sharded.owner_of(s.to_global(l)), s.id());
            }
        }
        let global: Vec<(VertexId, VertexId)> = g.out_csr().iter_edges().collect();
        assert_eq!(rebuilt, global, "edge multiset must be preserved in order");
    }

    #[test]
    fn partition_preserves_edges_across_k() {
        let g = gen::kronecker(8, 8, 3);
        for k in [1, 2, 3, 4, 8] {
            let sharded = ShardedCsr::partition(&g, k).unwrap();
            assert_eq!(sharded.k(), k);
            check_invariants(&g, &sharded);
        }
    }

    #[test]
    fn zero_shards_rejected_and_oversharding_clamped() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        assert!(ShardedCsr::partition(&g, 0).is_err());
        let sharded = ShardedCsr::partition(&g, 64).unwrap();
        assert_eq!(sharded.k(), 3, "k clamps to the vertex count");
        check_invariants(&g, &sharded);
    }

    #[test]
    fn single_shard_is_the_whole_graph_with_no_halo() {
        let g = gen::grid2d(8, 8, 0.0, 1);
        let sharded = ShardedCsr::partition(&g, 1).unwrap();
        let s = sharded.shard(0);
        assert_eq!(s.n_owned(), g.num_vertices());
        assert_eq!(s.n_halo(), 0);
        assert_eq!(s.cut_edges(), 0);
        assert_eq!(s.graph().num_edges(), g.num_edges());
        assert_eq!(sharded.edge_imbalance(), 1.0);
    }

    #[test]
    fn weights_travel_with_their_edges() {
        let g = gen::with_random_weights(&gen::kronecker(7, 6, 5), 32, 11);
        let sharded = ShardedCsr::partition(&g, 3).unwrap();
        let gw = g.out_weights().unwrap();
        let gcsr = g.out_csr();
        for s in sharded.shards() {
            let lw = s.graph().out_weights().unwrap();
            let lcsr = s.graph().out_csr();
            for lu in 0..s.n_owned() as VertexId {
                let gu = s.to_global(lu);
                let lr = lcsr.edge_range(lu);
                let gr = gcsr.edge_range(gu);
                assert_eq!(&lw[lr], &gw[gr], "weights of vertex {gu} diverged");
            }
        }
    }

    #[test]
    fn edge_balance_is_reasonable_on_skewed_graphs() {
        let g = gen::kronecker(9, 10, 7);
        let sharded = ShardedCsr::partition(&g, 4).unwrap();
        // A greedy contiguous cut cannot be perfect, but it must not
        // degenerate into one shard holding everything.
        assert!(sharded.edge_imbalance() < 2.5, "imbalance {} too high", sharded.edge_imbalance());
        for s in sharded.shards() {
            assert!(s.n_owned() > 0, "shard {} owns nothing", s.id());
        }
    }

    #[test]
    fn per_shard_stats_describe_the_local_csr() {
        let g = gen::kronecker(8, 8, 3);
        let sharded = ShardedCsr::partition(&g, 4).unwrap();
        for s in sharded.shards() {
            assert_eq!(s.stats().num_vertices, s.n_local());
            assert_eq!(s.stats().num_edges, s.graph().num_edges());
        }
        let edge_sum: usize = sharded.shards().iter().map(|s| s.graph().num_edges()).sum();
        assert_eq!(edge_sum, g.num_edges());
    }

    #[test]
    fn owner_of_matches_boundaries() {
        let g = gen::erdos_renyi(200, 800, 9);
        let sharded = ShardedCsr::partition(&g, 5).unwrap();
        for v in 0..g.num_vertices() as VertexId {
            let o = sharded.owner_of(v);
            assert!(sharded.shard(o).owner_range().contains(&v));
        }
    }
}
