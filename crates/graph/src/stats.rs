//! Dataset attributes (Table 1, first block).
//!
//! These are computed once while loading the data (§4.3): N, M, average
//! degree `d`, degree standard deviation `σ_d`, relative degree range `r_d`,
//! Gini coefficient `GI`, and relative edge-distribution entropy `H_er`
//! (both from Kunegis & Preusse, "Fairness on the web: alternatives to the
//! power law", WebSci'12 — ref \[29\] of the paper).

use crate::csr::Csr;
use serde::{Deserialize, Serialize};

/// Precomputed topology statistics of a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices (N).
    pub num_vertices: usize,
    /// Number of directed edges (M; undirected edges count twice).
    pub num_edges: usize,
    /// Average out-degree (d̄).
    pub avg_degree: f64,
    /// Standard deviation of out-degrees (σ_d).
    pub degree_stddev: f64,
    /// Relative range of degrees: (max − min) / max(d̄, 1) (r_d).
    pub degree_rel_range: f64,
    /// Maximum out-degree.
    pub max_degree: u32,
    /// Minimum out-degree.
    pub min_degree: u32,
    /// Gini coefficient of the degree distribution, in `[0, 1)`.
    /// 0 = perfectly regular graph, →1 = extreme hub concentration.
    pub gini: f64,
    /// Relative edge-distribution entropy in `(0, 1]`:
    /// `H_er = (−Σ p_i ln p_i) / ln N` with `p_i = d_i / M`.
    /// 1 = perfectly equal distribution.
    pub entropy: f64,
}

impl GraphStats {
    /// Compute all attributes from an out-CSR in a single degree pass plus
    /// one sort (for Gini).
    pub fn compute(csr: &Csr) -> Self {
        let n = csr.num_vertices();
        let m = csr.num_edges();
        if n == 0 {
            return GraphStats {
                num_vertices: 0,
                num_edges: 0,
                avg_degree: 0.0,
                degree_stddev: 0.0,
                degree_rel_range: 0.0,
                max_degree: 0,
                min_degree: 0,
                gini: 0.0,
                entropy: 0.0,
            };
        }

        let mut degrees: Vec<u32> = (0..n as u32).map(|v| csr.degree(v)).collect();
        let sum: f64 = m as f64;
        let avg = sum / n as f64;
        let var = degrees
            .iter()
            .map(|&d| {
                let diff = d as f64 - avg;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        let max = degrees.iter().copied().max().unwrap_or(0);
        let min = degrees.iter().copied().min().unwrap_or(0);

        // Gini: with degrees sorted ascending,
        //   GI = (2 Σ_{i=1..n} i·d_i) / (n Σ d_i) − (n + 1)/n
        degrees.sort_unstable();
        let gini = if m == 0 {
            0.0
        } else {
            let weighted: f64 =
                degrees.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
            ((2.0 * weighted) / (n as f64 * sum) - (n as f64 + 1.0) / n as f64).max(0.0)
        };

        // Relative edge distribution entropy.
        let entropy = if m == 0 || n <= 1 {
            0.0
        } else {
            let h: f64 = degrees
                .iter()
                .filter(|&&d| d > 0)
                .map(|&d| {
                    let p = d as f64 / sum;
                    -p * p.ln()
                })
                .sum();
            (h / (n as f64).ln()).clamp(0.0, 1.0)
        };

        GraphStats {
            num_vertices: n,
            num_edges: m,
            avg_degree: avg,
            degree_stddev: var.sqrt(),
            degree_rel_range: (max - min) as f64 / avg.max(1.0),
            max_degree: max,
            min_degree: min,
            gini,
            entropy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// A k-regular ring: every degree equal.
    fn ring(n: u32) -> Csr {
        let g = GraphBuilder::new(n as usize).edges((0..n).map(|i| (i, (i + 1) % n))).build();
        g.out_csr().clone()
    }

    /// A star: one hub connected to everyone.
    fn star(n: u32) -> Csr {
        let g = GraphBuilder::new(n as usize).edges((1..n).map(|i| (0, i))).build();
        g.out_csr().clone()
    }

    #[test]
    fn regular_graph_has_zero_gini_full_entropy() {
        let s = GraphStats::compute(&ring(64));
        assert!(s.gini.abs() < 1e-9, "gini = {}", s.gini);
        assert!((s.entropy - 1.0).abs() < 1e-9, "entropy = {}", s.entropy);
        assert_eq!(s.avg_degree, 2.0);
        assert_eq!(s.degree_stddev, 0.0);
        assert_eq!(s.degree_rel_range, 0.0);
    }

    #[test]
    fn star_graph_is_highly_unequal() {
        let s = GraphStats::compute(&star(128));
        // Hub has degree 127, leaves degree 1: strong inequality, low entropy.
        assert!(s.gini > 0.45, "gini = {}", s.gini);
        assert!(s.entropy < 0.9, "entropy = {}", s.entropy);
        assert_eq!(s.max_degree, 127);
        assert_eq!(s.min_degree, 1);
    }

    #[test]
    fn star_more_unequal_than_ring() {
        let ring_s = GraphStats::compute(&ring(100));
        let star_s = GraphStats::compute(&star(100));
        assert!(star_s.gini > ring_s.gini);
        assert!(star_s.entropy < ring_s.entropy);
    }

    #[test]
    fn empty_graph_is_all_zero() {
        let s = GraphStats::compute(&Csr::empty(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.entropy, 0.0);
    }

    #[test]
    fn edgeless_graph() {
        let s = GraphStats::compute(&Csr::empty(10));
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn counts_match_csr() {
        let c = ring(10);
        let s = GraphStats::compute(&c);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 20); // symmetrized ring
    }

    #[test]
    fn gini_bounded() {
        for n in [2u32, 5, 17, 333] {
            let s = GraphStats::compute(&star(n));
            assert!((0.0..1.0).contains(&s.gini), "n={n} gini={}", s.gini);
            assert!((0.0..=1.0).contains(&s.entropy));
        }
    }
}
