//! Content fingerprinting of graphs.
//!
//! The serving runtime keys its tuned-config cache by *what the graph
//! is*, not what it is called: two registry entries backed by the same
//! topology (same CSR arrays, same weights) must share cached
//! configurations, and a permuted or re-weighted variant must not. The
//! fingerprint is a 64-bit streaming hash over the structure-defining
//! arrays of the [`Graph`]: vertex/edge counts, the out-CSR offsets and
//! targets, and the edge weights when present. It is computed once per
//! graph and is stable across processes and platforms.

use crate::Graph;

/// A 64-bit content hash of a graph's topology and weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Canonical 16-digit lowercase hex form (used in cache keys and
    /// file names).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Streaming 64-bit mixer (SplitMix64 finalizer over a running state).
/// Order-sensitive, so permuted CSR arrays hash differently.
struct Mixer(u64);

impl Mixer {
    fn new() -> Self {
        // Arbitrary non-zero seed so an all-zero stream is non-trivial.
        Mixer(0x5851_F42D_4C95_7F2D)
    }

    fn word(&mut self, w: u64) {
        let mut z = self.0 ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Compute the content fingerprint of `g`.
///
/// Covers: vertex count, edge count, out-CSR offsets and targets,
/// symmetry flag, and (when weighted) the out-edge weights. The graph's
/// display name is deliberately excluded — renaming a registry entry
/// must not invalidate cached configurations.
pub fn fingerprint(g: &Graph) -> Fingerprint {
    let mut m = Mixer::new();
    m.word(g.num_vertices() as u64);
    m.word(g.num_edges() as u64);
    m.word(g.is_symmetric() as u64);
    let csr = g.out_csr();
    for &o in csr.offsets() {
        m.word(o);
    }
    // Pack two 32-bit targets per word; the trailing odd one (if any)
    // goes in alone with a distinguishing tag in the high bits.
    let targets = g.out_csr().targets();
    for pair in targets.chunks(2) {
        match pair {
            [a, b] => m.word((*a as u64) << 32 | *b as u64),
            [a] => m.word(1u64 << 63 | *a as u64),
            _ => unreachable!(),
        }
    }
    if let Some(w) = g.out_weights() {
        m.word(w.len() as u64);
        for pair in w.chunks(2) {
            match pair {
                [a, b] => m.word((*a as u64) << 32 | *b as u64),
                [a] => m.word(1u64 << 63 | *a as u64),
                _ => unreachable!(),
            }
        }
    }
    Fingerprint(m.finish())
}

impl Graph {
    /// Content fingerprint of this graph (see [`fingerprint`]).
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::{gen, transform, GraphBuilder};

    #[test]
    fn same_graph_same_fingerprint() {
        let a = gen::kronecker(8, 8, 42);
        let b = gen::kronecker(8, 8, 42);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn name_does_not_matter() {
        let a = gen::erdos_renyi(100, 400, 1);
        let renamed = gen::erdos_renyi(100, 400, 1).with_name("completely-different");
        assert_eq!(a.fingerprint(), renamed.fingerprint());
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen::erdos_renyi(100, 400, 1);
        let b = gen::erdos_renyi(100, 400, 2);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn permuted_graph_differs() {
        let g = gen::barabasi_albert(64, 3, 7);
        let n = g.num_vertices();
        // A rotation permutation: same topology up to relabelling, which
        // changes the CSR arrays and therefore must change the key.
        let perm: Vec<u32> = (0..n).map(|v| ((v + 1) % n) as u32).collect();
        let p = transform::permute(&g, &perm);
        assert_ne!(g.fingerprint(), p.fingerprint());
    }

    #[test]
    fn weights_matter() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let w1 = gen::with_random_weights(&g, 31, 1);
        let w2 = gen::with_random_weights(&g, 31, 2);
        assert_ne!(g.fingerprint(), w1.fingerprint());
        assert_ne!(w1.fingerprint(), w2.fingerprint());
    }

    #[test]
    fn hex_form_is_16_digits() {
        let g = gen::grid2d(4, 4, 0.0, 1);
        let hex = g.fingerprint().to_hex();
        assert_eq!(hex.len(), 16);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(hex, g.fingerprint().to_string());
    }

    #[test]
    fn single_trailing_target_is_tagged() {
        // 3 edges → odd target count exercises the tail branch.
        let a = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let b = GraphBuilder::new(3).edges([(0, 2), (1, 2)]).build();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
