//! Dataset loaders: MatrixMarket (`.mtx`), whitespace edge lists, and
//! DIMACS shortest-path (`.gr`) — the three formats networkrepository.com
//! and the SNAP/DIMACS mirrors distribute. Real datasets can therefore be
//! dropped into any experiment in place of the synthetic twins.

use crate::{Graph, GraphBuilder, VertexId, Weight};
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Errors surfaced while parsing a dataset.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or lexical problem, with a line number (1-based, 0 when
    /// unknown) and message.
    Parse {
        /// 1-based line number (0 when unknown).
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn perr<T>(line: usize, msg: impl Into<String>) -> Result<T, LoadError> {
    Err(LoadError::Parse { line, msg: msg.into() })
}

/// Load a MatrixMarket coordinate file. Supports `pattern`, `integer`, and
/// `real` fields; `general` and `symmetric` symmetry. Real weights are
/// rounded to the nearest positive integer (the paper uses integer-weighted
/// SSSP). The graph is always symmetrized, matching the paper's
/// preprocessing.
pub fn load_mtx(r: impl Read) -> Result<Graph, LoadError> {
    let mut lines = BufReader::new(r).lines();
    let mut lineno = 0usize;

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = loop {
        lineno += 1;
        match lines.next() {
            Some(l) => {
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            None => return perr(lineno, "empty file"),
        }
    };
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() < 4 || !toks[0].starts_with("%%MatrixMarket") {
        return perr(lineno, "missing %%MatrixMarket header");
    }
    if !toks[1].eq_ignore_ascii_case("matrix") || !toks[2].eq_ignore_ascii_case("coordinate") {
        return perr(lineno, "only `matrix coordinate` files are supported");
    }
    let field = toks.get(3).copied().unwrap_or("pattern").to_ascii_lowercase();
    let weighted = matches!(field.as_str(), "integer" | "real");

    // Size line (first non-comment).
    let size_line = loop {
        lineno += 1;
        match lines.next() {
            Some(l) => {
                let l = l?;
                let t = l.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break l;
                }
            }
            None => return perr(lineno, "missing size line"),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| LoadError::Parse { line: lineno, msg: e.to_string() })?;
    if dims.len() != 3 {
        return perr(lineno, "size line must be `rows cols nnz`");
    }
    let n = dims[0].max(dims[1]);
    let nnz = dims[2];

    let mut b = GraphBuilder::with_capacity(n, nnz);
    for l in lines {
        lineno += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: usize = match it.next().map(str::parse) {
            Some(Ok(v)) => v,
            _ => return perr(lineno, "bad row index"),
        };
        let v: usize = match it.next().map(str::parse) {
            Some(Ok(v)) => v,
            _ => return perr(lineno, "bad col index"),
        };
        if u == 0 || v == 0 || u > n || v > n {
            return perr(lineno, format!("index ({u},{v}) outside 1..={n}"));
        }
        let (u, v) = ((u - 1) as VertexId, (v - 1) as VertexId);
        if weighted {
            let w: f64 = match it.next().map(str::parse) {
                Some(Ok(w)) => w,
                _ => return perr(lineno, "missing weight"),
            };
            let w = w.abs().round().max(1.0) as Weight;
            b.push_weighted_edge(u, v, w);
        } else {
            b.push_edge(u, v);
        }
    }
    Ok(b.name("mtx").build())
}

/// Load a whitespace/tab edge list (`u v [w]` per line, `#`/`%` comments).
/// Vertex ids may start at 0 or 1; `n` is inferred as `max_id + 1`.
pub fn load_edge_list(r: impl Read) -> Result<Graph, LoadError> {
    let mut edges: Vec<(VertexId, VertexId, Option<Weight>)> = Vec::new();
    let mut max_id: VertexId = 0;
    for (i, l) in BufReader::new(r).lines().enumerate() {
        let lineno = i + 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: VertexId = match it.next().map(str::parse) {
            Some(Ok(v)) => v,
            _ => return perr(lineno, "bad source id"),
        };
        let v: VertexId = match it.next().map(str::parse) {
            Some(Ok(v)) => v,
            _ => return perr(lineno, "bad target id"),
        };
        let w = match it.next() {
            Some(tok) => match tok.parse::<Weight>() {
                Ok(w) => Some(w.max(1)),
                Err(_) => return perr(lineno, "bad weight"),
            },
            None => None,
        };
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    if edges.is_empty() {
        return perr(0, "no edges in file");
    }
    let weighted = edges[0].2.is_some();
    if edges.iter().any(|e| e.2.is_some() != weighted) {
        return perr(0, "mixed weighted and unweighted lines");
    }
    let mut b = GraphBuilder::with_capacity(max_id as usize + 1, edges.len());
    for (u, v, w) in edges {
        match w {
            Some(w) => b.push_weighted_edge(u, v, w),
            None => b.push_edge(u, v),
        }
    }
    Ok(b.name("edgelist").build())
}

/// Load a DIMACS shortest-path `.gr` file (`p sp n m`, `a u v w` arcs,
/// 1-based ids).
pub fn load_dimacs(r: impl Read) -> Result<Graph, LoadError> {
    let mut b: Option<GraphBuilder> = None;
    let mut n = 0usize;
    for (i, l) in BufReader::new(r).lines().enumerate() {
        let lineno = i + 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        match toks[0] {
            "p" => {
                if toks.len() != 4 || toks[1] != "sp" {
                    return perr(lineno, "expected `p sp n m`");
                }
                n = toks[2]
                    .parse()
                    .map_err(|_| LoadError::Parse { line: lineno, msg: "bad n".into() })?;
                let m: usize = toks[3]
                    .parse()
                    .map_err(|_| LoadError::Parse { line: lineno, msg: "bad m".into() })?;
                b = Some(GraphBuilder::with_capacity(n, m));
            }
            "a" => {
                let builder = match b.as_mut() {
                    Some(b) => b,
                    None => return perr(lineno, "arc before problem line"),
                };
                if toks.len() != 4 {
                    return perr(lineno, "expected `a u v w`");
                }
                let u: usize = toks[1]
                    .parse()
                    .map_err(|_| LoadError::Parse { line: lineno, msg: "bad u".into() })?;
                let v: usize = toks[2]
                    .parse()
                    .map_err(|_| LoadError::Parse { line: lineno, msg: "bad v".into() })?;
                let w: Weight = toks[3]
                    .parse()
                    .map_err(|_| LoadError::Parse { line: lineno, msg: "bad w".into() })?;
                if u == 0 || v == 0 || u > n || v > n {
                    return perr(lineno, "arc index out of range");
                }
                builder.push_weighted_edge((u - 1) as VertexId, (v - 1) as VertexId, w.max(1));
            }
            other => return perr(lineno, format!("unknown record `{other}`")),
        }
    }
    match b {
        Some(b) => Ok(b.name("dimacs").build()),
        None => perr(0, "missing problem line"),
    }
}

/// Write a graph as a MatrixMarket coordinate file (pattern or integer
/// field, general symmetry — each stored directed edge is one entry).
/// Round-trips through [`load_mtx`] up to symmetrization.
pub fn save_mtx(g: &Graph, mut w: impl std::io::Write) -> std::io::Result<()> {
    let field = if g.is_weighted() { "integer" } else { "pattern" };
    writeln!(w, "%%MatrixMarket matrix coordinate {field} general")?;
    writeln!(w, "% written by gswitch-rs ({})", g.name())?;
    writeln!(w, "{} {} {}", g.num_vertices(), g.num_vertices(), g.num_edges())?;
    let csr = g.out_csr();
    let ws = g.out_weights();
    for u in 0..g.num_vertices() as VertexId {
        let r = csr.edge_range(u);
        for (i, &v) in csr.neighbors(u).iter().enumerate() {
            match ws {
                Some(ws) => writeln!(w, "{} {} {}", u + 1, v + 1, ws[r.start + i])?,
                None => writeln!(w, "{} {}", u + 1, v + 1)?,
            }
        }
    }
    Ok(())
}

/// Write a graph as a whitespace edge list (`u v [w]`, 0-based).
pub fn save_edge_list(g: &Graph, mut w: impl std::io::Write) -> std::io::Result<()> {
    writeln!(w, "# {} ({} vertices, {} edges)", g.name(), g.num_vertices(), g.num_edges())?;
    let csr = g.out_csr();
    let ws = g.out_weights();
    for u in 0..g.num_vertices() as VertexId {
        let r = csr.edge_range(u);
        for (i, &v) in csr.neighbors(u).iter().enumerate() {
            match ws {
                Some(ws) => writeln!(w, "{u} {v} {}", ws[r.start + i])?,
                None => writeln!(w, "{u} {v}")?,
            }
        }
    }
    Ok(())
}

/// Load by file extension: `.mtx`, `.gr`, anything else as an edge list.
pub fn load_path(path: impl AsRef<Path>) -> Result<Graph, LoadError> {
    let path = path.as_ref();
    let f = std::fs::File::open(path)?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".into());
    let g = match path.extension().and_then(|e| e.to_str()) {
        Some("mtx") => load_mtx(f)?,
        Some("gr") => load_dimacs(f)?,
        _ => load_edge_list(f)?,
    };
    Ok(g.with_name(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtx_pattern_roundtrip() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % a comment\n\
                    4 4 3\n1 2\n2 3\n4 1\n";
        let g = load_mtx(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_csr().neighbors(0), &[1, 3]);
    }

    #[test]
    fn mtx_real_weights_rounded() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    3 3 2\n1 2 2.6\n2 3 0.2\n";
        let g = load_mtx(text.as_bytes()).unwrap();
        assert!(g.is_weighted());
        let w = g.out_weights().unwrap();
        let r = g.out_csr().edge_range(0);
        assert_eq!(&w[r], &[3]); // 2.6 -> 3
        let r = g.out_csr().edge_range(1);
        // neighbors of 1: [0, 2] -> weights [3, 1] (0.2 clamps to 1)
        assert_eq!(&w[r], &[3, 1]);
    }

    #[test]
    fn mtx_rejects_garbage() {
        assert!(load_mtx("hello world".as_bytes()).is_err());
        assert!(load_mtx("%%MatrixMarket matrix array real general\n2 2\n".as_bytes()).is_err());
        let bad_idx = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(load_mtx(bad_idx.as_bytes()).is_err());
    }

    #[test]
    fn edge_list_infers_size() {
        let g = load_edge_list("# c\n0 5\n5 3\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn edge_list_weighted() {
        let g = load_edge_list("0 1 10\n1 2 20\n".as_bytes()).unwrap();
        assert!(g.is_weighted());
    }

    #[test]
    fn edge_list_rejects_mixed() {
        assert!(load_edge_list("0 1 10\n1 2\n".as_bytes()).is_err());
        assert!(load_edge_list("".as_bytes()).is_err());
    }

    #[test]
    fn mtx_write_read_roundtrip() {
        let g = crate::gen::with_random_weights(&crate::gen::erdos_renyi(50, 150, 9), 32, 9);
        let mut buf = Vec::new();
        save_mtx(&g, &mut buf).unwrap();
        let g2 = load_mtx(buf.as_slice()).unwrap();
        assert_eq!(g.out_csr(), g2.out_csr());
        assert_eq!(g.out_weights(), g2.out_weights());
    }

    #[test]
    fn edge_list_write_read_roundtrip() {
        let g = crate::gen::erdos_renyi(40, 120, 4);
        let mut buf = Vec::new();
        save_edge_list(&g, &mut buf).unwrap();
        let g2 = load_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.out_csr(), g2.out_csr());
    }

    #[test]
    fn dimacs_parses_arcs() {
        let text = "c road net\np sp 3 2\na 1 2 4\na 2 3 6\n";
        let g = load_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert!(g.is_weighted());
        assert_eq!(g.num_edges(), 4); // symmetrized
    }

    #[test]
    fn dimacs_rejects_arc_before_header() {
        assert!(load_dimacs("a 1 2 3\n".as_bytes()).is_err());
    }
}
