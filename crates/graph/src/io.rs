//! Dataset loaders: MatrixMarket (`.mtx`), whitespace edge lists, and
//! DIMACS shortest-path (`.gr`) — the three formats networkrepository.com
//! and the SNAP/DIMACS mirrors distribute. Real datasets can therefore be
//! dropped into any experiment in place of the synthetic twins.
//!
//! Loaders treat their input as **untrusted**: every id and dimension is
//! parsed with checked arithmetic, non-finite weights are rejected, and
//! [`LoadLimits`] bound how large a graph a header may declare (a hostile
//! header must not be able to command a huge allocation). The `_opts`
//! variants additionally choose between [`LoadMode::Repair`] — dedupe
//! parallel edges and drop self loops, reporting counts — and
//! [`LoadMode::Strict`], which turns any needed repair into an error.

use crate::builder::BuildReport;
use crate::{Graph, GraphBuilder, VertexId, Weight};
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Errors surfaced while parsing a dataset.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or lexical problem, with a line number (1-based, 0 when
    /// unknown) and message.
    Parse {
        /// 1-based line number (0 when unknown).
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn perr<T>(line: usize, msg: impl Into<String>) -> Result<T, LoadError> {
    Err(LoadError::Parse { line, msg: msg.into() })
}

/// Hard ceilings on what a loader will accept, regardless of what the
/// file's header claims. Defaults comfortably cover the paper's corpus
/// (largest graph: 16.8M vertices) while keeping a hostile header from
/// commanding a multi-terabyte build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadLimits {
    /// Maximum vertex count (declared or inferred).
    pub max_vertices: usize,
    /// Maximum edge count (declared or actual).
    pub max_edges: usize,
}

impl Default for LoadLimits {
    fn default() -> Self {
        LoadLimits { max_vertices: 1 << 28, max_edges: 1 << 31 }
    }
}

/// What to do with input that needs repair (self loops, parallel edges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoadMode {
    /// Repair silently-fixable problems and report counts: dedupe
    /// parallel edges, drop self loops (the builder's normal
    /// preprocessing, matching the paper's §5.1). The default.
    #[default]
    Repair,
    /// Any needed repair — and any declared-vs-actual entry-count
    /// mismatch — is a structured error. Parallel edges are counted in
    /// directed units post-symmetrization, so a file listing both
    /// orientations of an undirected edge is rejected too.
    Strict,
}

/// Options accepted by the `_opts` loader variants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadOptions {
    /// Size ceilings.
    pub limits: LoadLimits,
    /// Strict or repair handling of dirty input.
    pub mode: LoadMode,
}

impl LoadOptions {
    /// Default limits, strict mode.
    pub fn strict() -> Self {
        LoadOptions { mode: LoadMode::Strict, ..Default::default() }
    }
}

/// A loaded graph plus what repair-mode loading had to fix.
#[derive(Clone, Debug)]
pub struct Loaded {
    /// The graph, fully built.
    pub graph: Graph,
    /// Repair counts (all zero in strict mode — anything non-zero
    /// would have been an error).
    pub report: BuildReport,
}

/// Reserve at most this many edges up front on the strength of a
/// header's claim; anything larger grows amortized as real entries
/// arrive, so an oversized header alone cannot command the allocation.
const HEADER_RESERVE_CAP: usize = 1 << 20;

fn check_counts(line: usize, n: usize, m: usize, limits: &LoadLimits) -> Result<(), LoadError> {
    if n > limits.max_vertices {
        return perr(line, format!("vertex count {n} exceeds limit {}", limits.max_vertices));
    }
    if n > VertexId::MAX as usize {
        return perr(line, format!("vertex count {n} does not fit a 32-bit vertex id"));
    }
    if m > limits.max_edges {
        return perr(line, format!("edge count {m} exceeds limit {}", limits.max_edges));
    }
    Ok(())
}

/// Build the accumulated edges, enforcing strict mode and bumping the
/// repair counter.
fn finish(b: GraphBuilder, opts: &LoadOptions) -> Result<Loaded, LoadError> {
    let (graph, report) = b.build_with_report();
    if opts.mode == LoadMode::Strict && !report.is_clean() {
        return perr(
            0,
            format!(
                "strict mode: input needs repair ({} self loops, {} parallel directed edges)",
                report.self_loops_dropped, report.parallel_edges_deduped
            ),
        );
    }
    crate::validate::note_edges_repaired(
        (report.self_loops_dropped + report.parallel_edges_deduped) as u64,
    );
    Ok(Loaded { graph, report })
}

/// Count a rejection in [`validate::load_rejected`](crate::validate::load_rejected).
fn track(r: Result<Loaded, LoadError>) -> Result<Loaded, LoadError> {
    if r.is_err() {
        crate::validate::note_load_rejected();
    }
    r
}

/// Load a MatrixMarket coordinate file. Supports `pattern`, `integer`, and
/// `real` fields; `general` and `symmetric` symmetry. Real weights are
/// rounded to the nearest positive integer (the paper uses integer-weighted
/// SSSP). The graph is always symmetrized, matching the paper's
/// preprocessing. Equivalent to [`load_mtx_opts`] with default options.
pub fn load_mtx(r: impl Read) -> Result<Graph, LoadError> {
    load_mtx_opts(r, &LoadOptions::default()).map(|l| l.graph)
}

/// [`load_mtx`] with explicit [`LoadOptions`], returning repair counts.
pub fn load_mtx_opts(r: impl Read, opts: &LoadOptions) -> Result<Loaded, LoadError> {
    track(load_mtx_inner(r, opts))
}

fn load_mtx_inner(r: impl Read, opts: &LoadOptions) -> Result<Loaded, LoadError> {
    let mut lines = BufReader::new(r).lines();
    let mut lineno = 0usize;

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = loop {
        lineno += 1;
        match lines.next() {
            Some(l) => {
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            None => return perr(lineno, "empty file"),
        }
    };
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() < 4 || !toks[0].starts_with("%%MatrixMarket") {
        return perr(lineno, "missing %%MatrixMarket header");
    }
    if !toks[1].eq_ignore_ascii_case("matrix") || !toks[2].eq_ignore_ascii_case("coordinate") {
        return perr(lineno, "only `matrix coordinate` files are supported");
    }
    let field = toks.get(3).copied().unwrap_or("pattern").to_ascii_lowercase();
    let weighted = matches!(field.as_str(), "integer" | "real");

    // Size line (first non-comment).
    let size_line = loop {
        lineno += 1;
        match lines.next() {
            Some(l) => {
                let l = l?;
                let t = l.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break l;
                }
            }
            None => return perr(lineno, "missing size line"),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| LoadError::Parse { line: lineno, msg: format!("bad size line: {e}") })?;
    if dims.len() != 3 {
        return perr(lineno, "size line must be `rows cols nnz`");
    }
    let n = dims[0].max(dims[1]);
    let nnz = dims[2];
    check_counts(lineno, n, nnz, &opts.limits)?;

    let mut b = GraphBuilder::with_capacity(n, nnz.min(HEADER_RESERVE_CAP));
    let mut entries = 0usize;
    for l in lines {
        lineno += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        entries += 1;
        if entries > nnz {
            return perr(lineno, format!("more entries than the declared nnz ({nnz})"));
        }
        let mut it = t.split_whitespace();
        let u: usize = match it.next().map(str::parse) {
            Some(Ok(v)) => v,
            _ => return perr(lineno, "bad row index"),
        };
        let v: usize = match it.next().map(str::parse) {
            Some(Ok(v)) => v,
            _ => return perr(lineno, "bad col index"),
        };
        if u == 0 || v == 0 || u > n || v > n {
            return perr(lineno, format!("index ({u},{v}) outside 1..={n}"));
        }
        let (u, v) = ((u - 1) as VertexId, (v - 1) as VertexId);
        if weighted {
            let w: f64 = match it.next().map(str::parse) {
                Some(Ok(w)) => w,
                _ => return perr(lineno, "missing weight"),
            };
            if !w.is_finite() {
                return perr(lineno, format!("non-finite weight {w}"));
            }
            if opts.mode == LoadMode::Strict && w < 0.0 {
                return perr(lineno, format!("strict mode: negative weight {w}"));
            }
            let w = w.abs().round().max(1.0) as Weight;
            b.push_weighted_edge(u, v, w);
        } else {
            b.push_edge(u, v);
        }
    }
    if opts.mode == LoadMode::Strict && entries != nnz {
        return perr(lineno, format!("truncated: header declared {nnz} entries, found {entries}"));
    }
    finish(b.name("mtx"), opts)
}

/// Load a whitespace/tab edge list (`u v [w]` per line, `#`/`%` comments).
/// Vertex ids may start at 0 or 1; `n` is inferred as `max_id + 1`.
/// Equivalent to [`load_edge_list_opts`] with default options.
pub fn load_edge_list(r: impl Read) -> Result<Graph, LoadError> {
    load_edge_list_opts(r, &LoadOptions::default()).map(|l| l.graph)
}

/// [`load_edge_list`] with explicit [`LoadOptions`], returning repair
/// counts.
pub fn load_edge_list_opts(r: impl Read, opts: &LoadOptions) -> Result<Loaded, LoadError> {
    track(load_edge_list_inner(r, opts))
}

fn load_edge_list_inner(r: impl Read, opts: &LoadOptions) -> Result<Loaded, LoadError> {
    let mut edges: Vec<(VertexId, VertexId, Option<Weight>)> = Vec::new();
    let mut max_id: VertexId = 0;
    for (i, l) in BufReader::new(r).lines().enumerate() {
        let lineno = i + 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: VertexId = match it.next().map(str::parse) {
            Some(Ok(v)) => v,
            _ => return perr(lineno, "bad source id (must fit a 32-bit unsigned integer)"),
        };
        let v: VertexId = match it.next().map(str::parse) {
            Some(Ok(v)) => v,
            _ => return perr(lineno, "bad target id (must fit a 32-bit unsigned integer)"),
        };
        let w = match it.next() {
            Some(tok) => match tok.parse::<Weight>() {
                Ok(w) => Some(w.max(1)),
                Err(_) => return perr(lineno, "bad weight"),
            },
            None => None,
        };
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
        if edges.len() > opts.limits.max_edges {
            return perr(lineno, format!("edge count exceeds limit {}", opts.limits.max_edges));
        }
    }
    if edges.is_empty() {
        return perr(0, "no edges in file");
    }
    let weighted = edges[0].2.is_some();
    if edges.iter().any(|e| e.2.is_some() != weighted) {
        return perr(0, "mixed weighted and unweighted lines");
    }
    // Checked: a hostile id of u32::MAX on a 32-bit host would wrap
    // `max_id + 1` to zero and build an empty vertex set.
    let n = (max_id as usize).checked_add(1).ok_or_else(|| LoadError::Parse {
        line: 0,
        msg: format!("vertex id {max_id} overflows"),
    })?;
    check_counts(0, n, edges.len(), &opts.limits)?;
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v, w) in edges {
        match w {
            Some(w) => b.push_weighted_edge(u, v, w),
            None => b.push_edge(u, v),
        }
    }
    finish(b.name("edgelist"), opts)
}

/// Load a DIMACS shortest-path `.gr` file (`p sp n m`, `a u v w` arcs,
/// 1-based ids). Equivalent to [`load_dimacs_opts`] with default options.
pub fn load_dimacs(r: impl Read) -> Result<Graph, LoadError> {
    load_dimacs_opts(r, &LoadOptions::default()).map(|l| l.graph)
}

/// [`load_dimacs`] with explicit [`LoadOptions`], returning repair counts.
pub fn load_dimacs_opts(r: impl Read, opts: &LoadOptions) -> Result<Loaded, LoadError> {
    track(load_dimacs_inner(r, opts))
}

fn load_dimacs_inner(r: impl Read, opts: &LoadOptions) -> Result<Loaded, LoadError> {
    let mut b: Option<GraphBuilder> = None;
    let mut n = 0usize;
    let mut m = 0usize;
    let mut arcs = 0usize;
    let mut last_line = 0usize;
    for (i, l) in BufReader::new(r).lines().enumerate() {
        let lineno = i + 1;
        last_line = lineno;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        match toks[0] {
            "p" => {
                if toks.len() != 4 || toks[1] != "sp" {
                    return perr(lineno, "expected `p sp n m`");
                }
                n = toks[2]
                    .parse()
                    .map_err(|_| LoadError::Parse { line: lineno, msg: "bad n".into() })?;
                m = toks[3]
                    .parse()
                    .map_err(|_| LoadError::Parse { line: lineno, msg: "bad m".into() })?;
                check_counts(lineno, n, m, &opts.limits)?;
                b = Some(GraphBuilder::with_capacity(n, m.min(HEADER_RESERVE_CAP)));
            }
            "a" => {
                let builder = match b.as_mut() {
                    Some(b) => b,
                    None => return perr(lineno, "arc before problem line"),
                };
                if toks.len() != 4 {
                    return perr(lineno, "expected `a u v w`");
                }
                arcs += 1;
                if arcs > m {
                    return perr(lineno, format!("more arcs than the declared m ({m})"));
                }
                let u: usize = toks[1]
                    .parse()
                    .map_err(|_| LoadError::Parse { line: lineno, msg: "bad u".into() })?;
                let v: usize = toks[2]
                    .parse()
                    .map_err(|_| LoadError::Parse { line: lineno, msg: "bad v".into() })?;
                let w: Weight = toks[3]
                    .parse()
                    .map_err(|_| LoadError::Parse { line: lineno, msg: "bad w".into() })?;
                if u == 0 || v == 0 || u > n || v > n {
                    return perr(lineno, "arc index out of range (DIMACS ids are 1-based)");
                }
                builder.push_weighted_edge((u - 1) as VertexId, (v - 1) as VertexId, w.max(1));
            }
            other => return perr(lineno, format!("unknown record `{other}`")),
        }
    }
    let b = match b {
        Some(b) => b,
        None => return perr(0, "missing problem line"),
    };
    if opts.mode == LoadMode::Strict && arcs != m {
        return perr(last_line, format!("truncated: header declared {m} arcs, found {arcs}"));
    }
    finish(b.name("dimacs"), opts)
}

/// Write a graph as a MatrixMarket coordinate file (pattern or integer
/// field, general symmetry — each stored directed edge is one entry).
/// Round-trips through [`load_mtx`] up to symmetrization.
pub fn save_mtx(g: &Graph, mut w: impl std::io::Write) -> std::io::Result<()> {
    let field = if g.is_weighted() { "integer" } else { "pattern" };
    writeln!(w, "%%MatrixMarket matrix coordinate {field} general")?;
    writeln!(w, "% written by gswitch-rs ({})", g.name())?;
    writeln!(w, "{} {} {}", g.num_vertices(), g.num_vertices(), g.num_edges())?;
    let csr = g.out_csr();
    let ws = g.out_weights();
    for u in 0..g.num_vertices() as VertexId {
        let r = csr.edge_range(u);
        for (i, &v) in csr.neighbors(u).iter().enumerate() {
            match ws {
                Some(ws) => writeln!(w, "{} {} {}", u + 1, v + 1, ws[r.start + i])?,
                None => writeln!(w, "{} {}", u + 1, v + 1)?,
            }
        }
    }
    Ok(())
}

/// Write a graph as a whitespace edge list (`u v [w]`, 0-based).
pub fn save_edge_list(g: &Graph, mut w: impl std::io::Write) -> std::io::Result<()> {
    writeln!(w, "# {} ({} vertices, {} edges)", g.name(), g.num_vertices(), g.num_edges())?;
    let csr = g.out_csr();
    let ws = g.out_weights();
    for u in 0..g.num_vertices() as VertexId {
        let r = csr.edge_range(u);
        for (i, &v) in csr.neighbors(u).iter().enumerate() {
            match ws {
                Some(ws) => writeln!(w, "{u} {v} {}", ws[r.start + i])?,
                None => writeln!(w, "{u} {v}")?,
            }
        }
    }
    Ok(())
}

/// Load by file extension: `.mtx`, `.gr`, anything else as an edge list.
/// Equivalent to [`load_path_opts`] with default options.
pub fn load_path(path: impl AsRef<Path>) -> Result<Graph, LoadError> {
    load_path_opts(path, &LoadOptions::default()).map(|l| l.graph)
}

/// [`load_path`] with explicit [`LoadOptions`], returning repair counts.
pub fn load_path_opts(path: impl AsRef<Path>, opts: &LoadOptions) -> Result<Loaded, LoadError> {
    let path = path.as_ref();
    let f = std::fs::File::open(path)?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".into());
    let mut loaded = match path.extension().and_then(|e| e.to_str()) {
        Some("mtx") => load_mtx_opts(f, opts)?,
        Some("gr") => load_dimacs_opts(f, opts)?,
        _ => load_edge_list_opts(f, opts)?,
    };
    loaded.graph = loaded.graph.with_name(name);
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtx_pattern_roundtrip() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % a comment\n\
                    4 4 3\n1 2\n2 3\n4 1\n";
        let g = load_mtx(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_csr().neighbors(0), &[1, 3]);
    }

    #[test]
    fn mtx_real_weights_rounded() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    3 3 2\n1 2 2.6\n2 3 0.2\n";
        let g = load_mtx(text.as_bytes()).unwrap();
        assert!(g.is_weighted());
        let w = g.out_weights().unwrap();
        let r = g.out_csr().edge_range(0);
        assert_eq!(&w[r], &[3]); // 2.6 -> 3
        let r = g.out_csr().edge_range(1);
        // neighbors of 1: [0, 2] -> weights [3, 1] (0.2 clamps to 1)
        assert_eq!(&w[r], &[3, 1]);
    }

    #[test]
    fn mtx_rejects_garbage() {
        assert!(load_mtx("hello world".as_bytes()).is_err());
        assert!(load_mtx("%%MatrixMarket matrix array real general\n2 2\n".as_bytes()).is_err());
        let bad_idx = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(load_mtx(bad_idx.as_bytes()).is_err());
    }

    #[test]
    fn mtx_rejects_nonfinite_weights() {
        for w in ["NaN", "inf", "-inf"] {
            let text = format!("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 {w}\n");
            let err = load_mtx(text.as_bytes()).unwrap_err();
            assert!(matches!(err, LoadError::Parse { line: 3, .. }), "{w}: {err}");
        }
    }

    #[test]
    fn mtx_limits_bound_declared_sizes() {
        let opts = LoadOptions {
            limits: LoadLimits { max_vertices: 3, max_edges: 2 },
            ..Default::default()
        };
        let big_n = "%%MatrixMarket matrix coordinate pattern general\n9 9 1\n1 2\n";
        assert!(load_mtx_opts(big_n.as_bytes(), &opts).is_err());
        let big_m = "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n";
        assert!(load_mtx_opts(big_m.as_bytes(), &opts).is_err());
        let ok = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 3\n";
        assert!(load_mtx_opts(ok.as_bytes(), &opts).is_ok());
    }

    #[test]
    fn mtx_strict_vs_repair() {
        // One self loop and one duplicated entry.
        let dirty = "%%MatrixMarket matrix coordinate pattern general\n3 3 4\n1 1\n1 2\n1 2\n2 3\n";
        let l = load_mtx_opts(dirty.as_bytes(), &LoadOptions::default()).unwrap();
        assert_eq!(l.report.self_loops_dropped, 1);
        assert!(l.report.parallel_edges_deduped > 0);
        assert_eq!(l.graph.num_edges(), 4);
        assert!(load_mtx_opts(dirty.as_bytes(), &LoadOptions::strict()).is_err());
        // Truncation (fewer entries than declared) only fails strict.
        let short = "%%MatrixMarket matrix coordinate pattern general\n3 3 3\n1 2\n";
        assert!(load_mtx_opts(short.as_bytes(), &LoadOptions::default()).is_ok());
        assert!(load_mtx_opts(short.as_bytes(), &LoadOptions::strict()).is_err());
        // Extra entries past the declared nnz fail in every mode.
        let long = "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 2\n2 3\n";
        assert!(load_mtx_opts(long.as_bytes(), &LoadOptions::default()).is_err());
    }

    #[test]
    fn edge_list_infers_size() {
        let g = load_edge_list("# c\n0 5\n5 3\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn edge_list_weighted() {
        let g = load_edge_list("0 1 10\n1 2 20\n".as_bytes()).unwrap();
        assert!(g.is_weighted());
    }

    #[test]
    fn edge_list_rejects_mixed() {
        assert!(load_edge_list("0 1 10\n1 2\n".as_bytes()).is_err());
        assert!(load_edge_list("".as_bytes()).is_err());
    }

    #[test]
    fn edge_list_rejects_oversized_ids() {
        // Larger than u32: must be a structured error, not a wrap.
        let err = load_edge_list("0 99999999999\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LoadError::Parse { line: 1, .. }), "{err}");
        // Negative ids are equally structured.
        assert!(load_edge_list("0 -3\n".as_bytes()).is_err());
    }

    #[test]
    fn edge_list_respects_limits() {
        let opts = LoadOptions {
            limits: LoadLimits { max_vertices: 4, max_edges: 10 },
            ..Default::default()
        };
        assert!(load_edge_list_opts("0 9\n".as_bytes(), &opts).is_err());
        let opts = LoadOptions {
            limits: LoadLimits { max_vertices: 100, max_edges: 1 },
            ..Default::default()
        };
        assert!(load_edge_list_opts("0 1\n1 2\n".as_bytes(), &opts).is_err());
    }

    #[test]
    fn mtx_write_read_roundtrip() {
        let g = crate::gen::with_random_weights(&crate::gen::erdos_renyi(50, 150, 9), 32, 9);
        let mut buf = Vec::new();
        save_mtx(&g, &mut buf).unwrap();
        let g2 = load_mtx(buf.as_slice()).unwrap();
        assert_eq!(g.out_csr(), g2.out_csr());
        assert_eq!(g.out_weights(), g2.out_weights());
    }

    #[test]
    fn edge_list_write_read_roundtrip() {
        let g = crate::gen::erdos_renyi(40, 120, 4);
        let mut buf = Vec::new();
        save_edge_list(&g, &mut buf).unwrap();
        let g2 = load_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.out_csr(), g2.out_csr());
    }

    #[test]
    fn dimacs_parses_arcs() {
        let text = "c road net\np sp 3 2\na 1 2 4\na 2 3 6\n";
        let g = load_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert!(g.is_weighted());
        assert_eq!(g.num_edges(), 4); // symmetrized
    }

    #[test]
    fn dimacs_rejects_arc_before_header() {
        assert!(load_dimacs("a 1 2 3\n".as_bytes()).is_err());
    }

    #[test]
    fn dimacs_rejects_zero_based_ids() {
        let err = load_dimacs("p sp 3 1\na 0 2 4\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("1-based"), "{err}");
    }

    #[test]
    fn dimacs_arc_count_checks() {
        // More arcs than declared: error in every mode.
        let long = "p sp 3 1\na 1 2 4\na 2 3 6\n";
        assert!(load_dimacs(long.as_bytes()).is_err());
        // Fewer arcs: only strict rejects.
        let short = "p sp 3 2\na 1 2 4\n";
        assert!(load_dimacs_opts(short.as_bytes(), &LoadOptions::default()).is_ok());
        assert!(load_dimacs_opts(short.as_bytes(), &LoadOptions::strict()).is_err());
    }
}
