//! Deterministic graph corpus standing in for networkrepository.com.
//!
//! The paper randomly chooses 1,288 graphs, splits them into a 644-graph
//! training set and a 644-graph evaluation set (no overlap), and separately
//! analyses ten "representative" graphs (Table 2). We reproduce that shape
//! with recipes: lazily-built, seeded generator invocations spanning the
//! same five domains. Training and evaluation sets use disjoint seed ranges
//! so they share no graph.
//!
//! The ten representative graphs are reproduced as *scaled topological
//! twins*: the same domain, degree profile, and skew class, at ~1/8 the
//! vertex count so CPU-side brute-force labelling stays tractable (the
//! per-graph scale factor is part of the recipe and recorded in
//! EXPERIMENTS.md).

use crate::gen;
use crate::Graph;
use serde::{Deserialize, Serialize};

/// Dataset domain tags from Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// SN — social networks (power-law, hubs, small diameter).
    SocialNetwork,
    /// WG — web graphs (power-law plus locality).
    WebGraph,
    /// GG — generated graphs (Kronecker, random geometric).
    Generated,
    /// RN — road networks (bounded degree, huge diameter).
    RoadNetwork,
    /// SC — scientific-computing meshes (near-regular stencils).
    Scientific,
}

impl Domain {
    /// Short tag used in dataset names ("SN", "WG", ...).
    pub fn tag(self) -> &'static str {
        match self {
            Domain::SocialNetwork => "SN",
            Domain::WebGraph => "WG",
            Domain::Generated => "GG",
            Domain::RoadNetwork => "RN",
            Domain::Scientific => "SC",
        }
    }
}

/// A lazily-buildable graph description. Recipes are tiny, hashable, and
/// serializable, so experiment manifests can reference graphs without
/// materializing them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are the generators' own parameter names
pub enum Recipe {
    /// Erdős–Rényi G(n, m).
    ErdosRenyi { n: usize, m: usize, seed: u64 },
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert { n: usize, m_per_vertex: usize, seed: u64 },
    /// Graph500 Kronecker.
    Kronecker { scale: u32, edge_factor: usize, seed: u64 },
    /// Web-graph copying model.
    CopyingModel { n: usize, out_deg: usize, copy_prob: f64, seed: u64 },
    /// Road-like defected grid.
    Grid2d { rows: usize, cols: usize, defect: f64, seed: u64 },
    /// Random geometric graph.
    Rgg { n: usize, radius: f64, seed: u64 },
    /// Banded FEM-like mesh.
    Banded { n: usize, half_band: usize, dropout: f64, seed: u64 },
    /// Watts–Strogatz small world.
    SmallWorld { n: usize, k: usize, beta: f64, seed: u64 },
    /// Single-hub star.
    Star { n: usize },
}

impl Recipe {
    /// Materialize the graph. Deterministic: equal recipes produce equal
    /// graphs.
    pub fn build(&self) -> Graph {
        match *self {
            Recipe::ErdosRenyi { n, m, seed } => gen::erdos_renyi(n, m, seed),
            Recipe::BarabasiAlbert { n, m_per_vertex, seed } => {
                gen::barabasi_albert(n, m_per_vertex, seed)
            }
            Recipe::Kronecker { scale, edge_factor, seed } => {
                gen::kronecker(scale, edge_factor, seed)
            }
            Recipe::CopyingModel { n, out_deg, copy_prob, seed } => {
                gen::copying_model(n, out_deg, copy_prob, seed)
            }
            Recipe::Grid2d { rows, cols, defect, seed } => gen::grid2d(rows, cols, defect, seed),
            Recipe::Rgg { n, radius, seed } => gen::rgg(n, radius, seed),
            Recipe::Banded { n, half_band, dropout, seed } => {
                gen::banded(n, half_band, dropout, seed)
            }
            Recipe::SmallWorld { n, k, beta, seed } => gen::small_world(n, k, beta, seed),
            Recipe::Star { n } => gen::star(n),
        }
    }

    /// Materialize with deterministic integer edge weights attached
    /// (required by SSSP).
    pub fn build_weighted(&self, max_w: u32) -> Graph {
        gen::with_random_weights(&self.build(), max_w, 0xC0FFEE)
    }

    /// The domain a recipe belongs to.
    pub fn domain(&self) -> Domain {
        match self {
            Recipe::BarabasiAlbert { .. } => Domain::SocialNetwork,
            Recipe::CopyingModel { .. } | Recipe::SmallWorld { .. } => Domain::WebGraph,
            Recipe::Kronecker { .. } | Recipe::ErdosRenyi { .. } | Recipe::Star { .. } => {
                Domain::Generated
            }
            Recipe::Grid2d { .. } => Domain::RoadNetwork,
            Recipe::Rgg { .. } | Recipe::Banded { .. } => Domain::Scientific,
        }
    }
}

/// Number of graphs in each of the training and evaluation sets,
/// matching §5.1 ("Half of them (644) were used as the training set").
pub const SET_SIZE: usize = 644;

/// The 644-recipe training set (seeds 10_000+).
pub fn training_set() -> Vec<Recipe> {
    corpus_half(10_000)
}

/// The 644-recipe evaluation set (seeds 20_000+; disjoint from training).
pub fn evaluation_set() -> Vec<Recipe> {
    corpus_half(20_000)
}

/// One half of the corpus: SET_SIZE recipes cycling through nine family
/// templates with geometrically growing sizes, so each family spans tiny
/// (hundreds of vertices) to moderate (tens of thousands) graphs.
fn corpus_half(seed_base: u64) -> Vec<Recipe> {
    let mut v = Vec::with_capacity(SET_SIZE);
    let mut i = 0usize;
    while v.len() < SET_SIZE {
        let seed = seed_base + i as u64;
        // Size class: 9 steps from ~2^9 to ~2^17 vertices.
        let cls = (i / 9) % 9;
        let n = 1usize << (9 + cls);
        let fam = i % 9;
        // Degree ranges deliberately stretch to the dense end (avg degree
        // up to ~80): the Table 2 twins include dense web crawls and
        // social graphs, and tree classifiers only interpolate — the
        // corpus must cover the density envelope they will be asked about.
        let r = match fam {
            0 => Recipe::ErdosRenyi { n, m: n * (2 + 2 * cls), seed },
            1 => Recipe::BarabasiAlbert { n, m_per_vertex: 2 + (cls * 2) % 13, seed },
            2 => {
                Recipe::Kronecker { scale: (9 + cls) as u32, edge_factor: 4 + 3 * (cls % 6), seed }
            }
            3 => Recipe::CopyingModel { n, out_deg: 3 + (cls * 6) % 41, copy_prob: 0.5, seed },
            4 => {
                let side = (n as f64).sqrt() as usize;
                Recipe::Grid2d { rows: side, cols: side, defect: 0.02 + 0.01 * (cls as f64), seed }
            }
            5 => Recipe::Rgg { n, radius: (8.0 / (std::f64::consts::PI * n as f64)).sqrt(), seed },
            6 => Recipe::Banded { n, half_band: 4 + 4 * (cls % 5), dropout: 0.1, seed },
            7 => {
                Recipe::SmallWorld { n, k: 2 + cls % 4, beta: 0.05 + 0.05 * (cls % 4) as f64, seed }
            }
            // Star carries no seed, so make n unique per (set, index):
            // seed_base/10 differs between the training (1000+) and
            // evaluation (2000+) halves.
            _ => Recipe::Star { n: seed_base as usize / 10 + i },
        };
        v.push(r);
        i += 1;
    }
    v
}

/// A Table 2 representative graph, reproduced as a scaled twin.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Representative {
    /// Paper dataset name (e.g. "soc-orkut").
    pub paper_name: &'static str,
    /// Domain tag.
    pub domain: Domain,
    /// Vertex-count scale factor versus the paper's dataset (paper / twin).
    pub scale_factor: f64,
    /// The twin recipe.
    pub recipe: Recipe,
}

/// The ten Table 2 graphs as scaled twins, in table order.
pub fn representatives() -> Vec<Representative> {
    use Domain::*;
    vec![
        Representative {
            paper_name: "soc-orkut",
            domain: SocialNetwork,
            scale_factor: 16.0,
            // 3M/212.7M, max-degree 27k: heavy dense social network.
            recipe: Recipe::BarabasiAlbert { n: 190_000, m_per_vertex: 16, seed: 42 },
        },
        Representative {
            paper_name: "soc-pokec",
            domain: SocialNetwork,
            scale_factor: 16.0,
            // 1.6M/61M.
            recipe: Recipe::BarabasiAlbert { n: 100_000, m_per_vertex: 9, seed: 43 },
        },
        Representative {
            paper_name: "web-uk-2005",
            domain: WebGraph,
            scale_factor: 4.0,
            // 129K/23M: dense web crawl, avg degree ~178, bounded max 850.
            recipe: Recipe::CopyingModel { n: 32_000, out_deg: 40, copy_prob: 0.7, seed: 44 },
        },
        Representative {
            paper_name: "web-wikipedia-2009",
            domain: WebGraph,
            scale_factor: 16.0,
            // 1.8M/9M: sparse web graph.
            recipe: Recipe::CopyingModel { n: 112_000, out_deg: 3, copy_prob: 0.5, seed: 45 },
        },
        Representative {
            paper_name: "kron_g500-log21",
            domain: Generated,
            scale_factor: 8.0,
            // 2.1M/182.1M, extreme hub (213k): Graph500 Kronecker.
            recipe: Recipe::Kronecker { scale: 18, edge_factor: 22, seed: 46 },
        },
        Representative {
            paper_name: "rgg_n_2_24",
            domain: Generated,
            scale_factor: 64.0,
            // 16.8M/265.1M, max degree 40.
            recipe: Recipe::Rgg { n: 262_144, radius: 0.00437, seed: 47 },
        },
        Representative {
            paper_name: "roadNet-CA",
            domain: RoadNetwork,
            scale_factor: 8.0,
            // 1.9M/5.5M.
            recipe: Recipe::Grid2d { rows: 500, cols: 480, defect: 0.06, seed: 48 },
        },
        Representative {
            paper_name: "roadNet-TX",
            domain: RoadNetwork,
            scale_factor: 8.0,
            // 1.4M/3.8M.
            recipe: Recipe::Grid2d { rows: 430, cols: 410, defect: 0.06, seed: 49 },
        },
        Representative {
            paper_name: "sc-msdoor",
            domain: Scientific,
            scale_factor: 8.0,
            // 415K/19.8M, degree ~48, max 76.
            recipe: Recipe::Banded { n: 52_000, half_band: 24, dropout: 0.08, seed: 50 },
        },
        Representative {
            paper_name: "sc-ldoor",
            domain: Scientific,
            scale_factor: 8.0,
            // 952K/42M.
            recipe: Recipe::Banded { n: 119_000, half_band: 24, dropout: 0.05, seed: 51 },
        },
    ]
}

/// Twins of the two motivation graphs of Fig. 1 and the Fig. 3 graph.
pub fn motivation_graphs() -> Vec<Representative> {
    vec![
        Representative {
            paper_name: "com-youtube",
            domain: Domain::SocialNetwork,
            scale_factor: 8.0,
            // 1.1M/3M sparse social graph, diameter ~13.
            recipe: Recipe::BarabasiAlbert { n: 140_000, m_per_vertex: 2, seed: 52 },
        },
        Representative {
            paper_name: "hollywood-2009",
            domain: Domain::SocialNetwork,
            scale_factor: 16.0,
            // 1.1M/113M dense collaboration network.
            recipe: Recipe::BarabasiAlbert { n: 70_000, m_per_vertex: 28, seed: 53 },
        },
    ]
}

/// Look up a representative (or motivation) twin by paper name.
pub fn twin(paper_name: &str) -> Option<Representative> {
    representatives().into_iter().chain(motivation_graphs()).find(|r| r.paper_name == paper_name)
}

/// Reduced-size variants of the representative twins (a further ÷8) used by
/// integration tests and quick smoke runs of the harness.
pub fn representatives_small() -> Vec<Representative> {
    representatives()
        .into_iter()
        .map(|mut r| {
            r.scale_factor *= 8.0;
            r.recipe = shrink(&r.recipe, 8);
            r
        })
        .collect()
}

/// Shrink a recipe's vertex count by `factor`, preserving its shape class.
fn shrink(r: &Recipe, factor: usize) -> Recipe {
    match *r {
        Recipe::ErdosRenyi { n, m, seed } => {
            Recipe::ErdosRenyi { n: (n / factor).max(16), m: (m / factor).max(32), seed }
        }
        Recipe::BarabasiAlbert { n, m_per_vertex, seed } => {
            Recipe::BarabasiAlbert { n: (n / factor).max(m_per_vertex * 2 + 2), m_per_vertex, seed }
        }
        Recipe::Kronecker { scale, edge_factor, seed } => Recipe::Kronecker {
            scale: scale.saturating_sub(factor.trailing_zeros()).max(6),
            edge_factor,
            seed,
        },
        Recipe::CopyingModel { n, out_deg, copy_prob, seed } => {
            Recipe::CopyingModel { n: (n / factor).max(out_deg * 2 + 2), out_deg, copy_prob, seed }
        }
        Recipe::Grid2d { rows, cols, defect, seed } => {
            let s = (factor as f64).sqrt();
            Recipe::Grid2d {
                rows: ((rows as f64 / s) as usize).max(4),
                cols: ((cols as f64 / s) as usize).max(4),
                defect,
                seed,
            }
        }
        Recipe::Rgg { n, radius, seed } => {
            Recipe::Rgg { n: (n / factor).max(64), radius: radius * (factor as f64).sqrt(), seed }
        }
        Recipe::Banded { n, half_band, dropout, seed } => {
            Recipe::Banded { n: (n / factor).max(half_band * 2 + 2), half_band, dropout, seed }
        }
        Recipe::SmallWorld { n, k, beta, seed } => {
            Recipe::SmallWorld { n: (n / factor).max(2 * k + 2), k, beta, seed }
        }
        Recipe::Star { n } => Recipe::Star { n: (n / factor).max(8) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sets_have_644_disjoint_recipes() {
        let tr = training_set();
        let ev = evaluation_set();
        assert_eq!(tr.len(), SET_SIZE);
        assert_eq!(ev.len(), SET_SIZE);
        let tr_names: HashSet<String> = tr.iter().map(|r| format!("{r:?}")).collect();
        assert_eq!(tr_names.len(), SET_SIZE, "duplicate training recipes");
        for e in &ev {
            assert!(!tr_names.contains(&format!("{e:?}")), "overlap: {e:?}");
        }
    }

    #[test]
    fn training_set_covers_all_domains() {
        let domains: HashSet<Domain> = training_set().iter().map(|r| r.domain()).collect();
        assert_eq!(domains.len(), 5);
    }

    #[test]
    fn small_recipes_build_quickly_and_deterministically() {
        // Build the first 9 (one per family) and the smallest size class.
        for r in training_set().iter().take(9) {
            let g1 = r.build();
            let g2 = r.build();
            assert_eq!(g1.out_csr(), g2.out_csr(), "{r:?} not deterministic");
            assert!(g1.num_vertices() >= 16);
        }
    }

    #[test]
    fn ten_representatives_in_table_order() {
        let reps = representatives();
        assert_eq!(reps.len(), 10);
        assert_eq!(reps[0].paper_name, "soc-orkut");
        assert_eq!(reps[9].paper_name, "sc-ldoor");
        assert_eq!(reps[6].domain, Domain::RoadNetwork);
    }

    #[test]
    fn twin_lookup() {
        assert!(twin("soc-orkut").is_some());
        assert!(twin("com-youtube").is_some());
        assert!(twin("nope").is_none());
    }

    #[test]
    fn small_representatives_match_profile() {
        for r in representatives_small() {
            let g = r.recipe.build();
            assert!(g.num_vertices() < 40_000, "{} too big: {}", r.paper_name, g.num_vertices());
            match r.domain {
                Domain::RoadNetwork => assert!(g.stats().gini < 0.25),
                Domain::SocialNetwork => assert!(g.stats().gini > 0.2),
                Domain::Scientific => assert!(g.stats().gini < 0.3),
                _ => {}
            }
        }
    }

    #[test]
    fn weighted_builds_attach_weights() {
        let r = &training_set()[0];
        let g = r.build_weighted(64);
        assert!(g.is_weighted());
    }
}
