//! Structural validation of CSR graphs, plus the ingest-side hardening
//! counters.
//!
//! [`Csr::new`] enforces its invariants with panics — the right contract
//! for trusted in-process construction, and the wrong one for bytes
//! that arrived over a socket or from a hostile file. [`CsrValidator`]
//! re-checks the same invariants (and a few graph-level consistency
//! rules) without panicking, producing a [`ValidationReport`] the
//! serving runtime can turn into a structured registration error.
//!
//! The counters live here rather than in `gswitch_obs` because this
//! crate sits *below* the observability crate in the build graph; they
//! follow the same relaxed-atomic idiom and are exported through the
//! `gswitch-serve` stats verb.

use crate::{Csr, Graph, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Loader calls that returned a structured error.
static LOAD_REJECTED: AtomicU64 = AtomicU64::new(0);
/// Directed edges repaired (deduped or dropped) by repair-mode loads.
static EDGES_REPAIRED: AtomicU64 = AtomicU64::new(0);
/// Graphs rejected by structural validation at registration.
static GRAPHS_REJECTED: AtomicU64 = AtomicU64::new(0);

/// Loader calls rejected with a structured error, process lifetime.
pub fn load_rejected() -> u64 {
    LOAD_REJECTED.load(Ordering::Relaxed)
}

pub(crate) fn note_load_rejected() {
    LOAD_REJECTED.fetch_add(1, Ordering::Relaxed);
}

/// Directed edges repaired by repair-mode loads, process lifetime.
pub fn edges_repaired() -> u64 {
    EDGES_REPAIRED.load(Ordering::Relaxed)
}

pub(crate) fn note_edges_repaired(n: u64) {
    if n > 0 {
        EDGES_REPAIRED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Graphs rejected by structural validation, process lifetime.
pub fn graphs_rejected() -> u64 {
    GRAPHS_REJECTED.load(Ordering::Relaxed)
}

/// Record one rejected graph (called by whoever enforces validation,
/// e.g. the serving runtime's registry).
pub fn note_graph_rejected() {
    GRAPHS_REJECTED.fetch_add(1, Ordering::Relaxed);
}

/// Outcome of a validation pass: size summary plus every violation
/// found (capped — see [`CsrValidator::max_issues`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Vertices the structure claims to cover.
    pub vertices: usize,
    /// Directed edges the structure claims to store.
    pub edges: usize,
    /// Human-readable violations, empty when the structure is sound.
    pub issues: Vec<String>,
}

impl ValidationReport {
    /// True when no violation was found.
    pub fn is_valid(&self) -> bool {
        self.issues.is_empty()
    }

    /// `Ok(())` when valid, otherwise every issue joined into one
    /// message (the structured error the runtime surfaces).
    pub fn into_result(self) -> Result<(), String> {
        if self.is_valid() {
            Ok(())
        } else {
            Err(self.issues.join("; "))
        }
    }

    fn push(&mut self, cap: usize, msg: String) {
        if self.issues.len() < cap {
            self.issues.push(msg);
        }
    }
}

impl std::fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_valid() {
            write!(f, "valid ({} vertices, {} edges)", self.vertices, self.edges)
        } else {
            write!(f, "invalid: {}", self.issues.join("; "))
        }
    }
}

/// Panic-free checker for the invariants [`Csr::new`] asserts, plus
/// graph-level consistency (degree sums, weight alignment, positive
/// weights).
#[derive(Clone, Copy, Debug)]
pub struct CsrValidator {
    /// Stop collecting after this many issues (a hostile input with a
    /// million bad targets should not cost a million allocations).
    pub max_issues: usize,
}

impl Default for CsrValidator {
    fn default() -> Self {
        CsrValidator { max_issues: 8 }
    }
}

impl CsrValidator {
    /// A validator with the default issue cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validate raw CSR parts against a claimed vertex count `n` —
    /// exactly what [`Csr::new`] would panic on, as a report.
    pub fn validate_parts(
        &self,
        n: usize,
        offsets: &[u64],
        targets: &[VertexId],
    ) -> ValidationReport {
        let mut rep = ValidationReport { vertices: n, edges: targets.len(), ..Default::default() };
        let cap = self.max_issues.max(1);
        if offsets.is_empty() {
            rep.push(cap, "offsets array is empty".into());
            return rep;
        }
        if offsets.len() != n + 1 {
            rep.push(cap, format!("offsets length {} != vertices + 1 ({})", offsets.len(), n + 1));
        }
        if offsets[0] != 0 {
            rep.push(cap, format!("offsets[0] = {} (must be 0)", offsets[0]));
        }
        for (i, w) in offsets.windows(2).enumerate() {
            if w[1] < w[0] {
                rep.push(cap, format!("offsets not monotone at vertex {i}: {} > {}", w[0], w[1]));
                if rep.issues.len() >= cap {
                    break;
                }
            }
        }
        let last = *offsets.last().unwrap();
        if last != targets.len() as u64 {
            rep.push(cap, format!("final offset {last} != edge count {}", targets.len()));
        }
        for (i, &t) in targets.iter().enumerate() {
            if t as usize >= n {
                rep.push(cap, format!("edge {i} targets vertex {t} (graph has {n} vertices)"));
                if rep.issues.len() >= cap {
                    break;
                }
            }
        }
        rep
    }

    /// Validate a constructed [`Csr`] (cheap belt-and-braces: the type
    /// already enforced this at construction).
    pub fn validate_csr(&self, csr: &Csr) -> ValidationReport {
        self.validate_parts(csr.num_vertices(), csr.offsets(), csr.targets())
    }

    /// Validate a whole [`Graph`]: both CSR views, out/in edge-count
    /// agreement, degree sums, weight-array alignment, and positive
    /// weights (the builder clamps weights to ≥ 1; a zero here means
    /// the graph bypassed it).
    pub fn validate_graph(&self, g: &Graph) -> ValidationReport {
        let cap = self.max_issues.max(1);
        let mut rep = self.validate_csr(g.out_csr());
        if !g.is_symmetric() {
            let inc = self.validate_csr(g.in_csr());
            for issue in inc.issues {
                rep.push(cap, format!("in-CSR: {issue}"));
            }
            if g.in_csr().num_edges() != g.out_csr().num_edges() {
                rep.push(
                    cap,
                    format!(
                        "in-CSR stores {} edges but out-CSR stores {}",
                        g.in_csr().num_edges(),
                        g.out_csr().num_edges()
                    ),
                );
            }
        }
        let degree_sum: u64 =
            (0..g.num_vertices() as VertexId).map(|v| g.out_degree(v) as u64).sum();
        if degree_sum != g.num_edges() as u64 {
            rep.push(cap, format!("degree sum {degree_sum} != edge count {}", g.num_edges()));
        }
        for (label, ws, csr) in
            [("out", g.out_weights(), g.out_csr()), ("in", g.in_weights(), g.in_csr())]
        {
            let Some(ws) = ws else { continue };
            if ws.len() != csr.num_edges() {
                rep.push(
                    cap,
                    format!(
                        "{label}-weights length {} != edge count {}",
                        ws.len(),
                        csr.num_edges()
                    ),
                );
            }
            if let Some(i) = ws.iter().position(|&w| w == 0) {
                rep.push(cap, format!("{label}-weight {i} is zero (weights must be ≥ 1)"));
            }
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn valid_graph_passes() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let rep = CsrValidator::new().validate_graph(&g);
        assert!(rep.is_valid(), "{rep}");
        assert_eq!((rep.vertices, rep.edges), (4, 6));
        assert!(rep.into_result().is_ok());
    }

    #[test]
    fn bad_parts_each_produce_an_issue() {
        let v = CsrValidator::new();
        assert!(!v.validate_parts(2, &[], &[]).is_valid());
        // offsets[0] != 0
        assert!(!v.validate_parts(1, &[1, 1], &[0]).is_valid());
        // non-monotone
        assert!(!v.validate_parts(2, &[0, 2, 1], &[0, 0, 1]).is_valid());
        // final offset disagrees with edge count
        assert!(!v.validate_parts(2, &[0, 1, 3], &[1]).is_valid());
        // wrong offsets length
        assert!(!v.validate_parts(3, &[0, 1], &[1]).is_valid());
        // out-of-range target
        let rep = v.validate_parts(2, &[0, 1, 2], &[1, 7]);
        assert!(!rep.is_valid());
        assert!(rep.issues[0].contains("targets vertex 7"), "{rep}");
    }

    #[test]
    fn issue_cap_bounds_the_report() {
        let targets: Vec<VertexId> = (10..40).collect(); // all out of range
        let mut offsets = vec![0u64];
        offsets.extend((1..=30).map(|i| i as u64));
        let rep = CsrValidator { max_issues: 3 }.validate_parts(30, &offsets, &targets);
        assert_eq!(rep.issues.len(), 3);
    }

    #[test]
    fn zero_weight_is_flagged() {
        let g = GraphBuilder::new(2).weighted_edges([(0, 1, 5)]).build();
        assert!(CsrValidator::new().validate_graph(&g).is_valid());
        // Hand-assemble a graph with a zero weight, bypassing the builder.
        let csr = Csr::new(vec![0, 1, 2], vec![1, 0]);
        let bad = Graph::from_parts(csr, None, Some(vec![0, 1]), None, "bad");
        let rep = CsrValidator::new().validate_graph(&bad);
        assert!(!rep.is_valid());
        assert!(rep.to_string().contains("zero"));
    }

    #[test]
    fn counters_accumulate() {
        let before = (load_rejected(), edges_repaired(), graphs_rejected());
        note_load_rejected();
        note_edges_repaired(5);
        note_edges_repaired(0);
        note_graph_rejected();
        assert_eq!(load_rejected() - before.0, 1);
        assert_eq!(edges_repaired() - before.1, 5);
        assert_eq!(graphs_rejected() - before.2, 1);
    }
}
