//! Property-based tests of the edge-cut partitioner: the invariants the
//! sharded driver's correctness rests on, checked over arbitrary edge
//! lists and shard counts.

use gswitch_graph::shard::ShardedCsr;
use gswitch_graph::{GraphBuilder, VertexId};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn edge_list() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..64).prop_flat_map(|n| {
        let e = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(e, 0..200))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every global edge lands in exactly one shard — the shard owning
    /// its source — and no shard invents edges. Checked as a multiset
    /// because the symmetrized builder can produce parallel edges.
    #[test]
    fn every_edge_in_exactly_one_shard((n, edges) in edge_list(), k in 1u32..9) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let sharded = ShardedCsr::partition(&g, k).unwrap();

        let mut global: BTreeMap<(VertexId, VertexId), usize> = BTreeMap::new();
        for u in 0..n as VertexId {
            for &v in g.out_csr().neighbors(u) {
                *global.entry((u, v)).or_insert(0) += 1;
            }
        }

        let mut sharded_edges: BTreeMap<(VertexId, VertexId), usize> = BTreeMap::new();
        for shard in sharded.shards() {
            let local = shard.graph().out_csr();
            for lu in 0..local.num_vertices() as VertexId {
                let neighbors = local.neighbors(lu);
                if !neighbors.is_empty() {
                    // Only owned vertices may carry out-edges: a halo
                    // row with edges would double-expand the vertex.
                    prop_assert!(!shard.is_halo(lu), "halo {lu} has out-edges");
                    prop_assert_eq!(sharded.owner_of(shard.to_global(lu)), shard.id());
                }
                for &lv in neighbors {
                    let e = (shard.to_global(lu), shard.to_global(lv));
                    *sharded_edges.entry(e).or_insert(0) += 1;
                }
            }
        }
        prop_assert_eq!(global, sharded_edges);
    }

    /// Local↔global renumbering round-trips in both directions, and the
    /// owned/halo split is consistent with the ownership boundaries.
    #[test]
    fn renumbering_round_trips((n, edges) in edge_list(), k in 1u32..9) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let sharded = ShardedCsr::partition(&g, k).unwrap();
        // Ownership covers the vertex space exactly once.
        let owned_total: usize = sharded.shards().iter().map(|s| s.n_owned()).sum();
        prop_assert_eq!(owned_total, n);
        for shard in sharded.shards() {
            for local in 0..shard.n_local() as VertexId {
                let global = shard.to_global(local);
                prop_assert!((global as usize) < n);
                // Round-trip through the inverse mapping.
                prop_assert_eq!(shard.to_local(global), Some(local));
                // A local id is halo iff another shard owns its global.
                prop_assert_eq!(shard.is_halo(local), sharded.owner_of(global) != shard.id());
            }
            // Globals outside this shard's knowledge don't map.
            for global in 0..n as VertexId {
                if sharded.owner_of(global) != shard.id()
                    && shard.to_local(global).is_some()
                {
                    prop_assert!(shard.halo().contains(&global));
                }
            }
        }
    }

    /// Partitioning preserves the graph-level invariants the serving
    /// layer keys on: vertex count, edge count, and weights carried
    /// 1:1 with the local edges.
    #[test]
    fn totals_and_weights_survive((n, edges) in edge_list(), k in 1u32..9, wseed in 0u64..20) {
        let g0 = GraphBuilder::new(n).edges(edges).build();
        prop_assume!(g0.num_edges() > 0);
        let g = gswitch_graph::gen::with_random_weights(&g0, 15, wseed);
        let sharded = ShardedCsr::partition(&g, k).unwrap();
        prop_assert_eq!(sharded.num_vertices(), n);
        prop_assert_eq!(sharded.num_edges(), g.num_edges());
        let local_edge_total: usize =
            sharded.shards().iter().map(|s| s.graph().num_edges()).sum();
        prop_assert_eq!(local_edge_total, g.num_edges());
        for shard in sharded.shards() {
            let lg = shard.graph();
            let w = lg.out_weights().unwrap();
            prop_assert_eq!(w.len(), lg.num_edges());
            // Each local edge's weight equals the global edge's weight.
            let gw = g.out_weights().unwrap();
            let gcsr = g.out_csr();
            let lcsr = lg.out_csr();
            for lu in 0..lcsr.num_vertices() as VertexId {
                let r = lcsr.edge_range(lu);
                for (i, &lv) in lcsr.neighbors(lu).iter().enumerate() {
                    let (u, v) = (shard.to_global(lu), shard.to_global(lv));
                    let gr = gcsr.edge_range(u);
                    let pos = gcsr.neighbors(u).iter().position(|&x| x == v).unwrap();
                    prop_assert_eq!(w[r.start + i], gw[gr.start + pos]);
                }
            }
        }
    }
}
