//! Adversarial-input tests for the dataset loaders: hostile bytes must
//! produce a structured [`LoadError`], never a panic and never an
//! attacker-sized allocation. The property tests throw fuzzed junk at
//! every format; the explicit cases pin down each hardening rule
//! (header limits, overflow, non-finite weights, strict-vs-repair) and
//! the ingest counters behind them.

use gswitch_graph::io::{
    load_dimacs_opts, load_edge_list_opts, load_mtx_opts, LoadError, LoadLimits, LoadMode,
    LoadOptions,
};
use gswitch_graph::validate;
use proptest::prelude::*;

/// Tight ceilings so fuzzed headers cannot make a case slow even when
/// they parse.
fn tight() -> LoadOptions {
    LoadOptions {
        limits: LoadLimits { max_vertices: 1 << 12, max_edges: 1 << 14 },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic any loader.
    #[test]
    fn raw_bytes_never_panic(bytes in proptest::collection::vec(0u8..255, 0..512)) {
        let _ = load_mtx_opts(&bytes[..], &tight());
        let _ = load_edge_list_opts(&bytes[..], &tight());
        let _ = load_dimacs_opts(&bytes[..], &tight());
        let _ = load_mtx_opts(&bytes[..], &LoadOptions { mode: LoadMode::Strict, ..tight() });
    }

    /// A well-formed MTX header followed by fuzzed printable lines never
    /// panics — the parser survives junk past the point where it has
    /// already trusted the header.
    #[test]
    fn mtx_with_fuzzed_body_never_panics(
        body in proptest::collection::vec(proptest::collection::vec(32u8..127, 0..40), 0..24),
    ) {
        let lines: Vec<String> =
            body.into_iter().map(|l| l.into_iter().map(char::from).collect()).collect();
        let text = format!(
            "%%MatrixMarket matrix coordinate pattern general\n8 8 16\n{}",
            lines.join("\n")
        );
        let _ = load_mtx_opts(text.as_bytes(), &tight());
    }

    /// Fuzzed numeric triples (any u64 magnitudes) in an edge list
    /// either load or fail with a structured error; when they load, the
    /// graph respects the configured ceilings.
    #[test]
    fn edge_list_numeric_fuzz_respects_limits(
        edges in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 1..16),
    ) {
        let text: String =
            edges.iter().map(|(u, v)| format!("{u} {v}\n")).collect();
        let opts = tight();
        if let Ok(l) = load_edge_list_opts(text.as_bytes(), &opts) {
            prop_assert!(l.graph.num_vertices() <= opts.limits.max_vertices);
            prop_assert!(l.graph.num_edges() <= 2 * opts.limits.max_edges);
        }
    }

    /// DIMACS with a fuzzed problem line and arcs never panics.
    #[test]
    fn dimacs_fuzz_never_panics(
        n in 0u64..u64::MAX,
        m in 0u64..u64::MAX,
        arcs in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX, 0u32..u32::MAX), 0..12),
    ) {
        let mut text = format!("p sp {n} {m}\n");
        for (u, v, w) in arcs {
            text.push_str(&format!("a {u} {v} {w}\n"));
        }
        let _ = load_dimacs_opts(text.as_bytes(), &tight());
    }
}

fn is_parse(r: Result<gswitch_graph::io::Loaded, LoadError>) -> String {
    match r {
        Err(LoadError::Parse { msg, .. }) => msg,
        Err(LoadError::Io(e)) => panic!("expected a parse error, got i/o: {e}"),
        Ok(_) => panic!("hostile input was accepted"),
    }
}

#[test]
fn oversized_mtx_header_is_rejected_before_allocation() {
    let before = validate::load_rejected();
    // Header claims ~10^15 vertices; rejection must come from the limit
    // check, long before any edge storage is reserved.
    let text = "%%MatrixMarket matrix coordinate pattern general\n1000000000000000 1 1\n1 1\n";
    let msg = is_parse(load_mtx_opts(text.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("exceeds limit"), "{msg}");
    assert!(validate::load_rejected() > before, "rejection must be counted");
}

#[test]
fn mtx_size_line_overflow_is_a_parse_error() {
    // Larger than u64::MAX: the usize parse itself must fail cleanly.
    let text = "%%MatrixMarket matrix coordinate pattern general\n99999999999999999999999999 1 1\n";
    let msg = is_parse(load_mtx_opts(text.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("bad size line"), "{msg}");
}

#[test]
fn mtx_rejects_non_finite_weights() {
    for w in ["nan", "inf", "-inf", "NaN", "Infinity"] {
        let text = format!("%%MatrixMarket matrix coordinate real general\n3 3 1\n1 2 {w}\n");
        let msg = is_parse(load_mtx_opts(text.as_bytes(), &LoadOptions::default()));
        assert!(msg.contains("non-finite"), "weight `{w}`: {msg}");
    }
}

#[test]
fn mtx_strict_rejects_negative_weights_repair_folds_them() {
    let text = "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 2 -4.0\n";
    let msg = is_parse(load_mtx_opts(text.as_bytes(), &LoadOptions::strict()));
    assert!(msg.contains("negative weight"), "{msg}");
    // Repair mode folds to |w| (the paper's integer-weight preprocessing).
    let l = load_mtx_opts(text.as_bytes(), &LoadOptions::default()).unwrap();
    assert_eq!(l.graph.out_weights().unwrap().iter().max(), Some(&4));
}

#[test]
fn mtx_truncated_and_overlong_bodies() {
    // Fewer entries than declared: fine in repair mode, an error strictly.
    let short = "%%MatrixMarket matrix coordinate pattern general\n4 4 3\n1 2\n";
    assert!(load_mtx_opts(short.as_bytes(), &LoadOptions::default()).is_ok());
    let msg = is_parse(load_mtx_opts(short.as_bytes(), &LoadOptions::strict()));
    assert!(msg.contains("truncated"), "{msg}");
    // More entries than declared is hostile in every mode.
    let long = "%%MatrixMarket matrix coordinate pattern general\n4 4 1\n1 2\n2 3\n";
    let msg = is_parse(load_mtx_opts(long.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("more entries"), "{msg}");
}

#[test]
fn mtx_indices_outside_declared_range_are_rejected() {
    let zero = "%%MatrixMarket matrix coordinate pattern general\n4 4 1\n0 2\n";
    let msg = is_parse(load_mtx_opts(zero.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("outside 1..="), "{msg}");
    let big = "%%MatrixMarket matrix coordinate pattern general\n4 4 1\n1 9\n";
    let msg = is_parse(load_mtx_opts(big.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("outside 1..="), "{msg}");
}

#[test]
fn edge_list_id_overflow_is_rejected() {
    // u32::MAX as an id would wrap `max_id + 1` on a 32-bit host; the
    // loader must refuse it with a structured error either way.
    let text = format!("0 {}\n", u32::MAX);
    let r = load_edge_list_opts(text.as_bytes(), &LoadOptions::default());
    match r {
        Err(LoadError::Parse { msg, .. }) => {
            assert!(msg.contains("overflow") || msg.contains("exceeds limit"), "{msg}");
        }
        Ok(l) => {
            // 64-bit host with default limits: n = 2^32 exceeds the
            // default vertex ceiling, so Ok is only reachable with huge
            // custom limits — never under the defaults used here.
            panic!("hostile id accepted: {} vertices", l.graph.num_vertices());
        }
        Err(e) => panic!("unexpected error kind: {e}"),
    }
}

#[test]
fn edge_list_rejects_64bit_ids_and_mixed_weight_lines() {
    let huge = format!("{} 1\n", u64::MAX);
    let msg = is_parse(load_edge_list_opts(huge.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("bad source id"), "{msg}");
    let mixed = "0 1 5\n1 2\n";
    let msg = is_parse(load_edge_list_opts(mixed.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("mixed weighted"), "{msg}");
}

#[test]
fn edge_list_strict_rejects_dirty_input_repair_counts_it() {
    let before = validate::edges_repaired();
    // One self loop and one duplicated edge.
    let dirty = "0 0\n0 1\n1 0\n";
    let msg = is_parse(load_edge_list_opts(dirty.as_bytes(), &LoadOptions::strict()));
    assert!(msg.contains("strict mode"), "{msg}");
    let l = load_edge_list_opts(dirty.as_bytes(), &LoadOptions::default()).unwrap();
    assert_eq!(l.report.self_loops_dropped, 1, "{:?}", l.report);
    assert!(l.report.parallel_edges_deduped > 0, "{:?}", l.report);
    assert!(validate::edges_repaired() > before, "repairs must be counted");
}

#[test]
fn dimacs_zero_based_ids_are_rejected() {
    let text = "p sp 4 2\na 0 1 5\n";
    let msg = is_parse(load_dimacs_opts(text.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("1-based"), "{msg}");
}

#[test]
fn dimacs_arc_before_problem_line_and_overlong_bodies() {
    let early = "a 1 2 3\np sp 4 4\n";
    let msg = is_parse(load_dimacs_opts(early.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("before problem line"), "{msg}");
    let long = "p sp 4 1\na 1 2 3\na 2 3 4\n";
    let msg = is_parse(load_dimacs_opts(long.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("more arcs"), "{msg}");
    let truncated = "p sp 4 3\na 1 2 3\n";
    assert!(load_dimacs_opts(truncated.as_bytes(), &LoadOptions::default()).is_ok());
    let msg = is_parse(load_dimacs_opts(truncated.as_bytes(), &LoadOptions::strict()));
    assert!(msg.contains("truncated"), "{msg}");
}

#[test]
fn dimacs_header_bomb_is_limited() {
    let before = validate::load_rejected();
    let text = "p sp 1000000000000 1000000000000 \n";
    let msg = is_parse(load_dimacs_opts(text.as_bytes(), &LoadOptions::default()));
    assert!(msg.contains("exceeds limit"), "{msg}");
    assert!(validate::load_rejected() > before);
}
