//! Property-based tests of the graph substrate.

use gswitch_graph::{gen, transform, GraphBuilder, VertexId};
use proptest::prelude::*;

fn edge_list() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..48).prop_flat_map(|n| {
        let e = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(e, 0..160))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Symmetric closure: degree(u) counts v iff degree(v) counts u, and
    /// the weight stored on both directions of an edge is identical.
    #[test]
    fn weighted_symmetry((n, edges) in edge_list(), wseed in 0u64..99) {
        let g0 = GraphBuilder::new(n).edges(edges).build();
        prop_assume!(g0.num_edges() > 0);
        let g = gen::with_random_weights(&g0, 31, wseed);
        let csr = g.out_csr();
        let w = g.out_weights().unwrap();
        for u in 0..n as u32 {
            let r = csr.edge_range(u);
            for (i, &v) in csr.neighbors(u).iter().enumerate() {
                let uv = w[r.start + i];
                let rv = csr.edge_range(v);
                let pos = csr.neighbors(v).iter().position(|&x| x == u).unwrap();
                prop_assert_eq!(uv, w[rv.start + pos]);
                prop_assert!((1..=31).contains(&uv));
            }
        }
    }

    /// Applying a permutation then its inverse reproduces the original
    /// adjacency exactly.
    #[test]
    fn permute_roundtrip((n, edges) in edge_list(), rot in 0usize..97) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let perm: Vec<VertexId> = (0..n).map(|v| ((v + rot) % n) as u32).collect();
        let mut inv = vec![0u32; n];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        let back = transform::permute(&transform::permute(&g, &perm), &inv);
        prop_assert_eq!(g.out_csr(), back.out_csr());
    }

    /// The largest component is connected and at least as big as any
    /// other component (checked via total vertex conservation).
    #[test]
    fn lcc_is_majority_or_equal((n, edges) in edge_list()) {
        prop_assume!(!edges.is_empty());
        let g = GraphBuilder::new(n).edges(edges).build();
        let (lcc, old) = transform::largest_component(&g);
        prop_assert_eq!(lcc.num_vertices(), old.len());
        prop_assert!(lcc.num_vertices() >= 1);
        prop_assert!(lcc.num_vertices() <= n);
        // Ids map back within range and strictly increase (order kept).
        for w in old.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Generator determinism across the whole zoo.
    #[test]
    fn generators_deterministic(seed in 0u64..50) {
        let pairs = [
            (gen::erdos_renyi(64, 128, seed), gen::erdos_renyi(64, 128, seed)),
            (gen::barabasi_albert(64, 3, seed), gen::barabasi_albert(64, 3, seed)),
            (gen::grid2d(8, 8, 0.1, seed), gen::grid2d(8, 8, 0.1, seed)),
            (gen::banded(64, 5, 0.1, seed), gen::banded(64, 5, 0.1, seed)),
            (gen::small_world(64, 2, 0.2, seed), gen::small_world(64, 2, 0.2, seed)),
        ];
        for (a, b) in pairs {
            prop_assert_eq!(a.out_csr(), b.out_csr());
        }
    }

    /// Stats invariants hold for every generator family.
    #[test]
    fn stats_bounds_across_zoo(seed in 0u64..30) {
        for g in [
            gen::erdos_renyi(100, 300, seed),
            gen::kronecker(7, 4, seed),
            gen::copying_model(100, 3, 0.5, seed),
            gen::rgg(100, 0.15, seed),
        ] {
            let s = g.stats();
            prop_assert!((0.0..1.0).contains(&s.gini), "{}: gini {}", g.name(), s.gini);
            prop_assert!((0.0..=1.0).contains(&s.entropy));
            prop_assert!(s.avg_degree >= 0.0);
            prop_assert!(s.max_degree as usize <= g.num_vertices());
        }
    }

    /// MatrixMarket writer/loader round-trip on arbitrary graphs.
    #[test]
    fn mtx_roundtrip((n, edges) in edge_list()) {
        prop_assume!(!edges.is_empty());
        let g = GraphBuilder::new(n).edges(edges).build();
        prop_assume!(g.num_edges() > 0);
        let mut buf = Vec::new();
        gswitch_graph::io::save_mtx(&g, &mut buf).unwrap();
        let g2 = gswitch_graph::io::load_mtx(buf.as_slice()).unwrap();
        prop_assert_eq!(g.out_csr(), g2.out_csr());
    }
}
