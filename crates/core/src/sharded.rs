//! Partitioned execution: the sharded super-step driver.
//!
//! [`run_sharded`] runs one application over a [`ShardedCsr`] — K
//! locally-renumbered shards with halo tables (`gswitch_graph::shard`) —
//! as a bulk-synchronous sequence of super-steps. Each super-step:
//!
//! 1. **Classify** every shard in parallel (one panic-isolated worker
//!    per shard) through a [`ShardView`] adapter that translates local
//!    vertex ids to global ones and pins halo copies to `Fixed`, so the
//!    owning shard alone classifies, prepares and expands each vertex.
//! 2. **Decide** per shard on the host: every shard carries its own
//!    [`DecisionContext`] seeded from its local `GraphStats`, so the
//!    Selector tunes the P2 active-set format and P3 load balance
//!    independently per shard. P1 direction is pinned to push, P4/P5
//!    are pinned off — cross-shard pull and fused chains would break
//!    the exchange protocol (see DESIGN §4.11).
//! 3. **Expand** every shard in parallel. App state lives in one global
//!    set of atomic arrays shared by all shards, so a push update into
//!    a halo vertex lands in the owner's data directly — the atomic *is*
//!    the exchange payload. The view counts those halo hits (total and
//!    distinct) and the driver prices the implied frontier-exchange
//!    traffic with [`DeviceSpec::exchange_time_ms`], merging duplicates
//!    first unless the app is `DUP_TOLERANT`.
//!
//! A shard worker that panics (or is lost) surfaces as a structured
//! [`ShardError`], never a hang: the remaining workers of the phase run
//! to completion, then the super-step aborts with the first failure.

use crate::cancel::{ProbeHandle, StopReason};
use crate::engine::PatternMask;
use crate::features::DecisionContext;
use crate::policy::{AppCaps, Policy};
use gswitch_graph::shard::{LocalShard, ShardedCsr};
use gswitch_graph::{VertexId, Weight};
use gswitch_kernels::exchange::ExchangeProfile;
use gswitch_kernels::pattern::KernelConfig;
use gswitch_kernels::{
    classify, expand, materialize, ClassifyOutput, EdgeApp, ExpandOutput, Status,
};
use gswitch_obs::{Provenance, RecorderHandle, SpanCtx, SpanKind, TraceEvent};
use gswitch_simt::{DeviceSpec, SimMs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a sharded run could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// The app/partition combination is outside the sharded driver's
    /// contract (e.g. a priority-driven app, whose global threshold the
    /// per-shard selectors cannot coordinate).
    Unsupported(String),
    /// A shard worker panicked; the panic was contained and converted.
    WorkerPanicked {
        /// Shard whose worker died.
        shard: u32,
        /// Phase the worker died in (`"classify"` or `"exchange"`).
        phase: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A shard worker vanished without a payload (its result was
    /// dropped before the exchange barrier).
    WorkerLost {
        /// Shard whose result never arrived.
        shard: u32,
        /// Phase the result was lost in.
        phase: &'static str,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Unsupported(why) => write!(f, "sharded execution unsupported: {why}"),
            ShardError::WorkerPanicked { shard, phase, message } => {
                write!(f, "shard {shard} worker panicked during {phase}: {message}")
            }
            ShardError::WorkerLost { shard, phase } => {
                write!(f, "shard {shard} worker lost during {phase}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Options for [`run_sharded`] — the sharded analogue of
/// [`EngineOptions`](crate::EngineOptions).
#[derive(Clone, Debug)]
pub struct ShardedOptions {
    /// The simulated GPU each shard occupies (one device per shard).
    pub device: DeviceSpec,
    /// Safety bound on super-steps.
    pub max_supersteps: u32,
    /// Pattern ablation mask. Intersected with the driver's own pinning:
    /// direction, stepping and fusion are always off in sharded runs.
    pub mask: PatternMask,
    /// Per-shard Fig. 10 stability bypass.
    pub stability_bypass: bool,
    /// Decision-trace sink; events carry `shard: Some(id)`.
    pub recorder: RecorderHandle,
    /// Cooperative stop probe, polled at every super-step barrier.
    pub probe: ProbeHandle,
    /// Span context. Per-shard inspect/expand phases run on worker
    /// threads and record spans tagged `shard: Some(id)` under each
    /// BSP super-step; host decision time is measured through its
    /// clock whether or not spans are collected.
    pub spans: SpanCtx,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            device: DeviceSpec::default(),
            max_supersteps: 50_000,
            mask: PatternMask::all(),
            stability_bypass: true,
            recorder: RecorderHandle::none(),
            probe: ProbeHandle::none(),
            spans: SpanCtx::default(),
        }
    }
}

impl ShardedOptions {
    /// Options on a specific device.
    pub fn on(device: DeviceSpec) -> Self {
        ShardedOptions { device, ..Default::default() }
    }

    /// The mask the per-shard selectors actually see: the caller's mask
    /// with the driver's pinned patterns forced off.
    fn effective_mask(&self) -> PatternMask {
        PatternMask {
            direction: false, // push only: halo rows are empty in the local out-CSR
            format: self.mask.format,
            load_balance: self.mask.load_balance,
            stepping: false, // no global priority window across shards
            fusion: false,   // a fused chain would skip the exchange barrier
        }
    }
}

/// One bulk-synchronous super-step of a sharded run.
#[derive(Clone, Copy, Debug)]
pub struct SuperStep {
    /// Super-step index (0-based).
    pub iteration: u32,
    /// Simulated Filter time: the *slowest* shard's classify +
    /// materialize (shards run on parallel devices).
    pub filter_ms: SimMs,
    /// Simulated Expand time: the slowest shard's expand.
    pub expand_ms: SimMs,
    /// Simulated frontier-exchange time for the routed halo records.
    pub exchange_ms: SimMs,
    /// Host decision time across all shards.
    pub overhead_ms: f64,
    /// Exchange volume accounting for this step.
    pub exchange: ExchangeProfile,
    /// Active vertices across all shards.
    pub active: u64,
    /// Edges traversed across all shards.
    pub edges_touched: u64,
}

/// The result of a sharded run.
#[derive(Clone, Debug, Default)]
pub struct ShardedRunReport {
    /// Number of shards that ran.
    pub k: u32,
    /// Per-super-step traces in order.
    pub supersteps: Vec<SuperStep>,
    /// Whether the global active set emptied before `max_supersteps`.
    pub converged: bool,
    /// `Some` when the probe stopped the run early.
    pub stopped: Option<StopReason>,
    /// Per-shard total busy time (filter + expand), for imbalance.
    pub shard_busy_ms: Vec<f64>,
}

impl ShardedRunReport {
    /// Super-steps executed.
    pub fn n_supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Total critical-path Filter time (ms).
    pub fn filter_ms(&self) -> SimMs {
        self.supersteps.iter().map(|s| s.filter_ms).sum()
    }

    /// Total critical-path Expand time (ms).
    pub fn expand_ms(&self) -> SimMs {
        self.supersteps.iter().map(|s| s.expand_ms).sum()
    }

    /// Total frontier-exchange time (ms).
    pub fn exchange_ms(&self) -> SimMs {
        self.supersteps.iter().map(|s| s.exchange_ms).sum()
    }

    /// Total host overhead (ms).
    pub fn overhead_ms(&self) -> f64 {
        self.supersteps.iter().map(|s| s.overhead_ms).sum()
    }

    /// End-to-end simulated time: per-step critical path + exchange +
    /// host overhead.
    pub fn total_ms(&self) -> SimMs {
        self.filter_ms() + self.expand_ms() + self.exchange_ms() + self.overhead_ms()
    }

    /// Total edges traversed across shards.
    pub fn edges_touched(&self) -> u64 {
        self.supersteps.iter().map(|s| s.edges_touched).sum()
    }

    /// Aggregate exchange volume over the whole run.
    pub fn exchange_total(&self) -> ExchangeProfile {
        let mut total = ExchangeProfile::default();
        for s in &self.supersteps {
            total.absorb(&s.exchange);
        }
        total
    }

    /// Work imbalance across shards: the busiest shard's total busy time
    /// over the average (1.0 = perfectly balanced; 0.0 on an idle run).
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.shard_busy_ms.iter().sum();
        if self.shard_busy_ms.is_empty() || total == 0.0 {
            return 0.0;
        }
        let max = self.shard_busy_ms.iter().cloned().fold(0.0, f64::max);
        max / (total / self.shard_busy_ms.len() as f64)
    }
}

/// The per-shard adapter: presents one [`LocalShard`] to the kernels as
/// a self-contained graph application while every semantic call lands in
/// the *global* app. Halo copies classify as `Fixed` (their owner alone
/// drives them) and halo-directed updates are counted as exchange
/// records.
struct ShardView<'a, A: EdgeApp> {
    app: &'a A,
    shard: &'a LocalShard,
    /// Comp attempts whose destination is a halo copy — the records the
    /// exchange step must route to owners. Attempts, not successes: a
    /// shard cannot know remotely whether its update will win against a
    /// concurrent owner-side write, so every boundary-crossing message
    /// is routed (this also keeps the count deterministic run to run,
    /// which the `BENCH_shard.json` snapshot relies on).
    halo_records: AtomicU64,
    /// Distinct halo destinations this super-step.
    halo_seen: gswitch_kernels::atomics::AtomicBitSet,
}

impl<'a, A: EdgeApp> ShardView<'a, A> {
    fn new(app: &'a A, shard: &'a LocalShard) -> Self {
        ShardView {
            app,
            shard,
            halo_records: AtomicU64::new(0),
            halo_seen: gswitch_kernels::atomics::AtomicBitSet::new(shard.n_halo()),
        }
    }

    #[inline]
    fn global(&self, local: VertexId) -> VertexId {
        self.shard.to_global(local)
    }

    /// Drain this super-step's exchange counters: `(records, distinct)`.
    fn take_exchange(&self) -> (u64, u64) {
        let records = self.halo_records.swap(0, Ordering::Relaxed);
        let distinct = self.halo_seen.count() as u64;
        self.halo_seen.clear();
        (records, distinct)
    }
}

impl<A: EdgeApp> EdgeApp for ShardView<'_, A> {
    type Msg = A::Msg;

    const PULL_EARLY_EXIT: bool = A::PULL_EARLY_EXIT;
    const DUP_TOLERANT: bool = A::DUP_TOLERANT;
    const NEEDS_WEIGHTS: bool = A::NEEDS_WEIGHTS;
    // The driver rejects priority-driven apps up front; the view never
    // advertises the capability so per-shard selectors cannot step.
    const PRIORITY_DRIVEN: bool = false;

    fn filter(&self, v: VertexId) -> Status {
        if self.shard.is_halo(v) {
            // The owner classifies (and prepares) the real vertex; the
            // halo copy is inert in this shard.
            Status::Fixed
        } else {
            self.app.filter(self.global(v))
        }
    }

    fn prepare(&self, v: VertexId) {
        self.app.prepare(self.global(v));
    }

    fn emit(&self, u: VertexId, w: Weight) -> A::Msg {
        self.app.emit(self.global(u), w)
    }

    fn comp_atomic(&self, dst: VertexId, msg: A::Msg) -> bool {
        if self.shard.is_halo(dst) {
            // The atomic below delivers the update to the owner's data
            // directly; what remains is the routing cost — charged per
            // attempt, because a real shard must send the message
            // before knowing whether it wins at the owner.
            self.halo_records.fetch_add(1, Ordering::Relaxed);
            self.halo_seen.set(dst - self.shard.n_owned() as VertexId);
        }
        self.app.comp_atomic(self.global(dst), msg)
    }

    fn comp(&self, dst: VertexId, msg: A::Msg) -> bool {
        self.app.comp(self.global(dst), msg)
    }

    // No-op: the driver advances the global app once per super-step;
    // K per-shard calls would skip levels.
    fn advance(&self, _iteration: u32) {}

    fn pull_receives(status: Status) -> bool {
        A::pull_receives(status)
    }

    fn would_tie(&self, dst: VertexId, msg: A::Msg) -> bool {
        self.app.would_tie(self.global(dst), msg)
    }

    // rescue() deliberately not forwarded: convergence is a global
    // property the driver owns; a per-shard rescue could resurrect one
    // shard while the barrier believes the run has drained.
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Run every shard's closure on its own thread, containing panics.
/// Returns per-shard results; `Err` carries the structured failure.
fn fan_out<'env, T: Send>(
    k: usize,
    phase: &'static str,
    job: impl Fn(usize) -> T + Sync + 'env,
) -> Vec<Result<T, ShardError>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|s| {
                let job = &job;
                scope.spawn(move || catch_unwind(AssertUnwindSafe(|| job(s))))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(s, h)| match h.join() {
                Ok(Ok(v)) => Ok(v),
                Ok(Err(payload)) => Err(ShardError::WorkerPanicked {
                    shard: s as u32,
                    phase,
                    message: panic_message(payload),
                }),
                Err(_) => Err(ShardError::WorkerLost { shard: s as u32, phase }),
            })
            .collect()
    })
}

/// Run `app` over the partitioned graph until global convergence.
///
/// Semantics match the single-shard engine exactly for push-mode apps:
/// one global app instance, BSP barriers between classify and expand,
/// `advance` called once per super-step, `prepare` exactly once per
/// active vertex (its owner's classify). Priority-driven apps are
/// rejected — their stepping window is global state the per-shard
/// selectors cannot coordinate.
pub fn run_sharded<A: EdgeApp>(
    sharded: &ShardedCsr,
    app: &A,
    policy: &dyn Policy,
    opts: &ShardedOptions,
) -> Result<ShardedRunReport, ShardError> {
    if A::PRIORITY_DRIVEN {
        return Err(ShardError::Unsupported(
            "priority-driven apps need a global stepping window; run them single-shard".into(),
        ));
    }
    let k = sharded.k() as usize;
    let spec = &opts.device;
    let mask = opts.effective_mask();
    let caps = AppCaps::of::<ShardView<'_, A>>();
    let payload_bytes = std::mem::size_of::<A::Msg>() as u32;

    let views: Vec<ShardView<'_, A>> =
        sharded.shards().iter().map(|sh| ShardView::new(app, sh)).collect();

    let mut report =
        ShardedRunReport { k: k as u32, shard_busy_ms: vec![0.0; k], ..Default::default() };

    // Per-shard decision state, mirroring the engine's history block.
    let mut ctxs: Vec<DecisionContext> =
        sharded.shards().iter().map(|sh| DecisionContext::initial(*sh.graph().stats())).collect();
    let mut tf_sums = vec![0.0f64; k];
    let mut te_sums = vec![0.0f64; k];
    let mut last_configs: Vec<Option<KernelConfig>> = vec![None; k];
    let mut streaks = vec![0u32; k];

    // Span plumbing: the driver thread stages into one local buffer;
    // fan_out workers make their own per-call (shard phases are coarse
    // enough that the per-thread buffer setup is noise).
    let span_local = opts.spans.local();
    let clock = span_local.clock().clone();
    let sctx = opts.spans.clone();

    for iteration in 0..opts.max_supersteps {
        if let Some(reason) = opts.probe.check(iteration) {
            report.stopped = Some(reason);
            break;
        }
        let step_guard =
            span_local.start_tagged(SpanKind::SuperStep, opts.spans.parent, None, iteration);
        let step_id = step_guard.id();
        // One global advance: the K views are windows onto one app.
        app.advance(iteration);

        // ---- Phase 1: classify all shards (parallel, panic-isolated).
        let classified = fan_out(k, "classify", |s| {
            let sl = sctx.collector().local(s as u32, sctx.job);
            let _span = sl.start_tagged(SpanKind::Inspect, step_id, Some(s as u32), iteration);
            classify(views[s].shard.graph(), &views[s], spec)
        });
        let mut outputs: Vec<ClassifyOutput> = Vec::with_capacity(k);
        for r in classified {
            outputs.push(r?);
        }

        let total_active: u64 = outputs.iter().map(|o| o.stats.v_active).sum();
        if total_active == 0 {
            report.converged = true;
            break;
        }

        // ---- Phase 2: per-shard decisions on the host.
        let mut overhead_host_ms = 0.0;
        let mut decisions: Vec<(KernelConfig, Provenance, bool)> = Vec::with_capacity(k);
        for s in 0..k {
            let ctx = &mut ctxs[s];
            ctx.iteration = iteration;
            ctx.stats = outputs[s].stats;
            let stable = opts.stability_bypass
                && streaks[s] >= 2
                && ctx.t_e_avg > 0.0
                && (ctx.t_e - ctx.t_e_avg).abs() <= 0.5 * ctx.t_e_avg;
            let (cfg, prov, decided) = match (stable, last_configs[s]) {
                (true, Some(prev)) => (prev, Provenance::StabilityBypass, false),
                _ => {
                    let t0 = clock.now_ns();
                    let c = policy.decide(ctx, &caps);
                    let t1 = clock.now_ns();
                    overhead_host_ms += t1.saturating_sub(t0) as f64 / 1e6;
                    span_local.record_interval(
                        SpanKind::Select,
                        step_id,
                        t0,
                        t1,
                        Some(s as u32),
                        iteration,
                    );
                    (c, Provenance::Decided, true)
                }
            };
            decisions.push((caps.clamp(mask.apply(cfg)), prov, decided));
        }

        // ---- Phase 3: materialize + expand all shards (parallel,
        // panic-isolated). Every halo-directed comp_atomic inside is an
        // exchange record; the barrier below settles the accounting.
        let expanded = fan_out(k, "exchange", |s| {
            #[cfg(feature = "fault-injection")]
            crate::faults::maybe_shard_panic(s as u32);
            let sl = sctx.collector().local(s as u32, sctx.job);
            let _span = sl.start_tagged(SpanKind::Expand, step_id, Some(s as u32), iteration);
            let view = &views[s];
            let g = view.shard.graph();
            let cfg = decisions[s].0;
            let (frontier, mat_profile) = materialize::<ShardView<'_, A>>(
                g,
                &outputs[s].status,
                cfg.direction,
                cfg.format,
                spec,
            );
            let eo = expand(g, view, &frontier, &outputs[s].status, cfg, spec);
            (spec.kernel_time_ms(&mat_profile), eo)
        });
        let mut results: Vec<(SimMs, ExpandOutput)> = Vec::with_capacity(k);
        for (s, r) in expanded.into_iter().enumerate() {
            #[cfg(feature = "fault-injection")]
            if crate::faults::take_shard_drop(s as u32) {
                return Err(ShardError::WorkerLost { shard: s as u32, phase: "exchange" });
            }
            #[cfg(not(feature = "fault-injection"))]
            let _ = s;
            results.push(r?);
        }

        // ---- Phase 4: exchange accounting + feedback (the barrier).
        let x0 = clock.now_ns();
        let mut exchange = ExchangeProfile::default();
        let mut step = SuperStep {
            iteration,
            filter_ms: 0.0,
            expand_ms: 0.0,
            exchange_ms: 0.0,
            overhead_ms: overhead_host_ms + spec.feedback_time_ms(),
            exchange: ExchangeProfile::default(),
            active: total_active,
            edges_touched: 0,
        };
        for s in 0..k {
            let (mat_ms, eo) = &results[s];
            let classify_ms = spec.kernel_time_ms(&outputs[s].profile);
            let filter_ms = classify_ms + mat_ms;
            let expand_ms = spec.kernel_time_ms(&eo.profile);
            let (records, distinct) = views[s].take_exchange();
            exchange.absorb(&ExchangeProfile::for_app(
                records,
                distinct,
                A::DUP_TOLERANT,
                payload_bytes,
            ));

            // Shards are parallel devices: the step's filter/expand is
            // the slowest shard's; each shard's own busy time feeds the
            // imbalance metric.
            step.filter_ms = step.filter_ms.max(filter_ms);
            step.expand_ms = step.expand_ms.max(expand_ms);
            step.edges_touched += eo.edges_touched;
            report.shard_busy_ms[s] += filter_ms + expand_ms;

            let (config, provenance, _) = decisions[s];
            if let Some(rec) = opts.recorder.active() {
                rec.record(&TraceEvent {
                    iteration,
                    config,
                    provenance,
                    predicted_ms: ctxs[s].t_e_avg,
                    measured_ms: expand_ms,
                    filter_ms,
                    overhead_ms: 0.0,
                    v_active: outputs[s].stats.v_active,
                    e_active: outputs[s].stats.e_active,
                    edges_touched: eo.edges_touched,
                    activations: eo.activations,
                    duplicates: eo.profile.duplicates,
                    task_total_cycles: eo.profile.tasks.total_cycles,
                    task_max_cycles: eo.profile.tasks.max_cycles,
                    task_count: eo.profile.tasks.count,
                    features: ctxs[s].features(config.direction),
                    shard: Some(s as u32),
                });
            }

            // Per-shard history for the next super-step's Inspector.
            let ctx = &mut ctxs[s];
            tf_sums[s] += filter_ms;
            te_sums[s] += expand_ms;
            let done = iteration as f64 + 1.0;
            ctx.prev_prev_workload_edges = ctx.prev_workload_edges;
            ctx.prev_workload_edges = eo.edges_touched;
            ctx.t_f = filter_ms;
            ctx.t_e = expand_ms;
            ctx.t_f_avg = tf_sums[s] / done;
            ctx.t_e_avg = te_sums[s] / done;
            if last_configs[s] == Some(config) {
                streaks[s] += 1;
            } else {
                streaks[s] = 0;
            }
            last_configs[s] = Some(config);
        }
        // Exchange: routed records cross the interconnect to k-1 peers.
        step.exchange = exchange;
        step.exchange_ms = spec.exchange_time_ms(exchange.bytes(), (k as u32).saturating_sub(1));
        span_local.record_interval(
            SpanKind::Exchange,
            step_id,
            x0,
            clock.now_ns(),
            None,
            iteration,
        );
        report.supersteps.push(step);
    }

    if report.n_supersteps() >= opts.max_supersteps as usize {
        report.converged = false;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, EngineOptions};
    use crate::policy::{AutoPolicy, StaticPolicy};
    use gswitch_graph::{gen, Graph, GraphBuilder};
    use gswitch_kernels::atomics::AtomicArray;
    use gswitch_kernels::pattern::{Direction, Fusion, SteppingDelta};
    use gswitch_obs::TraceRing;
    use std::sync::Arc;

    /// The engine-test BFS app, reused for equivalence checks.
    struct Bfs {
        level: AtomicArray<u32>,
        current: std::sync::atomic::AtomicU32,
    }

    impl Bfs {
        fn new(n: usize, src: VertexId) -> Self {
            let b = Bfs {
                level: AtomicArray::filled(n, u32::MAX),
                current: std::sync::atomic::AtomicU32::new(0),
            };
            b.level.store(src, 0);
            b
        }
    }

    impl EdgeApp for Bfs {
        type Msg = u32;
        const PULL_EARLY_EXIT: bool = true;
        fn filter(&self, v: VertexId) -> Status {
            let l = self.level.load(v);
            let cur = self.current.load(std::sync::atomic::Ordering::Relaxed);
            if l == cur {
                Status::Active
            } else if l == u32::MAX {
                Status::Inactive
            } else {
                Status::Fixed
            }
        }
        fn emit(&self, u: VertexId, _w: u32) -> u32 {
            self.level.load(u) + 1
        }
        fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
            self.level.fetch_min(dst, msg) > msg
        }
        fn comp(&self, dst: VertexId, msg: u32) -> bool {
            if msg < self.level.load(dst) {
                self.level.store(dst, msg);
                true
            } else {
                false
            }
        }
        fn advance(&self, it: u32) {
            self.current.store(it, std::sync::atomic::Ordering::Relaxed);
        }
        fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
            self.level.load(dst) == msg
        }
    }

    /// A panicking app, to prove worker isolation.
    struct Bomb;
    impl EdgeApp for Bomb {
        type Msg = u32;
        fn filter(&self, v: VertexId) -> Status {
            if v == 3 {
                panic!("boom at vertex 3");
            }
            Status::Active
        }
        fn emit(&self, _u: VertexId, _w: u32) -> u32 {
            0
        }
        fn comp_atomic(&self, _d: VertexId, _m: u32) -> bool {
            false
        }
        fn comp(&self, _d: VertexId, _m: u32) -> bool {
            false
        }
    }

    /// A priority-driven stub, to prove the contract check.
    struct Stepped;
    impl EdgeApp for Stepped {
        type Msg = u32;
        const PRIORITY_DRIVEN: bool = true;
        fn filter(&self, _v: VertexId) -> Status {
            Status::Fixed
        }
        fn emit(&self, _u: VertexId, _w: u32) -> u32 {
            0
        }
        fn comp_atomic(&self, _d: VertexId, _m: u32) -> bool {
            false
        }
        fn comp(&self, _d: VertexId, _m: u32) -> bool {
            false
        }
    }

    fn sharded_levels(g: &Graph, k: u32, src: VertexId) -> (Vec<u32>, ShardedRunReport) {
        let sharded = ShardedCsr::partition(g, k).expect("partition");
        let app = Bfs::new(g.num_vertices(), src);
        let rep = run_sharded(&sharded, &app, &AutoPolicy, &ShardedOptions::default())
            .expect("sharded run");
        (app.level.to_vec(), rep)
    }

    fn single_levels(g: &Graph, src: VertexId) -> Vec<u32> {
        let app = Bfs::new(g.num_vertices(), src);
        let rep = run(g, &app, &AutoPolicy, &EngineOptions::default());
        assert!(rep.converged);
        app.level.to_vec()
    }

    #[test]
    fn one_shard_matches_single_engine() {
        let g = gen::erdos_renyi(400, 1_600, 11);
        let expected = single_levels(&g, 0);
        let (levels, rep) = sharded_levels(&g, 1, 0);
        assert!(rep.converged);
        assert_eq!(levels, expected);
        // One shard has no peers: zero exchange.
        assert_eq!(rep.exchange_total().records, 0);
        assert_eq!(rep.exchange_ms(), 0.0);
    }

    #[test]
    fn multi_shard_bfs_bit_matches_single_shard() {
        for (graph, src) in [
            (gen::erdos_renyi(500, 2_000, 3), 0u32),
            (gen::kronecker(9, 8, 7), 0u32),
            (gen::grid2d(25, 25, 0.0, 5), 17u32),
        ] {
            let expected = single_levels(&graph, src);
            for k in [2u32, 4, 8] {
                let (levels, rep) = sharded_levels(&graph, k, src);
                assert!(rep.converged, "k={k} did not converge");
                assert_eq!(levels, expected, "k={k} diverged on {}", graph.name());
            }
        }
    }

    #[test]
    fn exchange_is_counted_and_priced() {
        // A path crossing shard boundaries guarantees halo traffic.
        let g = GraphBuilder::new(64).edges((0..63u32).map(|i| (i, i + 1))).build();
        let (_, rep) = sharded_levels(&g, 4, 0);
        let total = rep.exchange_total();
        assert!(total.records > 0, "boundary-crossing BFS produced no exchange records");
        assert!(total.bytes() > 0);
        assert!(rep.exchange_ms() > 0.0);
        // BFS is DUP_TOLERANT: everything routes.
        assert_eq!(total.routed, total.records);
    }

    #[test]
    fn sharded_trace_events_carry_shard_ids() {
        let g = gen::erdos_renyi(300, 1_200, 5);
        let sharded = ShardedCsr::partition(&g, 3).expect("partition");
        let app = Bfs::new(g.num_vertices(), 0);
        let ring = Arc::new(TraceRing::new(4096));
        let opts = ShardedOptions {
            recorder: RecorderHandle::new(ring.recorder(1, "er", "bfs")),
            ..Default::default()
        };
        let rep = run_sharded(&sharded, &app, &AutoPolicy, &opts).expect("run");
        assert!(rep.converged);
        let events = ring.snapshot();
        assert!(!events.is_empty());
        let mut shards_seen: Vec<u32> = events.iter().filter_map(|e| e.event.shard).collect();
        shards_seen.sort_unstable();
        shards_seen.dedup();
        assert_eq!(shards_seen, vec![0, 1, 2]);
        // Pinned patterns hold in every event.
        for e in &events {
            assert_eq!(e.event.config.direction, Direction::Push);
            assert_eq!(e.event.config.fusion, Fusion::Standalone);
            assert_eq!(e.event.config.stepping, SteppingDelta::Remain);
        }
    }

    #[test]
    fn sharded_run_emits_per_shard_spans() {
        use gswitch_obs::{profile, SpanCtx, SpanRing};
        let g = gen::erdos_renyi(300, 1_200, 5);
        let sharded = ShardedCsr::partition(&g, 3).expect("partition");
        let app = Bfs::new(g.num_vertices(), 0);
        let ring = Arc::new(SpanRing::new(8192));
        let parent = ring.alloc_id();
        let opts = ShardedOptions {
            spans: SpanCtx::new(ring.collector(), parent, 9, 42),
            ..Default::default()
        };
        let rep = run_sharded(&sharded, &app, &AutoPolicy, &opts).expect("run");
        assert!(rep.converged);
        let spans = ring.snapshot();
        assert_eq!(ring.dropped(), 0);

        // One SuperStep per executed superstep (+1: the final iteration
        // opens a span, detects convergence, and pushes no report step),
        // all under the caller's parent.
        let steps: Vec<_> =
            spans.iter().filter(|s| s.kind == gswitch_obs::SpanKind::SuperStep).collect();
        assert_eq!(steps.len(), rep.n_supersteps() + 1);
        let step_ids: std::collections::BTreeSet<u64> = steps
            .iter()
            .map(|s| {
                assert_eq!(s.parent, parent);
                assert_eq!(s.job, 42);
                s.id
            })
            .collect();

        // Inspect/Expand are per-shard children; every shard shows up.
        let mut inspect_shards = std::collections::BTreeSet::new();
        let mut expand_shards = std::collections::BTreeSet::new();
        for s in &spans {
            match s.kind {
                gswitch_obs::SpanKind::Inspect => {
                    assert!(step_ids.contains(&s.parent));
                    inspect_shards.insert(s.shard.expect("inspect span missing shard"));
                }
                gswitch_obs::SpanKind::Expand => {
                    assert!(step_ids.contains(&s.parent));
                    expand_shards.insert(s.shard.expect("expand span missing shard"));
                }
                gswitch_obs::SpanKind::Exchange => assert!(step_ids.contains(&s.parent)),
                _ => {}
            }
        }
        assert_eq!(inspect_shards, (0..3).collect());
        assert_eq!(expand_shards, (0..3).collect());

        // Self-time accounting never exceeds root wall time.
        let p = profile(&spans);
        assert!(p.excl_total_ms() <= p.total_ms + 1e-9);
    }

    #[test]
    fn worker_panic_becomes_structured_error() {
        let g = GraphBuilder::new(8).edges([(0, 1), (2, 3), (4, 5), (6, 7)]).build();
        let sharded = ShardedCsr::partition(&g, 2).expect("partition");
        let err = run_sharded(&sharded, &Bomb, &AutoPolicy, &ShardedOptions::default())
            .expect_err("bomb must fail");
        match err {
            ShardError::WorkerPanicked { phase, message, .. } => {
                assert_eq!(phase, "classify");
                assert!(message.contains("boom"), "payload lost: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn priority_driven_apps_are_rejected() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2)]).build();
        let sharded = ShardedCsr::partition(&g, 2).expect("partition");
        let err = run_sharded(&sharded, &Stepped, &AutoPolicy, &ShardedOptions::default())
            .expect_err("priority-driven must be rejected");
        assert!(matches!(err, ShardError::Unsupported(_)));
        assert!(err.to_string().contains("priority-driven"));
    }

    #[test]
    fn probe_stops_sharded_run() {
        use crate::cancel::{RunProbe, StopReason};
        struct StopAt(u32);
        impl RunProbe for StopAt {
            fn check(&self, iteration: u32) -> Option<StopReason> {
                (iteration >= self.0).then_some(StopReason::DeadlineExceeded)
            }
        }
        let g = gen::grid2d(30, 30, 0.0, 2);
        let sharded = ShardedCsr::partition(&g, 2).expect("partition");
        let app = Bfs::new(g.num_vertices(), 0);
        let opts =
            ShardedOptions { probe: ProbeHandle::new(Arc::new(StopAt(2))), ..Default::default() };
        let rep = run_sharded(&sharded, &app, &AutoPolicy, &opts).expect("run");
        assert_eq!(rep.stopped, Some(StopReason::DeadlineExceeded));
        assert!(!rep.converged);
        assert_eq!(rep.n_supersteps(), 2);
    }

    #[test]
    fn report_aggregates_are_consistent() {
        let g = gen::kronecker(8, 8, 13);
        let (_, rep) = sharded_levels(&g, 4, 0);
        let sum: f64 = rep
            .supersteps
            .iter()
            .map(|s| s.filter_ms + s.expand_ms + s.exchange_ms + s.overhead_ms)
            .sum();
        assert!((rep.total_ms() - sum).abs() < 1e-9);
        assert_eq!(rep.shard_busy_ms.len(), 4);
        let imb = rep.imbalance();
        assert!(imb >= 1.0, "busiest/avg must be >= 1, got {imb}");
    }

    #[test]
    fn static_policy_is_honored_per_shard() {
        let g = gen::erdos_renyi(300, 1_500, 2);
        let sharded = ShardedCsr::partition(&g, 2).expect("partition");
        let app = Bfs::new(g.num_vertices(), 0);
        let pinned = KernelConfig::push_baseline();
        let rep =
            run_sharded(&sharded, &app, &StaticPolicy::new(pinned), &ShardedOptions::default())
                .expect("run");
        assert!(rep.converged);
        assert_eq!(app.level.to_vec(), single_levels(&g, 0));
    }
}
