//! Cooperative cancellation for engine runs.
//!
//! The engine has no preemption points finer than a super-step, so
//! stopping a run mid-flight is necessarily cooperative: the loop polls
//! a probe once per iteration (before any kernel work) and exits early
//! when the probe says stop, recording the reason in
//! [`RunReport::stopped`](crate::RunReport). The poll costs one
//! `Option` check when no probe is installed — the same discipline as
//! the decision-trace recorder.
//!
//! [`CancelToken`] is the standard probe: an atomic cancel flag plus an
//! optional wall-clock deadline. A serving scheduler hands each job a
//! token built from its admission deadline, keeps it while the job
//! runs (so `cancel` can reach a job that already started), and maps
//! the stop reason onto the job's terminal status.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a run was stopped before convergence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The caller asked the run to stop.
    Cancelled,
    /// The run's deadline passed while it was executing.
    DeadlineExceeded,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// Polled by the engine once per super-step; `Some` stops the run.
pub trait RunProbe: Send + Sync {
    /// Return `Some(reason)` to stop the run before `iteration` does
    /// any work. Called at the top of every super-step.
    fn check(&self, iteration: u32) -> Option<StopReason>;
}

/// A shareable probe slot for [`EngineOptions`](crate::EngineOptions):
/// either no probe (free) or an `Arc<dyn RunProbe>`.
#[derive(Clone, Default)]
pub struct ProbeHandle(Option<Arc<dyn RunProbe>>);

impl ProbeHandle {
    /// No probe: the engine runs to convergence unconditionally.
    pub fn none() -> Self {
        ProbeHandle(None)
    }

    /// Install `probe`.
    pub fn new(probe: Arc<dyn RunProbe>) -> Self {
        ProbeHandle(Some(probe))
    }

    /// Whether a probe is installed.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Poll the probe, if any.
    #[inline]
    pub fn check(&self, iteration: u32) -> Option<StopReason> {
        match &self.0 {
            Some(p) => p.check(iteration),
            None => None,
        }
    }
}

impl std::fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ProbeHandle").field(&self.0.as_ref().map(|_| "dyn RunProbe")).finish()
    }
}

/// The standard probe: an atomic cancel flag plus an optional deadline.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only ever stops when [`CancelToken::cancel`] is
    /// called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally stops once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken { cancelled: AtomicBool::new(false), deadline: Some(deadline) }
    }

    /// Ask the run to stop at its next super-step.
    ///
    /// Release pairs with the Acquire in [`CancelToken::is_cancelled`]:
    /// whatever the canceller wrote before flipping the flag (deadline
    /// bookkeeping, outcome state) is visible to the run that observes
    /// the flip.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

impl RunProbe for CancelToken {
    fn check(&self, _iteration: u32) -> Option<StopReason> {
        if self.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(StopReason::DeadlineExceeded),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn empty_handle_never_stops() {
        let h = ProbeHandle::none();
        assert!(!h.is_enabled());
        assert_eq!(h.check(0), None);
        assert_eq!(h.check(1_000_000), None);
    }

    #[test]
    fn token_cancel_and_deadline() {
        let t = CancelToken::new();
        assert_eq!(t.check(0), None);
        t.cancel();
        assert_eq!(t.check(1), Some(StopReason::Cancelled));

        let past = Instant::now() - Duration::from_millis(1);
        let t = CancelToken::with_deadline(past);
        assert_eq!(t.check(0), Some(StopReason::DeadlineExceeded));
        // Cancellation outranks the deadline: the caller's explicit
        // request is the more specific signal.
        t.cancel();
        assert_eq!(t.check(0), Some(StopReason::Cancelled));

        let future = Instant::now() + Duration::from_secs(3600);
        let t = CancelToken::with_deadline(future);
        assert_eq!(t.check(0), None);
    }
}
