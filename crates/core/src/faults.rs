//! Deterministic fault injection for the divergence sentinel, compiled
//! only under the `fault-injection` feature (CI runs the suite; release
//! builds contain none of this).
//!
//! The one fault modelled here is the one the sentinel exists to catch:
//! a buggy tuned variant that silently produces an incomplete frontier.
//! Arming is process-global, so tests that arm it must run in their own
//! process (see `tests/sentinel.rs`) rather than alongside the unit
//! tests.

use gswitch_kernels::Frontier;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static FIRED: AtomicU64 = AtomicU64::new(0);

/// Arm the frontier-corruption fault: every subsequent non-reference
/// materialization silently loses one workload entry.
pub fn arm_frontier_corruption() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm and zero the fired counter.
pub fn reset() {
    ARMED.store(false, Ordering::SeqCst);
    FIRED.store(0, Ordering::SeqCst);
}

/// How many times a frontier was actually corrupted.
pub fn fired() -> u64 {
    FIRED.load(Ordering::SeqCst)
}

/// Drop one entry from `f` when armed. Reference-shape materializations
/// are exempt — the injected bug lives in the tuned variants, so the
/// sentinel's pinned fallback genuinely recovers.
pub fn corrupt_frontier(f: &mut Frontier, is_reference: bool) {
    if is_reference || !ARMED.load(Ordering::SeqCst) {
        return;
    }
    let dropped = match f {
        Frontier::Bitmap(b) => match b.to_sorted_vec().first() {
            Some(&v) => b.unset(v),
            None => false,
        },
        Frontier::UnsortedQueue(q) | Frontier::SortedQueue(q) | Frontier::RawQueue(q) => {
            q.pop().is_some()
        }
    };
    if dropped {
        FIRED.fetch_add(1, Ordering::SeqCst);
    }
}
