//! Deterministic fault injection for the divergence sentinel, compiled
//! only under the `fault-injection` feature (CI runs the suite; release
//! builds contain none of this).
//!
//! The one fault modelled here is the one the sentinel exists to catch:
//! a buggy tuned variant that silently produces an incomplete frontier.
//! Arming is process-global, so tests that arm it must run in their own
//! process (see `tests/sentinel.rs`) rather than alongside the unit
//! tests.

use gswitch_kernels::Frontier;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static FIRED: AtomicU64 = AtomicU64::new(0);

/// Sentinel for "no shard armed" in the shard fault slots below.
const DISARMED: u32 = u32::MAX;

// Shard-worker faults for the partitioned driver: one-shot, armed with
// a target shard id. `SHARD_PANIC` kills the worker at the start of its
// exchange-phase work; `SHARD_DROP` loses the worker's result at the
// collection barrier. Both must surface as structured `ShardError`s,
// never hangs — `tests/shard_faults.rs` proves it.
static SHARD_PANIC: AtomicU32 = AtomicU32::new(DISARMED);
static SHARD_DROP: AtomicU32 = AtomicU32::new(DISARMED);
static SHARD_FIRED: AtomicU64 = AtomicU64::new(0);

/// Arm the frontier-corruption fault: every subsequent non-reference
/// materialization silently loses one workload entry.
pub fn arm_frontier_corruption() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Arm a one-shot panic in shard `shard`'s exchange-phase worker.
pub fn arm_shard_panic(shard: u32) {
    SHARD_PANIC.store(shard, Ordering::SeqCst);
}

/// Arm a one-shot result loss for shard `shard` at the exchange barrier.
pub fn arm_shard_drop(shard: u32) {
    SHARD_DROP.store(shard, Ordering::SeqCst);
}

/// Fire the armed panic if `shard` is the target (one-shot: disarms
/// before panicking so retries proceed cleanly).
pub fn maybe_shard_panic(shard: u32) {
    if SHARD_PANIC.compare_exchange(shard, DISARMED, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
        SHARD_FIRED.fetch_add(1, Ordering::SeqCst);
        panic!("injected fault: shard {shard} worker died at the exchange step");
    }
}

/// Consume the armed drop if `shard` is the target (one-shot).
pub fn take_shard_drop(shard: u32) -> bool {
    let hit =
        SHARD_DROP.compare_exchange(shard, DISARMED, Ordering::SeqCst, Ordering::SeqCst).is_ok();
    if hit {
        SHARD_FIRED.fetch_add(1, Ordering::SeqCst);
    }
    hit
}

/// How many shard-worker faults actually fired.
pub fn shard_fired() -> u64 {
    SHARD_FIRED.load(Ordering::SeqCst)
}

/// Disarm every fault and zero the fired counters.
pub fn reset() {
    ARMED.store(false, Ordering::SeqCst);
    FIRED.store(0, Ordering::SeqCst);
    SHARD_PANIC.store(DISARMED, Ordering::SeqCst);
    SHARD_DROP.store(DISARMED, Ordering::SeqCst);
    SHARD_FIRED.store(0, Ordering::SeqCst);
}

/// How many times a frontier was actually corrupted.
pub fn fired() -> u64 {
    FIRED.load(Ordering::SeqCst)
}

/// Drop one entry from `f` when armed. Reference-shape materializations
/// are exempt — the injected bug lives in the tuned variants, so the
/// sentinel's pinned fallback genuinely recovers.
pub fn corrupt_frontier(f: &mut Frontier, is_reference: bool) {
    if is_reference || !ARMED.load(Ordering::SeqCst) {
        return;
    }
    let dropped = match f {
        Frontier::Bitmap(b) => match b.to_sorted_vec().first() {
            Some(&v) => b.unset(v),
            None => false,
        },
        Frontier::UnsortedQueue(q) | Frontier::SortedQueue(q) | Frontier::RawQueue(q) => {
            q.pop().is_some()
        }
    };
    if dropped {
        FIRED.fetch_add(1, Ordering::SeqCst);
    }
}
