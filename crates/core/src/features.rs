//! The Inspector: feature assembly (Table 1).

use gswitch_graph::GraphStats;
use gswitch_kernels::{Direction, IterStats, SteppingDelta};
use gswitch_ml::FEATURE_COUNT;

/// Everything the Selector may look at when deciding one iteration's
/// configuration: dataset attributes (computed once at load), the runtime
/// characteristics of the most recent classification, and historical
/// timing. Plain `Copy` data — the engine snapshots it per iteration and
/// stores it in the trace.
#[derive(Clone, Copy, Debug)]
pub struct DecisionContext {
    /// Dataset attributes (Table 1, top block).
    pub graph: GraphStats,
    /// Runtime characteristics of the current workload (Table 1, middle
    /// block) — from this iteration's classification, or estimated from
    /// Expand feedback when running fused.
    pub stats: IterStats,
    /// Last Filter time, ms (t_f).
    pub t_f: f64,
    /// Last Expand time, ms (t_e).
    pub t_e: f64,
    /// Mean of previous Filter times, ms (T_f).
    pub t_f_avg: f64,
    /// Mean of previous Expand times, ms (T_e).
    pub t_e_avg: f64,
    /// Workload edges of the previous iteration (stepping trend input).
    pub prev_workload_edges: u64,
    /// Workload edges two iterations ago.
    pub prev_prev_workload_edges: u64,
    /// Super-step index (0-based).
    pub iteration: u32,
}

impl DecisionContext {
    /// A fresh context for iteration 0 (no history yet).
    pub fn initial(graph: GraphStats) -> Self {
        DecisionContext {
            graph,
            stats: IterStats::default(),
            t_f: 0.0,
            t_e: 0.0,
            t_f_avg: 0.0,
            t_e_avg: 0.0,
            prev_workload_edges: 0,
            prev_prev_workload_edges: 0,
            iteration: 0,
        }
    }

    /// Assemble the 21-entry feature vector in [`gswitch_ml::FEATURE_NAMES`]
    /// order. `cd`/`r_cd` describe the workload of `direction` — the paper
    /// fills them after P1 chooses which side (active or inactive
    /// elements) is the workload (§4.3).
    ///
    /// Unbounded count features (N, M, degrees, element counts) are
    /// carried as `ln(1 + x)`: axis-aligned trees cannot extrapolate raw
    /// counts beyond the training corpus, while log-scaled counts keep
    /// their split semantics across graph sizes ("more than ~10⁵ active
    /// edges" instead of an absolute cliff). Ratios, Gini, entropy, and
    /// times stay raw. Same 21 features as Table 1, one monotone
    /// transform.
    pub fn features(&self, direction: Direction) -> [f64; FEATURE_COUNT] {
        let g = &self.graph;
        let s = &self.stats;
        let n = s.n().max(1) as f64;
        let m = (s.e_active + s.e_inactive).max(1) as f64;
        let w = s.workload(direction);
        let ln = |x: f64| x.ln_1p();
        [
            ln(g.num_vertices as f64),
            ln(g.num_edges as f64),
            ln(g.avg_degree),
            ln(g.degree_stddev),
            ln(g.degree_rel_range),
            g.gini,
            g.entropy,
            ln(s.v_active as f64),
            ln(s.v_inactive as f64),
            ln(s.e_active as f64),
            ln(s.e_inactive as f64),
            s.v_active as f64 / n,
            s.v_inactive as f64 / n,
            s.e_active as f64 / m,
            s.e_inactive as f64 / m,
            ln(w.avg_degree()),
            w.rel_range(),
            self.t_f,
            self.t_e,
            self.t_f_avg,
            self.t_e_avg,
        ]
    }

    /// The paper's dynamic-stepping rule (§3, P4): compare the estimated
    /// edge workload against the previous iteration; beyond ±35%, move the
    /// priority threshold.
    pub fn stepping_by_rule(&self) -> SteppingDelta {
        let prev = self.prev_prev_workload_edges as f64;
        let cur = self.prev_workload_edges as f64;
        if prev == 0.0 {
            return SteppingDelta::Remain;
        }
        let ratio = cur / prev;
        if ratio > 1.35 {
            // Workload exploding: tighten the window for work efficiency.
            SteppingDelta::Decrease
        } else if ratio < 0.65 {
            // Workload collapsing: widen the window for parallelism.
            SteppingDelta::Increase
        } else {
            SteppingDelta::Remain
        }
    }

    /// Fraction of vertices active (V_ap), a heavily used decision input.
    pub fn active_vertex_ratio(&self) -> f64 {
        let n = self.stats.n();
        if n == 0 {
            0.0
        } else {
            self.stats.v_active as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_kernels::WorkloadStats;

    fn ctx() -> DecisionContext {
        let graph = GraphStats {
            num_vertices: 100,
            num_edges: 400,
            avg_degree: 4.0,
            degree_stddev: 1.0,
            degree_rel_range: 2.0,
            max_degree: 9,
            min_degree: 1,
            gini: 0.25,
            entropy: 0.9,
        };
        let stats = IterStats {
            v_active: 10,
            v_inactive: 80,
            v_fixed: 10,
            e_active: 50,
            e_inactive: 300,
            push: WorkloadStats { vertices: 10, edges: 50, max_degree: 9, min_degree: 1 },
            pull: WorkloadStats { vertices: 80, edges: 320, max_degree: 9, min_degree: 1 },
        };
        DecisionContext {
            graph,
            stats,
            t_f: 0.5,
            t_e: 2.0,
            t_f_avg: 0.4,
            t_e_avg: 1.5,
            prev_workload_edges: 100,
            prev_prev_workload_edges: 100,
            iteration: 3,
        }
    }

    #[test]
    fn feature_vector_layout() {
        let c = ctx();
        let f = c.features(Direction::Push);
        assert_eq!(f.len(), 21);
        // Count features are carried as ln(1 + x).
        assert_eq!(f[0], 101f64.ln()); // N
        assert_eq!(f[1], 401f64.ln()); // M
        assert_eq!(f[7], 11f64.ln()); // v_a
        assert_eq!(f[10], 301f64.ln()); // e_ia
                                        // Ratios and times stay raw.
        assert!((f[11] - 0.1).abs() < 1e-12); // v_ap
        assert!((f[15] - 6f64.ln()).abs() < 1e-12); // push cd = 50/10 -> ln(6)
        assert_eq!(f[17], 0.5); // t_f
        assert_eq!(f[20], 1.5); // t_e_avg

        let fp = c.features(Direction::Pull);
        assert!((fp[15] - 5f64.ln()).abs() < 1e-12); // pull cd = 320/80 -> ln(5)
                                                     // Direction changes only cd/r_cd.
        for i in (0..21).filter(|&i| i != 15 && i != 16) {
            assert_eq!(f[i], fp[i], "feature {i} should not depend on direction");
        }
    }

    #[test]
    fn stepping_rule_thresholds() {
        let mut c = ctx();
        c.prev_prev_workload_edges = 100;
        c.prev_workload_edges = 140;
        assert_eq!(c.stepping_by_rule(), SteppingDelta::Decrease);
        c.prev_workload_edges = 60;
        assert_eq!(c.stepping_by_rule(), SteppingDelta::Increase);
        c.prev_workload_edges = 110;
        assert_eq!(c.stepping_by_rule(), SteppingDelta::Remain);
        c.prev_prev_workload_edges = 0;
        assert_eq!(c.stepping_by_rule(), SteppingDelta::Remain);
    }

    #[test]
    fn initial_context_is_inert() {
        let c = DecisionContext::initial(ctx().graph);
        assert_eq!(c.iteration, 0);
        assert_eq!(c.active_vertex_ratio(), 0.0);
        assert_eq!(c.stepping_by_rule(), SteppingDelta::Remain);
        let f = c.features(Direction::Push);
        assert!(f.iter().all(|x| x.is_finite()));
    }
}
