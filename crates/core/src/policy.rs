//! The Selector: policies mapping features to kernel configurations.

use crate::features::DecisionContext;
use gswitch_kernels::pattern::{
    AsFormat, Direction, Fusion, KernelConfig, LoadBalance, SteppingDelta,
};
use gswitch_ml::{DecisionTree, Pattern, FEATURE_COUNT};

/// What the running application permits, derived from its `EdgeApp`
/// constants. The Selector must never choose an illegal candidate.
#[derive(Clone, Copy, Debug)]
pub struct AppCaps {
    /// Fused frontiers allowed (duplicate-tolerant `comp`).
    pub dup_tolerant: bool,
    /// P4 stepping applies (monotonic algorithm with a priority window).
    pub priority_driven: bool,
}

impl AppCaps {
    /// Derive from an `EdgeApp` implementation.
    pub fn of<A: gswitch_kernels::EdgeApp>() -> Self {
        AppCaps { dup_tolerant: A::DUP_TOLERANT, priority_driven: A::PRIORITY_DRIVEN }
    }

    /// Clamp a configuration to legality: pull never fuses, non-tolerant
    /// apps never fuse, non-priority apps never step.
    pub fn clamp(&self, mut cfg: KernelConfig) -> KernelConfig {
        if !KernelConfig::fusion_legal(self.dup_tolerant, cfg.direction) {
            cfg.fusion = Fusion::Standalone;
        }
        if !self.priority_driven {
            cfg.stepping = SteppingDelta::Remain;
        }
        cfg
    }
}

/// A Selector backend.
pub trait Policy: Send + Sync {
    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Choose the configuration for the upcoming Expand given the current
    /// iteration's context. Implementations should already respect
    /// `caps` (the engine clamps again defensively).
    fn decide(&self, ctx: &DecisionContext, caps: &AppCaps) -> KernelConfig;

    /// Choose the stepping move *before* classification (the threshold
    /// feeds the filter predicate). Defaults to the paper's ±35% rule.
    fn decide_stepping(&self, ctx: &DecisionContext, caps: &AppCaps) -> SteppingDelta {
        if caps.priority_driven {
            ctx.stepping_by_rule()
        } else {
            SteppingDelta::Remain
        }
    }
}

/// A pinned configuration — what every non-switching framework
/// effectively is (and what the Fig. 16 "GSWITCH baseline" runs).
#[derive(Clone, Copy, Debug)]
pub struct StaticPolicy {
    /// The configuration returned for every iteration.
    pub config: KernelConfig,
}

impl StaticPolicy {
    /// Pin `config`.
    pub fn new(config: KernelConfig) -> Self {
        StaticPolicy { config }
    }
}

impl Policy for StaticPolicy {
    fn name(&self) -> &str {
        "static"
    }
    fn decide(&self, _ctx: &DecisionContext, caps: &AppCaps) -> KernelConfig {
        caps.clamp(self.config)
    }
    fn decide_stepping(&self, _ctx: &DecisionContext, caps: &AppCaps) -> SteppingDelta {
        if caps.priority_driven {
            self.config.stepping
        } else {
            SteppingDelta::Remain
        }
    }
}

/// Hand-derived decision rules: the "tailored tree kept as low as
/// possible" the paper ships when no trained model is available. Each
/// rule is the paper's own summary of its Fig. 12 analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct AutoPolicy;

impl AutoPolicy {
    fn direction(ctx: &DecisionContext) -> Direction {
        let s = &ctx.stats;
        // "The pull mode is preferable in the middle iterations when the
        // number of the active edges is greater than that of inactive
        // edges" (§3 P1) — and only when there is a pull workload at all.
        if s.e_active > s.e_inactive && s.pull.vertices > 0 {
            Direction::Pull
        } else {
            Direction::Push
        }
    }

    fn format(ctx: &DecisionContext, direction: Direction) -> AsFormat {
        // Fig. 12(b): queue wins when few vertices are active; bitmap when
        // the workload is dense (no enqueue overhead, no idle-lane waste).
        let n = ctx.stats.n().max(1) as f64;
        let frac = ctx.stats.workload(direction).vertices as f64 / n;
        if frac > 0.10 {
            AsFormat::Bitmap
        } else if frac > 0.01 {
            AsFormat::SortedQueue
        } else {
            AsFormat::UnsortedQueue
        }
    }

    fn load_balance(ctx: &DecisionContext, direction: Direction) -> LoadBalance {
        // Fig. 12(c)/(d): STRICT when the workload is irregular *and*
        // large; TWC when regular (lowest overhead); WM/CM in between.
        let w = ctx.stats.workload(direction);
        let avg = w.avg_degree().max(1.0);
        let imbalance = w.max_degree as f64 / avg;
        let big = w.edges > 1 << 14;
        if big && (w.max_degree >= 2048 || imbalance > 64.0) {
            LoadBalance::Strict
        } else if imbalance > 16.0 {
            LoadBalance::Cm
        } else if imbalance > 4.0 {
            LoadBalance::Wm
        } else {
            LoadBalance::Twc
        }
    }

    fn fusion(ctx: &DecisionContext, direction: Direction, caps: &AppCaps) -> Fusion {
        // Fig. 12(f): fused kernels win on regular (low-Gini) graphs with
        // small stable frontiers — road networks — where launch overhead
        // dominates and duplicates are rare.
        if KernelConfig::fusion_legal(caps.dup_tolerant, direction)
            && ctx.graph.gini < 0.30
            && ctx.active_vertex_ratio() < 0.05
            && ctx.stats.e_active < 1 << 18
        {
            Fusion::Fused
        } else {
            Fusion::Standalone
        }
    }
}

impl Policy for AutoPolicy {
    fn name(&self) -> &str {
        "auto-rules"
    }

    fn decide(&self, ctx: &DecisionContext, caps: &AppCaps) -> KernelConfig {
        // Decision order P1 → P3 → P2 → P4 → P5 (§4.5).
        let direction = Self::direction(ctx);
        let lb = Self::load_balance(ctx, direction);
        let format = Self::format(ctx, direction);
        let stepping = self.decide_stepping(ctx, caps);
        let fusion = Self::fusion(ctx, direction, caps);
        caps.clamp(KernelConfig { direction, format, lb, stepping, fusion })
    }
}

/// Five trained CART classifiers, one per pattern (§4.4), with
/// [`AutoPolicy`] as the fallback for any missing tree.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct ModelPolicy {
    /// P1 classifier (classes: push, pull).
    pub direction: Option<DecisionTree>,
    /// P2 classifier (classes: bitmap, unsorted, sorted).
    pub format: Option<DecisionTree>,
    /// P3 classifier (classes: twc, wm, cm, strict).
    pub load_balance: Option<DecisionTree>,
    /// P4 classifier (classes: increase, decrease, remain).
    pub stepping: Option<DecisionTree>,
    /// P5 classifier (classes: standalone, fused).
    pub fusion: Option<DecisionTree>,
    /// Per-feature `[min, max]` seen at training time. Installed by
    /// [`ModelPolicy::load_or_fallback`] from the envelope; when
    /// present, features are clamped into these ranges before every
    /// prediction (trees extrapolate badly out-of-distribution) and
    /// each clamp bumps `gswitch_obs::hardening::ood_feature_clamped`.
    /// Absent in legacy model files (`Option` fields may be missing).
    pub feature_ranges: Option<Vec<(f64, f64)>>,
}

impl ModelPolicy {
    /// A policy with no trees: behaves exactly like [`AutoPolicy`].
    pub fn empty() -> Self {
        Self::default()
    }

    /// Install a tree for one pattern.
    pub fn with_tree(mut self, pattern: Pattern, tree: DecisionTree) -> Self {
        match pattern {
            Pattern::Direction => self.direction = Some(tree),
            Pattern::Format => self.format = Some(tree),
            Pattern::LoadBalance => self.load_balance = Some(tree),
            Pattern::Stepping => self.stepping = Some(tree),
            Pattern::Fusion => self.fusion = Some(tree),
        }
        self
    }

    /// Access the tree for one pattern.
    pub fn tree(&self, pattern: Pattern) -> Option<&DecisionTree> {
        match pattern {
            Pattern::Direction => self.direction.as_ref(),
            Pattern::Format => self.format.as_ref(),
            Pattern::LoadBalance => self.load_balance.as_ref(),
            Pattern::Stepping => self.stepping.as_ref(),
            Pattern::Fusion => self.fusion.as_ref(),
        }
    }

    /// Number of installed trees.
    pub fn n_trees(&self) -> usize {
        Pattern::DECISION_ORDER.iter().filter(|&&p| self.tree(p).is_some()).count()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Remove the tree for one pattern (that pattern falls back to the
    /// built-in [`AutoPolicy`] rule).
    pub fn clear_tree(&mut self, pattern: Pattern) {
        match pattern {
            Pattern::Direction => self.direction = None,
            Pattern::Format => self.format = None,
            Pattern::LoadBalance => self.load_balance = None,
            Pattern::Stepping => self.stepping = None,
            Pattern::Fusion => self.fusion = None,
        }
    }

    /// Load a model file defensively: a missing/unreadable/invalid file
    /// degrades to the empty model (pure [`AutoPolicy`] behaviour), and
    /// any individual tree failing structural validation is dropped to
    /// the heuristic for just its pattern. Accepts both the versioned
    /// [`ModelEnvelope`] format and the legacy bare-model JSON. Never
    /// fails; what happened is in the [`ModelLoadReport`] and the
    /// `gswitch_obs::hardening` counters.
    pub fn load_or_fallback(path: impl AsRef<std::path::Path>) -> (Self, ModelLoadReport) {
        let mut report = ModelLoadReport::default();
        let fail = |report: &mut ModelLoadReport, msg: String| {
            gswitch_obs::hardening::note_model_load_failed();
            report.error = Some(msg);
        };
        let s = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                fail(&mut report, format!("reading model file: {e}"));
                return (Self::empty(), report);
            }
        };
        // The envelope parse must come first: its JSON is a superset
        // that would also deserialize as an (empty) bare model.
        let (mut model, ranges) = match ModelEnvelope::from_json(&s) {
            Ok(env) => {
                report.enveloped = true;
                if let Err(e) = env.validate() {
                    fail(&mut report, format!("model envelope rejected: {e}"));
                    return (Self::empty(), report);
                }
                (env.model, Some(env.feature_ranges))
            }
            Err(_) => match Self::from_json(&s) {
                Ok(m) => (m, None),
                Err(e) => {
                    fail(&mut report, format!("model JSON rejected: {e}"));
                    return (Self::empty(), report);
                }
            },
        };
        for p in Pattern::DECISION_ORDER {
            let bad = model.tree(p).and_then(|t| validate_tree(p, t).err());
            if let Some(e) = bad {
                gswitch_obs::hardening::note_model_fallback();
                report.dropped.push((p, e));
                model.clear_tree(p);
            }
        }
        report.kept = model.n_trees();
        if ranges.is_some() {
            model.feature_ranges = ranges;
        }
        (model, report)
    }

    /// Clamp a feature vector into the training ranges, counting every
    /// out-of-distribution value.
    fn clamp_features(&self, f: &mut [f64; FEATURE_COUNT]) {
        let Some(ranges) = &self.feature_ranges else { return };
        let mut clamped = 0u64;
        for (x, &(lo, hi)) in f.iter_mut().zip(ranges.iter()) {
            if x.is_finite() && (*x < lo || *x > hi) {
                *x = x.clamp(lo, hi);
                clamped += 1;
            }
        }
        gswitch_obs::hardening::note_ood_features_clamped(clamped);
    }
}

/// Structural admission test for one pattern's tree.
fn validate_tree(pattern: Pattern, tree: &DecisionTree) -> Result<(), String> {
    tree.validate()?;
    if tree.n_features() != FEATURE_COUNT {
        return Err(format!(
            "tree expects {} features, the engine produces {FEATURE_COUNT}",
            tree.n_features()
        ));
    }
    if tree.n_classes() > pattern.n_classes() {
        return Err(format!(
            "tree predicts {} classes, pattern {pattern:?} has {}",
            tree.n_classes(),
            pattern.n_classes()
        ));
    }
    Ok(())
}

/// Current envelope schema version.
pub const MODEL_SCHEMA_VERSION: u32 = 1;

/// The versioned on-disk wrapper around [`ModelPolicy`]: schema
/// version, expected feature arity, per-pattern class counts, the
/// per-feature training ranges (for OOD clamping at inference), and an
/// FNV-1a checksum of the canonical model JSON so silent corruption is
/// caught before a tree is followed.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ModelEnvelope {
    /// Envelope format version ([`MODEL_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Feature arity every tree must match (21).
    pub feature_count: usize,
    /// Class counts in [`Pattern::DECISION_ORDER`] order.
    pub class_counts: Vec<usize>,
    /// Per-feature `(min, max)` observed at training time.
    pub feature_ranges: Vec<(f64, f64)>,
    /// FNV-1a-64 of the canonical `model` JSON, lowercase hex.
    pub checksum: String,
    /// The wrapped model.
    pub model: ModelPolicy,
}

impl ModelEnvelope {
    /// Wrap a trained model, stamping version, class counts and
    /// checksum. `feature_ranges` must hold one `(min, max)` per
    /// feature column of the training matrix.
    pub fn wrap(model: ModelPolicy, feature_ranges: Vec<(f64, f64)>) -> Self {
        let checksum = fnv1a_hex(model.to_json().as_bytes());
        ModelEnvelope {
            schema_version: MODEL_SCHEMA_VERSION,
            feature_count: FEATURE_COUNT,
            class_counts: Pattern::DECISION_ORDER.iter().map(|p| p.n_classes()).collect(),
            feature_ranges,
            checksum,
            model,
        }
    }

    /// Check everything the envelope promises; tree structure itself is
    /// validated per-pattern by [`ModelPolicy::load_or_fallback`].
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != MODEL_SCHEMA_VERSION {
            return Err(format!(
                "schema version {} (this build reads {MODEL_SCHEMA_VERSION})",
                self.schema_version
            ));
        }
        if self.feature_count != FEATURE_COUNT {
            return Err(format!(
                "feature count {} (this build computes {FEATURE_COUNT})",
                self.feature_count
            ));
        }
        let expected: Vec<usize> = Pattern::DECISION_ORDER.iter().map(|p| p.n_classes()).collect();
        if self.class_counts != expected {
            return Err(format!("class counts {:?} != expected {expected:?}", self.class_counts));
        }
        if self.feature_ranges.len() != self.feature_count {
            return Err(format!(
                "{} feature ranges for {} features",
                self.feature_ranges.len(),
                self.feature_count
            ));
        }
        for (i, &(lo, hi)) in self.feature_ranges.iter().enumerate() {
            if !lo.is_finite() || !hi.is_finite() || lo > hi {
                return Err(format!("feature range {i} is malformed: ({lo}, {hi})"));
            }
        }
        let actual = fnv1a_hex(self.model.to_json().as_bytes());
        if actual != self.checksum {
            return Err(format!(
                "checksum mismatch: recorded {}, computed {actual}",
                self.checksum
            ));
        }
        Ok(())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("envelope serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// FNV-1a 64-bit, lowercase hex (dependency-free checksum).
fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// What [`ModelPolicy::load_or_fallback`] did.
#[derive(Clone, Debug, Default)]
pub struct ModelLoadReport {
    /// Error that made the whole file unusable (the model is empty).
    pub error: Option<String>,
    /// Trees dropped to the built-in heuristic, with reasons.
    pub dropped: Vec<(Pattern, String)>,
    /// Trees retained.
    pub kept: usize,
    /// Whether the file used the versioned envelope format.
    pub enveloped: bool,
}

impl Policy for ModelPolicy {
    fn name(&self) -> &str {
        "cart-model"
    }

    fn decide(&self, ctx: &DecisionContext, caps: &AppCaps) -> KernelConfig {
        // P1 decides on push-side workload features (cd/r_cd are defined
        // only once a workload side is chosen; the paper breaks the cycle
        // the same way by ordering P1 first).
        let mut push_features = ctx.features(Direction::Push);
        self.clamp_features(&mut push_features);
        let direction = match &self.direction {
            Some(t) => match t.predict(&push_features) {
                1 if ctx.stats.pull.vertices > 0 => Direction::Pull,
                _ => Direction::Push,
            },
            None => AutoPolicy::direction(ctx),
        };
        let mut features = ctx.features(direction);
        self.clamp_features(&mut features);
        let lb = match &self.load_balance {
            Some(t) => match t.predict(&features) {
                0 => LoadBalance::Twc,
                1 => LoadBalance::Wm,
                2 => LoadBalance::Cm,
                _ => LoadBalance::Strict,
            },
            None => AutoPolicy::load_balance(ctx, direction),
        };
        let format = match &self.format {
            Some(t) => match t.predict(&features) {
                0 => AsFormat::Bitmap,
                2 => AsFormat::SortedQueue,
                _ => AsFormat::UnsortedQueue,
            },
            None => AutoPolicy::format(ctx, direction),
        };
        let stepping = self.decide_stepping(ctx, caps);
        let fusion = match &self.fusion {
            Some(t) if KernelConfig::fusion_legal(caps.dup_tolerant, direction) => {
                match t.predict(&features) {
                    1 => Fusion::Fused,
                    _ => Fusion::Standalone,
                }
            }
            Some(_) => Fusion::Standalone,
            None => AutoPolicy::fusion(ctx, direction, caps),
        };
        caps.clamp(KernelConfig { direction, format, lb, stepping, fusion })
    }

    fn decide_stepping(&self, ctx: &DecisionContext, caps: &AppCaps) -> SteppingDelta {
        if !caps.priority_driven {
            return SteppingDelta::Remain;
        }
        match &self.stepping {
            Some(t) => {
                let mut features = ctx.features(Direction::Push);
                self.clamp_features(&mut features);
                match t.predict(&features) {
                    0 => SteppingDelta::Increase,
                    1 => SteppingDelta::Decrease,
                    _ => SteppingDelta::Remain,
                }
            }
            None => ctx.stepping_by_rule(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_graph::GraphStats;
    use gswitch_kernels::{IterStats, WorkloadStats};
    use gswitch_ml::TrainParams;

    fn caps() -> AppCaps {
        AppCaps { dup_tolerant: true, priority_driven: false }
    }

    fn ctx(v_active: u64, e_active: u64, e_inactive: u64) -> DecisionContext {
        let n = 10_000u64;
        DecisionContext {
            graph: GraphStats {
                num_vertices: n as usize,
                num_edges: 80_000,
                avg_degree: 8.0,
                degree_stddev: 3.0,
                degree_rel_range: 4.0,
                max_degree: 50,
                min_degree: 1,
                gini: 0.2,
                entropy: 0.95,
            },
            stats: IterStats {
                v_active,
                v_inactive: n - v_active,
                v_fixed: 0,
                e_active,
                e_inactive,
                push: WorkloadStats {
                    vertices: v_active,
                    edges: e_active,
                    max_degree: 50,
                    min_degree: 1,
                },
                pull: WorkloadStats {
                    vertices: n - v_active,
                    edges: e_inactive,
                    max_degree: 50,
                    min_degree: 1,
                },
            },
            t_f: 0.1,
            t_e: 0.3,
            t_f_avg: 0.1,
            t_e_avg: 0.3,
            prev_workload_edges: e_active,
            prev_prev_workload_edges: e_active,
            iteration: 2,
        }
    }

    #[test]
    fn auto_direction_switches_on_edge_ratio() {
        let sparse = ctx(10, 100, 79_900);
        let dense = ctx(8_000, 70_000, 10_000);
        assert_eq!(AutoPolicy.decide(&sparse, &caps()).direction, Direction::Push);
        assert_eq!(AutoPolicy.decide(&dense, &caps()).direction, Direction::Pull);
    }

    #[test]
    fn auto_format_tracks_density() {
        let c = caps();
        assert_eq!(AutoPolicy.decide(&ctx(5_000, 40_000, 40_000), &c).format, AsFormat::Bitmap);
        assert_eq!(AutoPolicy.decide(&ctx(10, 80, 79_920), &c).format, AsFormat::UnsortedQueue);
    }

    #[test]
    fn clamp_blocks_illegal_candidates() {
        let caps = AppCaps { dup_tolerant: false, priority_driven: false };
        let cfg = KernelConfig {
            direction: Direction::Push,
            format: AsFormat::Bitmap,
            lb: LoadBalance::Twc,
            stepping: SteppingDelta::Increase,
            fusion: Fusion::Fused,
        };
        let c = caps.clamp(cfg);
        assert_eq!(c.fusion, Fusion::Standalone);
        assert_eq!(c.stepping, SteppingDelta::Remain);
    }

    #[test]
    fn static_policy_returns_pin() {
        let p = StaticPolicy::new(KernelConfig::gunrock_like());
        let c = p.decide(&ctx(5, 10, 100), &caps());
        assert_eq!(c, KernelConfig::gunrock_like());
        assert_eq!(p.name(), "static");
    }

    #[test]
    fn model_policy_uses_trained_tree() {
        // Train a direction tree: pull iff e_ap (feature 13) > 0.5.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let mut f = vec![0.0; 21];
                f[13] = i as f64 / 100.0;
                f
            })
            .collect();
        let labels: Vec<usize> = rows.iter().map(|r| usize::from(r[13] > 0.5)).collect();
        let tree = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
        let policy = ModelPolicy::empty().with_tree(Pattern::Direction, tree);
        assert_eq!(policy.n_trees(), 1);

        let dense = ctx(8_000, 70_000, 10_000); // e_ap = 0.875
        let sparse = ctx(10, 100, 79_900);
        assert_eq!(policy.decide(&dense, &caps()).direction, Direction::Pull);
        assert_eq!(policy.decide(&sparse, &caps()).direction, Direction::Push);
    }

    #[test]
    fn model_policy_json_roundtrip() {
        let rows = vec![vec![0.0; 21], vec![1.0; 21]];
        let tree = DecisionTree::train(&rows, &[0, 1], TrainParams::default()).unwrap();
        let p = ModelPolicy::empty().with_tree(Pattern::Fusion, tree);
        let p2 = ModelPolicy::from_json(&p.to_json()).unwrap();
        assert_eq!(p2.n_trees(), 1);
        assert!(p2.fusion.is_some());
    }

    #[test]
    fn model_policy_empty_falls_back_to_rules() {
        let p = ModelPolicy::empty();
        let dense = ctx(8_000, 70_000, 10_000);
        assert_eq!(
            p.decide(&dense, &caps()).direction,
            AutoPolicy.decide(&dense, &caps()).direction
        );
    }

    fn trained_policy() -> ModelPolicy {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let mut f = vec![0.0; FEATURE_COUNT];
                f[13] = i as f64 / 100.0;
                f
            })
            .collect();
        let labels: Vec<usize> = rows.iter().map(|r| usize::from(r[13] > 0.5)).collect();
        let tree = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
        ModelPolicy::empty().with_tree(Pattern::Direction, tree)
    }

    fn unit_ranges() -> Vec<(f64, f64)> {
        vec![(0.0, 1.0); FEATURE_COUNT]
    }

    #[test]
    fn envelope_roundtrip_validates() {
        let env = ModelEnvelope::wrap(trained_policy(), unit_ranges());
        let back = ModelEnvelope::from_json(&env.to_json()).unwrap();
        assert!(back.validate().is_ok());
        assert_eq!(back.schema_version, MODEL_SCHEMA_VERSION);
        assert_eq!(back.class_counts, vec![2, 4, 3, 3, 2]);
    }

    #[test]
    fn envelope_rejects_tampering() {
        let good = ModelEnvelope::wrap(trained_policy(), unit_ranges());

        let mut bad = good.clone();
        bad.schema_version = 99;
        assert!(bad.validate().unwrap_err().contains("schema version"));

        let mut bad = good.clone();
        bad.feature_count = 7;
        assert!(bad.validate().unwrap_err().contains("feature count"));

        let mut bad = good.clone();
        bad.class_counts[0] = 9;
        assert!(bad.validate().unwrap_err().contains("class counts"));

        let mut bad = good.clone();
        bad.feature_ranges[3] = (f64::NAN, 1.0);
        assert!(bad.validate().unwrap_err().contains("malformed"));

        let mut bad = good.clone();
        bad.feature_ranges.pop();
        assert!(bad.validate().unwrap_err().contains("feature ranges"));

        // Swap in a different (valid) model without restamping: the
        // checksum catches the content change.
        let mut bad = good.clone();
        bad.model = ModelPolicy::empty();
        assert!(bad.validate().unwrap_err().contains("checksum"));
    }

    #[test]
    fn load_or_fallback_reads_envelope_and_legacy() {
        let dir = std::env::temp_dir();

        let env_path = dir.join("gswitch-policy-test-envelope.json");
        ModelEnvelope::wrap(trained_policy(), unit_ranges()).save(&env_path).unwrap();
        let (m, rep) = ModelPolicy::load_or_fallback(&env_path);
        assert!(rep.error.is_none(), "{:?}", rep.error);
        assert!(rep.enveloped);
        assert_eq!(rep.kept, 1);
        assert!(rep.dropped.is_empty());
        assert_eq!(m.feature_ranges.as_ref().unwrap().len(), FEATURE_COUNT);

        let legacy_path = dir.join("gswitch-policy-test-legacy.json");
        trained_policy().save(&legacy_path).unwrap();
        let (m, rep) = ModelPolicy::load_or_fallback(&legacy_path);
        assert!(rep.error.is_none());
        assert!(!rep.enveloped);
        assert_eq!(rep.kept, 1);
        assert!(m.feature_ranges.is_none());

        let _ = std::fs::remove_file(env_path);
        let _ = std::fs::remove_file(legacy_path);
    }

    #[test]
    fn load_or_fallback_degrades_instead_of_failing() {
        let dir = std::env::temp_dir();
        let before = gswitch_obs::hardening::snapshot();

        // Missing file → empty model, counter bumped.
        let (m, rep) =
            ModelPolicy::load_or_fallback(dir.join("gswitch-policy-test-does-not-exist.json"));
        assert_eq!(m.n_trees(), 0);
        assert!(rep.error.as_ref().unwrap().contains("reading model file"));

        // Truncated/garbage JSON → empty model.
        let garbage = dir.join("gswitch-policy-test-garbage.json");
        std::fs::write(&garbage, "{\"direction\": {\"nodes\": [").unwrap();
        let (m, rep) = ModelPolicy::load_or_fallback(&garbage);
        assert_eq!(m.n_trees(), 0);
        assert!(rep.error.as_ref().unwrap().contains("model JSON rejected"));

        // Corrupt envelope (bit-rotted checksum) → empty model.
        let rotten = dir.join("gswitch-policy-test-rotten.json");
        let mut env = ModelEnvelope::wrap(trained_policy(), unit_ranges());
        env.checksum = "0000000000000000".into();
        env.save(&rotten).unwrap();
        let (m, rep) = ModelPolicy::load_or_fallback(&rotten);
        assert_eq!(m.n_trees(), 0);
        assert!(rep.error.as_ref().unwrap().contains("checksum"));

        let after = gswitch_obs::hardening::snapshot();
        assert!(after.model_load_failed >= before.model_load_failed + 3);

        let _ = std::fs::remove_file(garbage);
        let _ = std::fs::remove_file(rotten);
    }

    #[test]
    fn load_or_fallback_drops_wrong_arity_tree() {
        // A structurally valid tree trained on 3 features can't consume
        // the engine's 21-feature vectors: that pattern falls back.
        let rows = vec![vec![0.0; 3], vec![1.0; 3]];
        let narrow = DecisionTree::train(&rows, &[0, 1], TrainParams::default()).unwrap();
        let policy = trained_policy().with_tree(Pattern::Fusion, narrow);
        let path = std::env::temp_dir().join("gswitch-policy-test-arity.json");
        policy.save(&path).unwrap();

        let before = gswitch_obs::hardening::snapshot();
        let (m, rep) = ModelPolicy::load_or_fallback(&path);
        assert!(rep.error.is_none());
        assert_eq!(rep.kept, 1);
        assert_eq!(rep.dropped.len(), 1);
        assert_eq!(rep.dropped[0].0, Pattern::Fusion);
        assert!(m.fusion.is_none() && m.direction.is_some());
        let after = gswitch_obs::hardening::snapshot();
        assert!(after.model_fallback > before.model_fallback);

        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ood_features_clamp_to_training_ranges() {
        // Train on f13 ∈ [0, 1]; then hand the policy a context whose
        // e_ap is in-range but set ranges to force clamping of other
        // features (they sit far outside [0, 0.001]).
        let mut policy = trained_policy();
        let before = gswitch_obs::hardening::snapshot();
        let dense = ctx(8_000, 70_000, 10_000);
        let unclamped = policy.decide(&dense, &caps()).direction;
        policy.feature_ranges = Some(unit_ranges());
        let clamped = policy.decide(&dense, &caps()).direction;
        // e_ap = 0.875 stays in [0, 1], so the decision is unchanged...
        assert_eq!(unclamped, clamped);
        // ...but other features (degrees, counts) were clamped and counted.
        let after = gswitch_obs::hardening::snapshot();
        assert!(after.ood_feature_clamped > before.ood_feature_clamped);
    }
}
