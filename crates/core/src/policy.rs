//! The Selector: policies mapping features to kernel configurations.

use crate::features::DecisionContext;
use gswitch_kernels::pattern::{
    AsFormat, Direction, Fusion, KernelConfig, LoadBalance, SteppingDelta,
};
use gswitch_ml::{DecisionTree, Pattern};

/// What the running application permits, derived from its `EdgeApp`
/// constants. The Selector must never choose an illegal candidate.
#[derive(Clone, Copy, Debug)]
pub struct AppCaps {
    /// Fused frontiers allowed (duplicate-tolerant `comp`).
    pub dup_tolerant: bool,
    /// P4 stepping applies (monotonic algorithm with a priority window).
    pub priority_driven: bool,
}

impl AppCaps {
    /// Derive from an `EdgeApp` implementation.
    pub fn of<A: gswitch_kernels::EdgeApp>() -> Self {
        AppCaps { dup_tolerant: A::DUP_TOLERANT, priority_driven: A::PRIORITY_DRIVEN }
    }

    /// Clamp a configuration to legality: pull never fuses, non-tolerant
    /// apps never fuse, non-priority apps never step.
    pub fn clamp(&self, mut cfg: KernelConfig) -> KernelConfig {
        if !KernelConfig::fusion_legal(self.dup_tolerant, cfg.direction) {
            cfg.fusion = Fusion::Standalone;
        }
        if !self.priority_driven {
            cfg.stepping = SteppingDelta::Remain;
        }
        cfg
    }
}

/// A Selector backend.
pub trait Policy: Send + Sync {
    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Choose the configuration for the upcoming Expand given the current
    /// iteration's context. Implementations should already respect
    /// `caps` (the engine clamps again defensively).
    fn decide(&self, ctx: &DecisionContext, caps: &AppCaps) -> KernelConfig;

    /// Choose the stepping move *before* classification (the threshold
    /// feeds the filter predicate). Defaults to the paper's ±35% rule.
    fn decide_stepping(&self, ctx: &DecisionContext, caps: &AppCaps) -> SteppingDelta {
        if caps.priority_driven {
            ctx.stepping_by_rule()
        } else {
            SteppingDelta::Remain
        }
    }
}

/// A pinned configuration — what every non-switching framework
/// effectively is (and what the Fig. 16 "GSWITCH baseline" runs).
#[derive(Clone, Copy, Debug)]
pub struct StaticPolicy {
    /// The configuration returned for every iteration.
    pub config: KernelConfig,
}

impl StaticPolicy {
    /// Pin `config`.
    pub fn new(config: KernelConfig) -> Self {
        StaticPolicy { config }
    }
}

impl Policy for StaticPolicy {
    fn name(&self) -> &str {
        "static"
    }
    fn decide(&self, _ctx: &DecisionContext, caps: &AppCaps) -> KernelConfig {
        caps.clamp(self.config)
    }
    fn decide_stepping(&self, _ctx: &DecisionContext, caps: &AppCaps) -> SteppingDelta {
        if caps.priority_driven {
            self.config.stepping
        } else {
            SteppingDelta::Remain
        }
    }
}

/// Hand-derived decision rules: the "tailored tree kept as low as
/// possible" the paper ships when no trained model is available. Each
/// rule is the paper's own summary of its Fig. 12 analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct AutoPolicy;

impl AutoPolicy {
    fn direction(ctx: &DecisionContext) -> Direction {
        let s = &ctx.stats;
        // "The pull mode is preferable in the middle iterations when the
        // number of the active edges is greater than that of inactive
        // edges" (§3 P1) — and only when there is a pull workload at all.
        if s.e_active > s.e_inactive && s.pull.vertices > 0 {
            Direction::Pull
        } else {
            Direction::Push
        }
    }

    fn format(ctx: &DecisionContext, direction: Direction) -> AsFormat {
        // Fig. 12(b): queue wins when few vertices are active; bitmap when
        // the workload is dense (no enqueue overhead, no idle-lane waste).
        let n = ctx.stats.n().max(1) as f64;
        let frac = ctx.stats.workload(direction).vertices as f64 / n;
        if frac > 0.10 {
            AsFormat::Bitmap
        } else if frac > 0.01 {
            AsFormat::SortedQueue
        } else {
            AsFormat::UnsortedQueue
        }
    }

    fn load_balance(ctx: &DecisionContext, direction: Direction) -> LoadBalance {
        // Fig. 12(c)/(d): STRICT when the workload is irregular *and*
        // large; TWC when regular (lowest overhead); WM/CM in between.
        let w = ctx.stats.workload(direction);
        let avg = w.avg_degree().max(1.0);
        let imbalance = w.max_degree as f64 / avg;
        let big = w.edges > 1 << 14;
        if big && (w.max_degree >= 2048 || imbalance > 64.0) {
            LoadBalance::Strict
        } else if imbalance > 16.0 {
            LoadBalance::Cm
        } else if imbalance > 4.0 {
            LoadBalance::Wm
        } else {
            LoadBalance::Twc
        }
    }

    fn fusion(ctx: &DecisionContext, direction: Direction, caps: &AppCaps) -> Fusion {
        // Fig. 12(f): fused kernels win on regular (low-Gini) graphs with
        // small stable frontiers — road networks — where launch overhead
        // dominates and duplicates are rare.
        if KernelConfig::fusion_legal(caps.dup_tolerant, direction)
            && ctx.graph.gini < 0.30
            && ctx.active_vertex_ratio() < 0.05
            && ctx.stats.e_active < 1 << 18
        {
            Fusion::Fused
        } else {
            Fusion::Standalone
        }
    }
}

impl Policy for AutoPolicy {
    fn name(&self) -> &str {
        "auto-rules"
    }

    fn decide(&self, ctx: &DecisionContext, caps: &AppCaps) -> KernelConfig {
        // Decision order P1 → P3 → P2 → P4 → P5 (§4.5).
        let direction = Self::direction(ctx);
        let lb = Self::load_balance(ctx, direction);
        let format = Self::format(ctx, direction);
        let stepping = self.decide_stepping(ctx, caps);
        let fusion = Self::fusion(ctx, direction, caps);
        caps.clamp(KernelConfig { direction, format, lb, stepping, fusion })
    }
}

/// Five trained CART classifiers, one per pattern (§4.4), with
/// [`AutoPolicy`] as the fallback for any missing tree.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct ModelPolicy {
    /// P1 classifier (classes: push, pull).
    pub direction: Option<DecisionTree>,
    /// P2 classifier (classes: bitmap, unsorted, sorted).
    pub format: Option<DecisionTree>,
    /// P3 classifier (classes: twc, wm, cm, strict).
    pub load_balance: Option<DecisionTree>,
    /// P4 classifier (classes: increase, decrease, remain).
    pub stepping: Option<DecisionTree>,
    /// P5 classifier (classes: standalone, fused).
    pub fusion: Option<DecisionTree>,
}

impl ModelPolicy {
    /// A policy with no trees: behaves exactly like [`AutoPolicy`].
    pub fn empty() -> Self {
        Self::default()
    }

    /// Install a tree for one pattern.
    pub fn with_tree(mut self, pattern: Pattern, tree: DecisionTree) -> Self {
        match pattern {
            Pattern::Direction => self.direction = Some(tree),
            Pattern::Format => self.format = Some(tree),
            Pattern::LoadBalance => self.load_balance = Some(tree),
            Pattern::Stepping => self.stepping = Some(tree),
            Pattern::Fusion => self.fusion = Some(tree),
        }
        self
    }

    /// Access the tree for one pattern.
    pub fn tree(&self, pattern: Pattern) -> Option<&DecisionTree> {
        match pattern {
            Pattern::Direction => self.direction.as_ref(),
            Pattern::Format => self.format.as_ref(),
            Pattern::LoadBalance => self.load_balance.as_ref(),
            Pattern::Stepping => self.stepping.as_ref(),
            Pattern::Fusion => self.fusion.as_ref(),
        }
    }

    /// Number of installed trees.
    pub fn n_trees(&self) -> usize {
        Pattern::DECISION_ORDER.iter().filter(|&&p| self.tree(p).is_some()).count()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl Policy for ModelPolicy {
    fn name(&self) -> &str {
        "cart-model"
    }

    fn decide(&self, ctx: &DecisionContext, caps: &AppCaps) -> KernelConfig {
        // P1 decides on push-side workload features (cd/r_cd are defined
        // only once a workload side is chosen; the paper breaks the cycle
        // the same way by ordering P1 first).
        let push_features = ctx.features(Direction::Push);
        let direction = match &self.direction {
            Some(t) => match t.predict(&push_features) {
                1 if ctx.stats.pull.vertices > 0 => Direction::Pull,
                _ => Direction::Push,
            },
            None => AutoPolicy::direction(ctx),
        };
        let features = ctx.features(direction);
        let lb = match &self.load_balance {
            Some(t) => match t.predict(&features) {
                0 => LoadBalance::Twc,
                1 => LoadBalance::Wm,
                2 => LoadBalance::Cm,
                _ => LoadBalance::Strict,
            },
            None => AutoPolicy::load_balance(ctx, direction),
        };
        let format = match &self.format {
            Some(t) => match t.predict(&features) {
                0 => AsFormat::Bitmap,
                2 => AsFormat::SortedQueue,
                _ => AsFormat::UnsortedQueue,
            },
            None => AutoPolicy::format(ctx, direction),
        };
        let stepping = self.decide_stepping(ctx, caps);
        let fusion = match &self.fusion {
            Some(t) if KernelConfig::fusion_legal(caps.dup_tolerant, direction) => {
                match t.predict(&features) {
                    1 => Fusion::Fused,
                    _ => Fusion::Standalone,
                }
            }
            Some(_) => Fusion::Standalone,
            None => AutoPolicy::fusion(ctx, direction, caps),
        };
        caps.clamp(KernelConfig { direction, format, lb, stepping, fusion })
    }

    fn decide_stepping(&self, ctx: &DecisionContext, caps: &AppCaps) -> SteppingDelta {
        if !caps.priority_driven {
            return SteppingDelta::Remain;
        }
        match &self.stepping {
            Some(t) => match t.predict(&ctx.features(Direction::Push)) {
                0 => SteppingDelta::Increase,
                1 => SteppingDelta::Decrease,
                _ => SteppingDelta::Remain,
            },
            None => ctx.stepping_by_rule(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_graph::GraphStats;
    use gswitch_kernels::{IterStats, WorkloadStats};
    use gswitch_ml::TrainParams;

    fn caps() -> AppCaps {
        AppCaps { dup_tolerant: true, priority_driven: false }
    }

    fn ctx(v_active: u64, e_active: u64, e_inactive: u64) -> DecisionContext {
        let n = 10_000u64;
        DecisionContext {
            graph: GraphStats {
                num_vertices: n as usize,
                num_edges: 80_000,
                avg_degree: 8.0,
                degree_stddev: 3.0,
                degree_rel_range: 4.0,
                max_degree: 50,
                min_degree: 1,
                gini: 0.2,
                entropy: 0.95,
            },
            stats: IterStats {
                v_active,
                v_inactive: n - v_active,
                v_fixed: 0,
                e_active,
                e_inactive,
                push: WorkloadStats {
                    vertices: v_active,
                    edges: e_active,
                    max_degree: 50,
                    min_degree: 1,
                },
                pull: WorkloadStats {
                    vertices: n - v_active,
                    edges: e_inactive,
                    max_degree: 50,
                    min_degree: 1,
                },
            },
            t_f: 0.1,
            t_e: 0.3,
            t_f_avg: 0.1,
            t_e_avg: 0.3,
            prev_workload_edges: e_active,
            prev_prev_workload_edges: e_active,
            iteration: 2,
        }
    }

    #[test]
    fn auto_direction_switches_on_edge_ratio() {
        let sparse = ctx(10, 100, 79_900);
        let dense = ctx(8_000, 70_000, 10_000);
        assert_eq!(AutoPolicy.decide(&sparse, &caps()).direction, Direction::Push);
        assert_eq!(AutoPolicy.decide(&dense, &caps()).direction, Direction::Pull);
    }

    #[test]
    fn auto_format_tracks_density() {
        let c = caps();
        assert_eq!(AutoPolicy.decide(&ctx(5_000, 40_000, 40_000), &c).format, AsFormat::Bitmap);
        assert_eq!(AutoPolicy.decide(&ctx(10, 80, 79_920), &c).format, AsFormat::UnsortedQueue);
    }

    #[test]
    fn clamp_blocks_illegal_candidates() {
        let caps = AppCaps { dup_tolerant: false, priority_driven: false };
        let cfg = KernelConfig {
            direction: Direction::Push,
            format: AsFormat::Bitmap,
            lb: LoadBalance::Twc,
            stepping: SteppingDelta::Increase,
            fusion: Fusion::Fused,
        };
        let c = caps.clamp(cfg);
        assert_eq!(c.fusion, Fusion::Standalone);
        assert_eq!(c.stepping, SteppingDelta::Remain);
    }

    #[test]
    fn static_policy_returns_pin() {
        let p = StaticPolicy::new(KernelConfig::gunrock_like());
        let c = p.decide(&ctx(5, 10, 100), &caps());
        assert_eq!(c, KernelConfig::gunrock_like());
        assert_eq!(p.name(), "static");
    }

    #[test]
    fn model_policy_uses_trained_tree() {
        // Train a direction tree: pull iff e_ap (feature 13) > 0.5.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let mut f = vec![0.0; 21];
                f[13] = i as f64 / 100.0;
                f
            })
            .collect();
        let labels: Vec<usize> = rows.iter().map(|r| usize::from(r[13] > 0.5)).collect();
        let tree = DecisionTree::train(&rows, &labels, TrainParams::default());
        let policy = ModelPolicy::empty().with_tree(Pattern::Direction, tree);
        assert_eq!(policy.n_trees(), 1);

        let dense = ctx(8_000, 70_000, 10_000); // e_ap = 0.875
        let sparse = ctx(10, 100, 79_900);
        assert_eq!(policy.decide(&dense, &caps()).direction, Direction::Pull);
        assert_eq!(policy.decide(&sparse, &caps()).direction, Direction::Push);
    }

    #[test]
    fn model_policy_json_roundtrip() {
        let rows = vec![vec![0.0; 21], vec![1.0; 21]];
        let tree = DecisionTree::train(&rows, &[0, 1], TrainParams::default());
        let p = ModelPolicy::empty().with_tree(Pattern::Fusion, tree);
        let p2 = ModelPolicy::from_json(&p.to_json()).unwrap();
        assert_eq!(p2.n_trees(), 1);
        assert!(p2.fusion.is_some());
    }

    #[test]
    fn model_policy_empty_falls_back_to_rules() {
        let p = ModelPolicy::empty();
        let dense = ctx(8_000, 70_000, 10_000);
        assert_eq!(
            p.decide(&dense, &caps()).direction,
            AutoPolicy.decide(&dense, &caps()).direction
        );
    }
}
