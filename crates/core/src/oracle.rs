//! Brute-force oracle labelling (§4.4).
//!
//! "The true optimal configurations were attained via brute-force
//! experimentation." Running all 144 expand variants per iteration on
//! real hardware is what the authors did offline; here the cost model
//! makes it cheap: the *semantics* of Expand are identical across P2/P3
//! candidates, so one read-only workload analysis per direction prices
//! every (direction × format × load-balance) combination analytically,
//! and fusion is priced from measured duplicate/tie feedback. The oracle
//! then *executes* the argmin variant so the trajectory it labels is the
//! optimal one, and emits one [`Record`] per iteration.

use crate::features::DecisionContext;
use crate::policy::AppCaps;
use gswitch_graph::Graph;
use gswitch_kernels::expand::{analytic_pull_profile, analytic_push_profile};
use gswitch_kernels::filter::materialize_cost;
use gswitch_kernels::lb::{edge_costs, price_all};
use gswitch_kernels::pattern::{
    AsFormat, Direction, Fusion, KernelConfig, LoadBalance, SteppingDelta,
};
use gswitch_kernels::{classify, expand, materialize, EdgeApp, Status};
use gswitch_ml::{FeatureDb, Labels, Record};
use gswitch_simt::{DeviceSpec, SimMs};
use rayon::prelude::*;

/// Oracle configuration.
#[derive(Clone, Debug)]
pub struct OracleOptions {
    /// The simulated GPU the labels are optimal for.
    pub device: DeviceSpec,
    /// Safety bound on super-steps.
    pub max_iterations: u32,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions { device: DeviceSpec::default(), max_iterations: 50_000 }
    }
}

/// Result of an oracle-driven run.
#[derive(Debug, Default)]
pub struct OracleOutcome {
    /// One record per iteration (features + optimal labels).
    pub records: Vec<Record>,
    /// Total simulated time of the optimal trajectory (ms).
    pub optimal_ms: SimMs,
    /// Iterations executed.
    pub iterations: u32,
}

/// Per-direction read-only workload analysis (public for the harness's
/// per-iteration strategy matrices, Fig. 14).
#[derive(Debug)]
pub struct DirAnalysis {
    /// Compact per-entry touched counts (queue view).
    pub compact: Vec<u32>,
    /// Full per-vertex touched counts (bitmap view; zero = idle slot).
    pub full: Vec<u32>,
    /// Emit-side hits (pull only; push: edges).
    pub hits: u64,
    /// Workload entry count.
    pub vertices: u64,
}

/// Analyze the push workload without touching app state.
pub fn analyze_push(g: &Graph, status: &[u8]) -> DirAnalysis {
    let out = g.out_csr();
    let full: Vec<u32> = (0..g.num_vertices())
        .into_par_iter()
        .map(|v| if status[v] == Status::Active as u8 { out.degree(v as u32) } else { 0 })
        .collect();
    let compact: Vec<u32> = (0..g.num_vertices())
        .into_par_iter()
        .filter(|&v| status[v] == Status::Active as u8)
        .map(|v| out.degree(v as u32))
        .collect();
    let hits: u64 = compact.iter().map(|&d| d as u64).sum();
    let vertices = compact.len() as u64;
    DirAnalysis { compact, full, hits, vertices }
}

/// Analyze the pull workload without touching app state: for early-exit
/// apps each receiver scans until its first active in-neighbor; otherwise
/// it scans everything and every active in-neighbor costs an emit.
pub fn analyze_pull<A: EdgeApp>(g: &Graph, status: &[u8]) -> DirAnalysis {
    let incoming = g.in_csr();
    let is_receiver = |v: usize| {
        A::pull_receives(match status[v] {
            0 => Status::Active,
            1 => Status::Inactive,
            _ => Status::Fixed,
        })
    };
    let per_vertex: Vec<(u32, u32)> = (0..g.num_vertices())
        .into_par_iter()
        .map(|v| {
            if !is_receiver(v) {
                return (0, 0);
            }
            let sources = incoming.neighbors(v as u32);
            if A::PULL_EARLY_EXIT {
                for (i, &u) in sources.iter().enumerate() {
                    if status[u as usize] == Status::Active as u8 {
                        return ((i + 1) as u32, 1);
                    }
                }
                (sources.len() as u32, 0)
            } else {
                let hits =
                    sources.iter().filter(|&&u| status[u as usize] == Status::Active as u8).count()
                        as u32;
                (sources.len() as u32, hits)
            }
        })
        .collect();
    let full: Vec<u32> = per_vertex.iter().map(|&(t, _)| t).collect();
    let mut compact = Vec::new();
    let mut hits = 0u64;
    let mut vertices = 0u64;
    for (v, &(t, h)) in per_vertex.iter().enumerate() {
        if is_receiver(v) {
            compact.push(t);
            hits += h as u64;
            vertices += 1;
        }
    }
    DirAnalysis { compact, full, hits, vertices }
}

/// Price every (format × lb) combination of one direction; returns
/// `[(format, lb, expand_ms + materialize_ms); 12]`.
pub fn price_direction<A: EdgeApp>(
    g: &Graph,
    spec: &DeviceSpec,
    direction: Direction,
    analysis: &DirAnalysis,
) -> Vec<(AsFormat, LoadBalance, SimMs)> {
    let n = g.num_vertices();
    let base = match direction {
        Direction::Push => analytic_push_profile(&analysis.compact, A::NEEDS_WEIGHTS),
        Direction::Pull => {
            analytic_pull_profile(&analysis.compact, A::NEEDS_WEIGHTS, analysis.hits)
        }
    };
    let mut out = Vec::with_capacity(12);
    for format in [AsFormat::Bitmap, AsFormat::UnsortedQueue, AsFormat::SortedQueue] {
        let sorted = format == AsFormat::SortedQueue;
        let bitmap = format == AsFormat::Bitmap;
        let costs = edge_costs(spec, direction, sorted);
        let touched = if bitmap { &analysis.full } else { &analysis.compact };
        let gen_ms = spec.kernel_time_ms(&materialize_cost(format, n, analysis.vertices, spec));
        for (lb, price) in price_all(spec, &costs, touched, bitmap) {
            let mut p = base;
            if sorted {
                p.bytes_read = (p.bytes_read as f64
                    * (1.0 - gswitch_kernels::lb::SORTED_BYTES_DISCOUNT))
                    as u64;
            }
            p.tasks = price.tasks;
            p.syncs = price.syncs;
            p.scan_elems += price.scan_elems;
            p.launches += price.extra_launches;
            out.push((format, lb, gen_ms + spec.kernel_time_ms(&p)));
        }
    }
    out
}

/// Run `app` on `g` along the oracle-optimal trajectory, labelling every
/// iteration. `benchmark` tags the records ("bfs", "pr", ...).
pub fn oracle_run<A: EdgeApp>(
    g: &Graph,
    app: &A,
    benchmark: &str,
    opts: &OracleOptions,
) -> OracleOutcome {
    let caps = AppCaps::of::<A>();
    let spec = &opts.device;
    let mut outcome = OracleOutcome::default();
    let mut ctx = DecisionContext::initial(*g.stats());
    let mut tf_sum = 0.0;
    let mut te_sum = 0.0;
    // Fusion labelling inputs from the previously executed iteration.
    let mut prev_dup_ratio = 1.0f64;

    for iteration in 0..opts.max_iterations {
        app.advance(iteration);
        ctx.iteration = iteration;

        // P4: the oracle applies the paper's ±35% rule and labels with it
        // (the trained tree learns to reproduce the rule from features).
        let stepping = if caps.priority_driven {
            let s = ctx.stepping_by_rule();
            app.adjust_priority(s);
            s
        } else {
            SteppingDelta::Remain
        };

        let mut classify_ms = 0.0;
        let co = loop {
            let co = classify(g, app, spec);
            classify_ms += spec.kernel_time_ms(&co.profile);
            if co.stats.v_active > 0 || !app.rescue() {
                break co;
            }
        };
        if co.stats.v_active == 0 {
            break;
        }
        ctx.stats = co.stats;

        // Brute force: price all 24 (direction × format × lb) shapes.
        let push = analyze_push(g, &co.status);
        let pull = analyze_pull::<A>(g, &co.status);
        let push_prices = price_direction::<A>(g, spec, Direction::Push, &push);
        let pull_prices = if pull.vertices > 0 {
            price_direction::<A>(g, spec, Direction::Pull, &pull)
        } else {
            Vec::new()
        };

        let best_of = |prices: &[(AsFormat, LoadBalance, SimMs)]| {
            prices.iter().copied().min_by(|a, b| a.2.total_cmp(&b.2))
        };
        let Some(best_push) = best_of(&push_prices) else {
            // No priceable push shape — cannot happen for a well-formed
            // device spec, but nothing is labelable this iteration, so
            // stop the trajectory rather than panic mid-labelling.
            break;
        };
        let best_pull = best_of(&pull_prices);

        let (direction, best) = match best_pull {
            Some(bp) if bp.2 < best_push.2 => (Direction::Pull, bp),
            _ => (Direction::Push, best_push),
        };
        let chosen_prices = match direction {
            Direction::Push => &push_prices,
            Direction::Pull => &pull_prices,
        };
        // Per-pattern labels: each candidate's best time with the other
        // pattern free.
        let lb_label = [LoadBalance::Twc, LoadBalance::Wm, LoadBalance::Cm, LoadBalance::Strict]
            .into_iter()
            .min_by(|&a, &b| {
                let ta = min_time(chosen_prices, |(_, lb, _)| *lb == a);
                let tb = min_time(chosen_prices, |(_, lb, _)| *lb == b);
                ta.total_cmp(&tb)
            })
            .unwrap_or(LoadBalance::Twc);
        let fmt_label = [AsFormat::Bitmap, AsFormat::UnsortedQueue, AsFormat::SortedQueue]
            .into_iter()
            .min_by(|&a, &b| {
                let ta = min_time(chosen_prices, |(f, _, _)| *f == a);
                let tb = min_time(chosen_prices, |(f, _, _)| *f == b);
                ta.total_cmp(&tb)
            })
            .unwrap_or(AsFormat::Bitmap);

        // P5: fusion saves next iteration's classify+materialize+launch;
        // it costs the duplicate ratio on the expand side.
        let fusion_applicable = KernelConfig::fusion_legal(caps.dup_tolerant, direction);
        let fusion_label = if fusion_applicable {
            let mat_ms = spec.kernel_time_ms(&materialize_cost(
                best.0,
                g.num_vertices(),
                co.stats.push.vertices,
                spec,
            ));
            let saving = classify_ms + mat_ms + spec.launch_overhead_us / 1e3;
            let penalty = (prev_dup_ratio - 1.0) * best.2;
            if saving > penalty {
                Fusion::Fused
            } else {
                Fusion::Standalone
            }
        } else {
            Fusion::Standalone
        };

        // Record features + labels before executing.
        let features = ctx.features(direction);
        outcome.records.push(Record {
            features,
            labels: Labels {
                direction: Some((direction == Direction::Pull) as u8),
                format: Some(match fmt_label {
                    AsFormat::Bitmap => 0,
                    AsFormat::UnsortedQueue => 1,
                    AsFormat::SortedQueue => 2,
                }),
                load_balance: Some(match lb_label {
                    LoadBalance::Twc => 0,
                    LoadBalance::Wm => 1,
                    LoadBalance::Cm => 2,
                    LoadBalance::Strict => 3,
                }),
                stepping: caps.priority_driven.then_some(match stepping {
                    SteppingDelta::Increase => 0,
                    SteppingDelta::Decrease => 1,
                    SteppingDelta::Remain => 2,
                }),
                fusion: fusion_applicable.then_some((fusion_label == Fusion::Fused) as u8),
            },
            benchmark: benchmark.to_string(),
            graph: g.name().to_string(),
        });

        // Execute the argmin shape (standalone — state advance must stay
        // duplicate-free so later labels stay exact).
        let config = KernelConfig {
            direction,
            format: best.0,
            lb: best.1,
            stepping,
            fusion: Fusion::Standalone,
        };
        let (frontier, mat_profile) =
            materialize::<A>(g, &co.status, config.direction, config.format, spec);
        let eo = expand(g, app, &frontier, &co.status, config, spec);

        let filter_ms = classify_ms + spec.kernel_time_ms(&mat_profile);
        let expand_ms = spec.kernel_time_ms(&eo.profile);
        outcome.optimal_ms += filter_ms + expand_ms;
        outcome.iterations += 1;

        // Feedback for the next iteration's features and fusion label.
        tf_sum += filter_ms;
        te_sum += expand_ms;
        let done = outcome.iterations as f64;
        ctx.prev_prev_workload_edges = ctx.prev_workload_edges;
        ctx.prev_workload_edges = eo.edges_touched;
        ctx.t_f = filter_ms;
        ctx.t_e = expand_ms;
        ctx.t_f_avg = tf_sum / done;
        ctx.t_e_avg = te_sum / done;
        prev_dup_ratio = if eo.distinct_activated == 0 {
            1.0
        } else {
            // A fused kernel admits at most one racer per vertex (bitmap
            // marking), so the duplicate mass is capped by the distinct
            // count regardless of how many parents tied.
            (eo.activations + eo.ties.min(eo.distinct_activated)) as f64
                / eo.distinct_activated as f64
        };
    }
    outcome
}

fn min_time(
    prices: &[(AsFormat, LoadBalance, SimMs)],
    pred: impl Fn(&(AsFormat, LoadBalance, SimMs)) -> bool,
) -> SimMs {
    prices.iter().filter(|p| pred(p)).map(|p| p.2).fold(f64::INFINITY, f64::min)
}

/// Label a whole corpus: run the oracle for one app constructor over many
/// graphs, merging all records into a [`FeatureDb`].
pub fn label_corpus<A: EdgeApp>(
    graphs: &[(String, Graph)],
    make_app: impl Fn(&Graph) -> A + Sync,
    benchmark: &str,
    opts: &OracleOptions,
) -> FeatureDb {
    let dbs: Vec<Vec<Record>> = graphs
        .par_iter()
        .map(|(_, g)| {
            let app = make_app(g);
            oracle_run(g, &app, benchmark, opts).records
        })
        .collect();
    let mut db = FeatureDb::new();
    for records in dbs {
        db.records.extend(records);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_graph::{gen, GraphBuilder, VertexId};
    use gswitch_kernels::atomics::AtomicArray;

    struct Bfs {
        level: AtomicArray<u32>,
        current: std::sync::atomic::AtomicU32,
    }

    impl Bfs {
        fn new(n: usize, src: VertexId) -> Self {
            let b = Bfs {
                level: AtomicArray::filled(n, u32::MAX),
                current: std::sync::atomic::AtomicU32::new(0),
            };
            b.level.store(src, 0);
            b
        }
    }

    impl EdgeApp for Bfs {
        type Msg = u32;
        const PULL_EARLY_EXIT: bool = true;
        fn filter(&self, v: VertexId) -> Status {
            let l = self.level.load(v);
            let cur = self.current.load(std::sync::atomic::Ordering::Relaxed);
            if l == cur {
                Status::Active
            } else if l == u32::MAX {
                Status::Inactive
            } else {
                Status::Fixed
            }
        }
        fn emit(&self, u: VertexId, _w: u32) -> u32 {
            self.level.load(u) + 1
        }
        fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
            self.level.fetch_min(dst, msg) > msg
        }
        fn comp(&self, dst: VertexId, msg: u32) -> bool {
            if msg < self.level.load(dst) {
                self.level.store(dst, msg);
                true
            } else {
                false
            }
        }
        fn advance(&self, it: u32) {
            self.current.store(it, std::sync::atomic::Ordering::Relaxed);
        }
        fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
            self.level.load(dst) == msg
        }
    }

    #[test]
    fn oracle_produces_one_record_per_iteration() {
        let g = gen::erdos_renyi(400, 1_600, 5);
        let app = Bfs::new(400, 0);
        let out = oracle_run(&g, &app, "bfs", &OracleOptions::default());
        assert_eq!(out.records.len() as u32, out.iterations);
        assert!(out.iterations >= 2);
        assert!(out.optimal_ms > 0.0);
        for r in &out.records {
            assert!(r.labels.direction.is_some());
            assert!(r.labels.format.is_some());
            assert!(r.labels.load_balance.is_some());
            assert!(r.labels.stepping.is_none(), "BFS is not priority-driven");
            assert_eq!(r.benchmark, "bfs");
        }
    }

    #[test]
    fn oracle_state_matches_reference_bfs() {
        let g = gen::kronecker(9, 6, 7);
        let app = Bfs::new(g.num_vertices(), 0);
        oracle_run(&g, &app, "bfs", &OracleOptions::default());
        // Reference
        let mut dist = vec![u32::MAX; g.num_vertices()];
        dist[0] = 0;
        let mut q = std::collections::VecDeque::from([0u32]);
        while let Some(u) = q.pop_front() {
            for &v in g.out_csr().neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        assert_eq!(app.level.to_vec(), dist);
    }

    #[test]
    fn oracle_prefers_pull_on_dense_middle_iterations() {
        // A dense social-like graph has the classic BFS hump; the oracle
        // should pick pull at least once in the middle.
        let g = gen::barabasi_albert(4_000, 8, 11);
        let app = Bfs::new(g.num_vertices(), 0);
        let out = oracle_run(&g, &app, "bfs", &OracleOptions::default());
        assert!(
            out.records.iter().any(|r| r.labels.direction == Some(1)),
            "pull never chosen on a dense BA graph"
        );
    }

    #[test]
    fn label_corpus_merges_records() {
        let graphs: Vec<(String, Graph)> = (0..3)
            .map(|s| {
                let g = gen::erdos_renyi(200, 800, s);
                (g.name().to_string(), g)
            })
            .collect();
        let db = label_corpus(
            &graphs,
            |g| Bfs::new(g.num_vertices(), 0),
            "bfs",
            &OracleOptions::default(),
        );
        assert!(db.len() >= 6);
        let names: std::collections::HashSet<_> =
            db.records.iter().map(|r| r.graph.clone()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn analyze_push_counts_active_degrees() {
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3)]).build();
        // status: 0 active, others inactive
        let status = vec![0u8, 1, 1, 1];
        let a = analyze_push(&g, &status);
        assert_eq!(a.vertices, 1);
        assert_eq!(a.compact, vec![2]);
        assert_eq!(a.full, vec![2, 0, 0, 0]);
        assert_eq!(a.hits, 2);
    }

    #[test]
    fn analyze_pull_respects_early_exit() {
        // 3 has in-neighbors {1, 0... }; make 0 and 1 active, 2,3 inactive.
        let g = GraphBuilder::new(4).edges([(0, 3), (1, 3), (0, 2)]).build();
        let status = vec![0u8, 0, 1, 1];
        let a = analyze_pull::<Bfs>(&g, &status);
        // Receivers: 2 (parents {0}: 1 touch) and 3 (parents {0,1}: stop at first).
        assert_eq!(a.vertices, 2);
        assert_eq!(a.hits, 2);
        assert!(a.compact.iter().all(|&t| t == 1));
    }
}
