//! The Inspector → Selector → Executor loop (Fig. 10).

use crate::cancel::{ProbeHandle, StopReason};
use crate::features::DecisionContext;
use crate::policy::{AppCaps, Policy};
use gswitch_graph::Graph;
use gswitch_graph::VertexId;
use gswitch_kernels::bucket::{self, DegreeSource, WorkPlan};
use gswitch_kernels::filter::status_of;
use gswitch_kernels::pattern::{
    AsFormat, Direction, Fusion, KernelConfig, LoadBalance, SteppingDelta,
};
use gswitch_kernels::{
    classify, expand_planned, materialize, EdgeApp, Frontier, IterStats, Status,
};
use gswitch_obs::{Provenance, RecorderHandle, SpanCtx, SpanKind, TraceEvent};
use gswitch_simt::{DeviceSpec, SimMs};

/// Which patterns the Selector may actually switch — the ablation knob
/// behind Fig. 16 ("incremental performance of GSWITCH"). A masked
/// pattern is pinned to the static baseline candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternMask {
    /// P1 direction switching enabled.
    pub direction: bool,
    /// P2 active-set format switching enabled.
    pub format: bool,
    /// P3 load-balance switching enabled.
    pub load_balance: bool,
    /// P4 stepping enabled.
    pub stepping: bool,
    /// P5 fusion enabled.
    pub fusion: bool,
}

impl PatternMask {
    /// Everything on (production configuration).
    pub fn all() -> Self {
        PatternMask {
            direction: true,
            format: true,
            load_balance: true,
            stepping: true,
            fusion: true,
        }
    }

    /// Everything off: the non-switching "GSWITCH baseline" of Fig. 16.
    pub fn none() -> Self {
        PatternMask {
            direction: false,
            format: false,
            load_balance: false,
            stepping: false,
            fusion: false,
        }
    }

    /// Enable patterns P1..=Pk in the paper's numbering (Fig. 16's
    /// incremental bars): `up_to(0)` = baseline, `up_to(5)` = all.
    pub fn up_to(k: usize) -> Self {
        PatternMask {
            direction: k >= 1,
            format: k >= 2,
            load_balance: k >= 3,
            stepping: k >= 4,
            fusion: k >= 5,
        }
    }

    /// Pin masked-off patterns to the baseline candidates.
    pub fn apply(&self, mut cfg: KernelConfig) -> KernelConfig {
        if !self.direction {
            cfg.direction = Direction::Push;
        }
        if !self.format {
            cfg.format = AsFormat::UnsortedQueue;
        }
        if !self.load_balance {
            cfg.lb = LoadBalance::Strict;
        }
        if !self.stepping {
            cfg.stepping = SteppingDelta::Remain;
        }
        if !self.fusion {
            cfg.fusion = Fusion::Standalone;
        }
        cfg
    }
}

impl Default for PatternMask {
    fn default() -> Self {
        PatternMask::all()
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// The simulated GPU.
    pub device: DeviceSpec,
    /// Safety bound on super-steps.
    pub max_iterations: u32,
    /// Pattern ablation mask.
    pub mask: PatternMask,
    /// Enable the "is stable? → bypass the decision making" fast path of
    /// Fig. 10.
    pub stability_bypass: bool,
    /// Allow the executor to break an unprofitable fused chain (the
    /// paper's switch-back rule). Disable only to study the *pure* fused
    /// candidate, as Fig. 9 does.
    pub break_fused_chains: bool,
    /// Decision-trace sink. Off by default; when off the loop pays one
    /// `Option` check per iteration and builds no event.
    pub recorder: RecorderHandle,
    /// Cooperative stop probe, polled at the top of every super-step.
    /// None by default (the run cannot be interrupted); a serving
    /// scheduler installs a [`CancelToken`](crate::CancelToken) so
    /// deadlines and cancellations take effect mid-run.
    pub probe: ProbeHandle,
    /// Divergence-sentinel cadence: every `n` super-steps the engine
    /// cross-checks the chosen variant's frontier (and, for
    /// duplicate-tolerant apps, its vertex values) against a serial
    /// re-derivation from the classification snapshot. On a mismatch
    /// the run records a [`Provenance::Sentinel`] trace event, bumps
    /// `gswitch_obs::hardening::sentinel_mismatch`, repairs the damage
    /// and pins the rest of the run to the reference (push-baseline)
    /// variant. `0` (the default) disables the sentinel; the checks run
    /// on the host and are priced at zero simulated cost.
    pub verify_every: u32,
    /// Span context: where host wall time goes. Off by default (one
    /// `Option` check per span site); the serving runtime installs a
    /// collector so super-steps and their inspect/select/filter/expand
    /// phases appear in `gswitch-trace --timeline`. Its clock is also
    /// the engine's only wall-time source — host overhead is measured
    /// through it whether or not spans are collected.
    pub spans: SpanCtx,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            device: DeviceSpec::default(),
            max_iterations: 50_000,
            mask: PatternMask::all(),
            stability_bypass: true,
            break_fused_chains: true,
            recorder: RecorderHandle::none(),
            probe: ProbeHandle::none(),
            verify_every: 0,
            spans: SpanCtx::default(),
        }
    }
}

impl EngineOptions {
    /// Options on a specific device.
    pub fn on(device: DeviceSpec) -> Self {
        EngineOptions { device, ..Default::default() }
    }

    /// Enable the divergence sentinel every `n` super-steps (0 = off).
    pub fn verify_every(mut self, n: u32) -> Self {
        self.verify_every = n;
        self
    }
}

/// Everything one super-step did — the raw material for every figure in
/// the evaluation.
#[derive(Clone, Debug)]
pub struct IterationTrace {
    /// Super-step index (0-based).
    pub iteration: u32,
    /// The configuration the Executor ran.
    pub config: KernelConfig,
    /// Whether the Selector actually ran (false = stability bypass or
    /// fused chain).
    pub decided: bool,
    /// Whether `stats` are estimates from Expand feedback (fused chain)
    /// rather than a classification pass.
    pub estimated: bool,
    /// Runtime characteristics the Selector saw.
    pub stats: IterStats,
    /// Simulated Filter time (classify + materialize), ms. Zero inside a
    /// fused chain.
    pub filter_ms: SimMs,
    /// Simulated Expand time, ms.
    pub expand_ms: SimMs,
    /// Autotuner overhead: measured host-side decision time plus the
    /// simulated device→host feedback copy, ms.
    pub overhead_ms: f64,
    /// Successful comp events.
    pub activations: u64,
    /// Distinct vertices activated.
    pub distinct_activated: u64,
    /// Edges traversed by Expand.
    pub edges_touched: u64,
    /// Duplicate frontier entries produced (fused only).
    pub duplicates: u64,
    /// The 21-entry feature vector presented to the Selector.
    pub features: [f64; gswitch_ml::FEATURE_COUNT],
}

/// What the divergence sentinel saw (all zero when it was off).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SentinelReport {
    /// Cross-checks performed.
    pub checks: u32,
    /// Mismatches detected (each also bumps the global
    /// `gswitch_obs::hardening::sentinel_mismatch` counter).
    pub mismatches: u32,
    /// Iteration at which the run was pinned to the reference variant,
    /// if a mismatch ever fired.
    pub pinned_at: Option<u32>,
}

/// The result of running an application to convergence.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Per-iteration traces in order.
    pub iterations: Vec<IterationTrace>,
    /// Whether the active set emptied before `max_iterations`.
    pub converged: bool,
    /// `Some` when the probe stopped the run early (never converged).
    pub stopped: Option<StopReason>,
    /// Divergence-sentinel outcome (`EngineOptions::verify_every`).
    pub sentinel: SentinelReport,
}

impl RunReport {
    /// Number of super-steps executed.
    pub fn n_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Total simulated Filter time (ms).
    pub fn filter_ms(&self) -> SimMs {
        self.iterations.iter().map(|t| t.filter_ms).sum()
    }

    /// Total simulated Expand time (ms).
    pub fn expand_ms(&self) -> SimMs {
        self.iterations.iter().map(|t| t.expand_ms).sum()
    }

    /// Total tuning overhead (ms).
    pub fn overhead_ms(&self) -> f64 {
        self.iterations.iter().map(|t| t.overhead_ms).sum()
    }

    /// Total runtime including overhead (ms) — the number every paper
    /// table reports.
    pub fn total_ms(&self) -> SimMs {
        self.filter_ms() + self.expand_ms() + self.overhead_ms()
    }

    /// Total edges traversed (work-efficiency metric of Fig. 8).
    pub fn edges_touched(&self) -> u64 {
        self.iterations.iter().map(|t| t.edges_touched).sum()
    }

    /// How many iterations actually consulted the Selector.
    pub fn decisions_made(&self) -> usize {
        self.iterations.iter().filter(|t| t.decided).count()
    }

    /// The configuration the final super-step ran, if any ran at all.
    pub fn final_config(&self) -> Option<KernelConfig> {
        self.iterations.last().map(|t| t.config)
    }

    /// The configuration that ran the most super-steps — what a
    /// tuned-config cache should remember as "the" tuned configuration
    /// for this (graph, algorithm) pair. Ties break toward the config
    /// that reached the count first.
    pub fn dominant_config(&self) -> Option<KernelConfig> {
        let mut counts: Vec<(KernelConfig, usize)> = Vec::new();
        for t in &self.iterations {
            match counts.iter_mut().find(|(c, _)| *c == t.config) {
                Some((_, n)) => *n += 1,
                None => counts.push((t.config, 1)),
            }
        }
        counts.into_iter().max_by_key(|&(_, n)| n).map(|(c, _)| c)
    }
}

/// Run `app` on `g` under `policy` until convergence.
///
/// ```
/// use gswitch_core::{run, AutoPolicy, EngineOptions};
/// use gswitch_graph::gen;
///
/// // Autotuned connected components on a generated graph.
/// let g = gen::erdos_renyi(500, 1_000, 7);
/// let app = /* any EdgeApp; algorithms live in gswitch-algos */
/// # {
/// #     use gswitch_core::{GraphApp, Status};
/// #     use gswitch_kernels::atomics::AtomicArray;
/// #     struct Noop(AtomicArray<u32>);
/// #     impl GraphApp for Noop {
/// #         type Msg = u32;
/// #         fn filter(&self, _v: u32) -> Status { Status::Fixed }
/// #         fn emit(&self, _u: u32, _w: u32) -> u32 { 0 }
/// #         fn comp_atomic(&self, _d: u32, _m: u32) -> bool { false }
/// #         fn comp(&self, _d: u32, _m: u32) -> bool { false }
/// #     }
/// #     Noop(AtomicArray::filled(500, 0))
/// # };
/// let report = run(&g, &app, &AutoPolicy, &EngineOptions::default());
/// assert!(report.converged);
/// ```
pub fn run<A: EdgeApp>(g: &Graph, app: &A, policy: &dyn Policy, opts: &EngineOptions) -> RunReport {
    run_with_seed_config(g, app, policy, opts, None)
}

/// Run `app` on `g` like [`run`], warm-started from a previously tuned
/// configuration.
///
/// When `seed` is `Some`, the first super-step executes the seed
/// configuration (masked and clamped like any decision) instead of
/// consulting the policy, and the decision history is primed as if the
/// seed had already run a stable streak — so the Fig. 10 stability
/// bypass can keep it from the second iteration on. The policy regains
/// control the moment the expand time drifts, exactly as it would after
/// any stable phase; a stale seed therefore costs at most one
/// mis-configured super-step. The caller can extract the configuration
/// to cache from the returned report via [`RunReport::dominant_config`].
pub fn run_with_seed_config<A: EdgeApp>(
    g: &Graph,
    app: &A,
    policy: &dyn Policy,
    opts: &EngineOptions,
    seed: Option<KernelConfig>,
) -> RunReport {
    let caps = AppCaps::of::<A>();
    let spec = &opts.device;
    let mut report = RunReport::default();
    let mut ctx = DecisionContext::initial(*g.stats());

    // Legalize the seed exactly like a policy decision, so a config
    // cached under a different mask or app cannot smuggle in an illegal
    // shape.
    let seed = seed.map(|c| caps.clamp(opts.mask.apply(c)));

    // History accumulators for the Table 1 "historical information" block.
    let mut tf_sum = 0.0f64;
    let mut te_sum = 0.0f64;
    let mut last_config: Option<KernelConfig> = seed;
    // A seed counts as an established streak: the stability bypass may
    // retain it as soon as runtime history exists (iteration 1).
    let mut same_config_streak = if seed.is_some() { 2 } else { 0 };

    // Divergence-sentinel state: the legal reference shape every app can
    // run, and whether a mismatch has pinned the run to it.
    let reference_config = caps.clamp(opts.mask.apply(KernelConfig::push_baseline()));
    let mut pinned = false;
    // Standalone super-steps since the last check: fused-chain
    // iterations have no status snapshot to verify against, so the
    // cadence counts verifiable iterations (a chain cannot starve the
    // sentinel past its budget).
    let mut since_check = 0u32;

    // Direction-switch fast path: the degree-bucketed work plan of the
    // previous Expand. When the next workload's fingerprint matches, its
    // prefix sums are reused instead of rescanned — including across a
    // direction switch on symmetric graphs, where in-degrees equal
    // out-degrees (so a push-built plan prices a pull workload exactly).
    let mut last_plan: Option<WorkPlan> = None;
    let degrees_symmetric = g.is_symmetric();

    // Fused-chain state: the raw queue the previous Expand emitted, plus
    // the estimated stats travelling with it.
    let mut pending: Option<(Vec<u32>, IterStats)> = None;
    let mut fused_te_sum = 0.0f64;
    let mut fused_te_count = 0u32;
    // Most recent standalone Filter cost — what breaking a chain buys back.
    let mut last_filter_ms = 0.0f64;

    // Span plumbing: one per-thread staging buffer for the whole run;
    // each iteration opens a SuperStep span the phase spans nest under.
    let span_local = opts.spans.local();
    let clock = span_local.clock().clone();

    'steps: for iteration in 0..opts.max_iterations {
        // Cooperative stop: deadline/cancellation takes effect at
        // super-step granularity, before this iteration does any work.
        if let Some(reason) = opts.probe.check(iteration) {
            report.stopped = Some(reason);
            break;
        }
        let step = span_local.start_tagged(SpanKind::SuperStep, opts.spans.parent, None, iteration);
        let step_id = step.id();
        app.advance(iteration);
        ctx.iteration = iteration;

        // ---- Inspector + Selector (host). Decision time is real wall
        // time — the analogue of the paper's 58–120 µs per iteration —
        // measured around the policy calls only (kernel work is priced by
        // the simulator, not the host clock).
        let mut overhead_host_ms = 0.0;
        let mut timed = |f: &mut dyn FnMut()| {
            let t0 = clock.now_ns();
            f();
            let t1 = clock.now_ns();
            overhead_host_ms += (t1.saturating_sub(t0)) as f64 / 1e6;
            span_local.record_interval(SpanKind::Select, step_id, t0, t1, None, iteration);
        };

        // P4 must precede classification: the threshold feeds `filter`.
        let mut stepping = SteppingDelta::Remain;
        if caps.priority_driven && opts.mask.stepping {
            timed(&mut || {
                stepping = policy.decide_stepping(&ctx, &caps);
            });
            app.adjust_priority(stepping);
        }

        // ---- Executor: Filter phase (or fused continuation).
        let (frontier, status, stats, filter_ms, estimated, mut config, decided, mut provenance);
        // Whether the post-Expand half of the sentinel applies to this
        // iteration (standalone + sentinel scheduled + not yet pinned).
        let mut verify_values = false;
        match pending.take() {
            Some((queue, est_stats)) => {
                // Fused chain: skip Filter entirely; reuse the last config.
                stats = est_stats;
                ctx.stats = stats;
                // A fused chain implies a previous config; should that
                // invariant ever break, the reference shape is a safe
                // (if slower) continuation — never a panic mid-query.
                config = last_config.unwrap_or(reference_config);
                config.stepping = stepping;
                decided = false;
                provenance = Provenance::FusedChain;
                estimated = true;
                frontier = Frontier::RawQueue(queue);
                status = Vec::new();
                filter_ms = 0.0;
            }
            None => {
                // The rescue loop: a priority-driven app may unlock
                // deferred work (advance its threshold window) when the
                // active set drains; each retry pays a classification.
                let mut classify_ms = 0.0;
                let i0 = clock.now_ns();
                let co = loop {
                    let co = classify(g, app, spec);
                    classify_ms += spec.kernel_time_ms(&co.profile);
                    if co.stats.v_active > 0 || !app.rescue() {
                        break co;
                    }
                    // Every retry re-classifies the whole graph, and a
                    // pathological app can keep unlocking work — poll the
                    // probe so cancellation and deadlines can interrupt
                    // the spin rather than waiting for it to drain.
                    if let Some(reason) = opts.probe.check(iteration) {
                        report.stopped = Some(reason);
                        break 'steps;
                    }
                };
                span_local.record_interval(
                    SpanKind::Inspect,
                    step_id,
                    i0,
                    clock.now_ns(),
                    None,
                    iteration,
                );
                if co.stats.v_active == 0 {
                    report.converged = true;
                    break;
                }
                ctx.stats = co.stats;
                // Selector (with the Fig. 10 stability bypass).
                let stable = opts.stability_bypass
                    && same_config_streak >= 2
                    && ctx.t_e_avg > 0.0
                    && (ctx.t_e - ctx.t_e_avg).abs() <= 0.5 * ctx.t_e_avg;
                let (mut cfg, dec, mut prov);
                if pinned {
                    // A previous sentinel mismatch distrusts every tuned
                    // variant: run the reference shape to completion.
                    cfg = reference_config;
                    dec = false;
                    prov = Provenance::Sentinel;
                } else if let (true, Some(prev)) = (stable, last_config) {
                    // Stability implies history; requiring the Some
                    // here (rather than unwrapping) means a broken
                    // streak counter degrades to a fresh decision.
                    cfg = prev;
                    dec = false;
                    prov = Provenance::StabilityBypass;
                } else if let Some(s) = seed.filter(|_| iteration == 0) {
                    // Warm start: the cached configuration plays the
                    // role of the first decision.
                    cfg = s;
                    dec = false;
                    prov = Provenance::WarmStart;
                } else {
                    let mut c = KernelConfig::push_baseline();
                    timed(&mut || {
                        c = policy.decide(&ctx, &caps);
                    });
                    cfg = c;
                    dec = true;
                    prov = Provenance::Decided;
                }
                cfg.stepping = stepping;
                cfg = caps.clamp(opts.mask.apply(cfg));
                let f0 = clock.now_ns();
                let (mut f, mat_profile) =
                    materialize::<A>(g, &co.status, cfg.direction, cfg.format, spec);
                span_local.record_interval(
                    SpanKind::Filter,
                    step_id,
                    f0,
                    clock.now_ns(),
                    None,
                    iteration,
                );
                let mut mat_ms = spec.kernel_time_ms(&mat_profile);
                #[cfg(feature = "fault-injection")]
                crate::faults::corrupt_frontier(&mut f, cfg == reference_config);

                // ---- Divergence sentinel, frontier half: the chosen
                // format/direction must materialize exactly the workload
                // the status snapshot implies.
                since_check += 1;
                let verify = opts.verify_every > 0 && !pinned && since_check >= opts.verify_every;
                if verify {
                    let v0 = clock.now_ns();
                    since_check = 0;
                    report.sentinel.checks += 1;
                    let expected = sentinel_expected_frontier::<A>(
                        g.num_vertices(),
                        &co.status,
                        cfg.direction,
                    );
                    let mut got = f.to_vec();
                    got.sort_unstable();
                    got.dedup();
                    if got != expected {
                        gswitch_obs::hardening::note_sentinel_mismatch();
                        report.sentinel.mismatches += 1;
                        report.sentinel.pinned_at.get_or_insert(iteration);
                        pinned = true;
                        cfg = reference_config;
                        prov = Provenance::Sentinel;
                        // Repair: rebuild the frontier with the reference
                        // shape so this very iteration completes correctly.
                        let (f2, mat2) =
                            materialize::<A>(g, &co.status, cfg.direction, cfg.format, spec);
                        f = f2;
                        mat_ms += spec.kernel_time_ms(&mat2);
                    }
                    span_local.record_interval(
                        SpanKind::Sentinel,
                        step_id,
                        v0,
                        clock.now_ns(),
                        None,
                        iteration,
                    );
                }
                verify_values = verify && !pinned;

                frontier = f;
                status = co.status;
                stats = co.stats;
                estimated = false;
                filter_ms = classify_ms + mat_ms;
                last_filter_ms = filter_ms;
                config = cfg;
                decided = dec;
                provenance = prov;
            }
        }
        // ---- Executor: work partition (build or reuse the degree plan).
        let p0 = clock.now_ns();
        let need = DegreeSource::of(config.direction);
        let fp = bucket::fingerprint_of(&frontier);
        let plan = match last_plan.take() {
            Some(p) if p.matches(fp, need, degrees_symmetric) => p,
            _ => WorkPlan::for_frontier(g, &frontier, config.direction),
        };
        span_local.record_interval(
            SpanKind::Partition,
            step_id,
            p0,
            clock.now_ns(),
            None,
            iteration,
        );

        // ---- Executor: Expand phase.
        let e0 = clock.now_ns();
        let mut eo = expand_planned(g, app, &frontier, &status, config, spec, Some(&plan));
        span_local.record_interval(SpanKind::Expand, step_id, e0, clock.now_ns(), None, iteration);
        last_plan = Some(plan);
        if estimated {
            // Fused continuation: the expand runs inside the kernel the
            // chain's first iteration launched — no fresh launch, and no
            // device→host feedback copy (that is fusion's entire point).
            eo.profile.launches = 0;
        }
        let expand_ms = spec.kernel_time_ms(&eo.profile);

        // ---- Divergence sentinel, value half: after a correct Expand a
        // serial re-application of emit/comp over the active vertices
        // finds nothing left to do. Each successful comp is work the
        // chosen variant missed — and is also the repair, so the run
        // converges to the right answer even on the mismatch iteration.
        // Only duplicate-tolerant (idempotent/monotonic) apps can absorb
        // the re-application safely.
        if verify_values && A::DUP_TOLERANT {
            let v0 = clock.now_ns();
            report.sentinel.checks += 1;
            let repairs = sentinel_value_sweep(g, app, &status);
            if repairs > 0 {
                gswitch_obs::hardening::note_sentinel_mismatch();
                report.sentinel.mismatches += 1;
                report.sentinel.pinned_at.get_or_insert(iteration);
                pinned = true;
                provenance = Provenance::Sentinel;
            }
            span_local.record_interval(
                SpanKind::Sentinel,
                step_id,
                v0,
                clock.now_ns(),
                None,
                iteration,
            );
        }

        // ---- Feedback (device→host copy) + trace.
        let feedback_ms = if estimated { 0.0 } else { spec.feedback_time_ms() };
        let overhead_ms = overhead_host_ms + feedback_ms;
        let features = ctx.features(config.direction);
        report.iterations.push(IterationTrace {
            iteration,
            config,
            decided,
            estimated,
            stats,
            filter_ms,
            expand_ms,
            overhead_ms,
            activations: eo.activations,
            distinct_activated: eo.distinct_activated,
            edges_touched: eo.edges_touched,
            duplicates: eo.profile.duplicates,
            features,
        });

        // Decision trace: one event per super-step. The prediction is
        // the Inspector's historical expectation (`t_e_avg` *before*
        // this iteration folds in) — the exact signal the stability
        // bypass gambles on, so `measured - predicted` is its regret.
        if let Some(rec) = opts.recorder.active() {
            rec.record(&TraceEvent {
                iteration,
                config,
                provenance,
                predicted_ms: ctx.t_e_avg,
                measured_ms: expand_ms,
                filter_ms,
                overhead_ms,
                v_active: stats.v_active,
                e_active: stats.e_active,
                edges_touched: eo.edges_touched,
                activations: eo.activations,
                duplicates: eo.profile.duplicates,
                task_total_cycles: eo.profile.tasks.total_cycles,
                task_max_cycles: eo.profile.tasks.max_cycles,
                task_count: eo.profile.tasks.count,
                features,
                shard: None,
            });
        }

        // History for the next Inspector.
        tf_sum += filter_ms;
        te_sum += expand_ms;
        let done = iteration as f64 + 1.0;
        ctx.prev_prev_workload_edges = ctx.prev_workload_edges;
        ctx.prev_workload_edges = eo.edges_touched;
        ctx.t_f = filter_ms;
        ctx.t_e = expand_ms;
        ctx.t_f_avg = tf_sum / done;
        ctx.t_e_avg = te_sum / done;
        if last_config == Some(config) {
            same_config_streak += 1;
        } else {
            same_config_streak = 0;
        }
        last_config = Some(config);

        // Fused-chain continuation: keep chaining while the chain is
        // healthy ("if the runtime of the last iteration is far longer
        // than the average runtime in the fused mode, switch back").
        if let Some(queue) = eo.next_queue.take() {
            if queue.is_empty() {
                fused_te_sum = 0.0;
                fused_te_count = 0;
                // Chain drained; next iteration re-classifies (and will
                // observe convergence if nothing is active).
            } else {
                // Exponential moving average tracks the chain's recent
                // pace, so gradual frontier growth does not read as an
                // anomaly — only a sudden blow-up does.
                fused_te_count += 1;
                fused_te_sum = if fused_te_count == 1 {
                    expand_ms
                } else {
                    0.7 * fused_te_sum + 0.3 * expand_ms
                };
                let chain_avg = fused_te_sum;
                // Break the chain when the duplicated fraction of the next
                // queue is predicted to waste more expand time than a
                // standalone re-filter would cost (the social-graph
                // failure mode of Fig. 9b), or when the last iteration ran
                // far beyond the chain average (the paper's switch-back
                // rule).
                let waste_ms = fused_waste_ms(expand_ms, eo.profile.duplicates, queue.len());
                let refilter_ms =
                    last_filter_ms + spec.launch_overhead_us / 1e3 + spec.feedback_time_ms();
                let dup_heavy = waste_ms > refilter_ms;
                // Pre-emptive break on frontier explosion: the enqueued
                // edge estimate is a side product of the fused kernel, and
                // committing blind through a hump would skip the direction
                // decision exactly where it matters (Enterprise's
                // bottom-up switch uses the same signal).
                let exploding = eo.activated_out_edges > 4 * eo.edges_touched.max(1);
                let keep = !pinned
                    && (!opts.break_fused_chains
                        || (!dup_heavy && !exploding && expand_ms <= 4.0 * chain_avg));
                if keep {
                    let est = estimate_stats(&stats, &eo, queue.len() as u64);
                    pending = Some((queue, est));
                } else {
                    fused_te_sum = 0.0;
                    fused_te_count = 0;
                }
            }
        } else {
            fused_te_sum = 0.0;
            fused_te_count = 0;
        }
    }

    // Hitting the bound without draining the frontier is non-convergence
    // (the loop breaks with `converged = true` otherwise).
    if report.iterations.len() >= opts.max_iterations as usize {
        report.converged = false;
    }
    report
}

/// Predicted expand time wasted re-processing the duplicated fraction of
/// a fused kernel's raw queue — the signal the chain-break rule weighs
/// against a standalone re-filter's cost. A zero-length queue wastes
/// nothing (the guard matters: `0.0 * x / 0` would be NaN, and a NaN
/// here poisons every comparison in the fusion decision downstream).
fn fused_waste_ms(expand_ms: f64, duplicates: u64, queue_len: usize) -> f64 {
    if queue_len == 0 {
        0.0
    } else {
        expand_ms * duplicates as f64 / queue_len as f64
    }
}

/// Serially re-derive the workload the status snapshot implies for a
/// direction — the sentinel's ground truth for the frontier check. The
/// predicate mirrors `materialize` by construction: push visits actives,
/// pull visits receivers.
fn sentinel_expected_frontier<A: EdgeApp>(
    n: usize,
    status: &[u8],
    direction: Direction,
) -> Vec<VertexId> {
    (0..n as VertexId)
        .filter(|&v| {
            let st = status_of(status[v as usize]);
            match direction {
                Direction::Push => st == Status::Active,
                Direction::Pull => A::pull_receives(st),
            }
        })
        .collect()
}

/// Serial reference push sweep: re-apply emit/comp over every out-edge
/// of every active vertex. Returns the number of successful comps —
/// zero after a correct Expand; anything else is missed work (now
/// repaired by the sweep itself).
fn sentinel_value_sweep<A: EdgeApp>(g: &Graph, app: &A, status: &[u8]) -> u64 {
    let out = g.out_csr();
    let ws = g.out_weights();
    let mut repairs = 0u64;
    for v in 0..g.num_vertices() as VertexId {
        if status_of(status[v as usize]) != Status::Active {
            continue;
        }
        let r = out.edge_range(v);
        for (i, &t) in out.neighbors(v).iter().enumerate() {
            let w = match (A::NEEDS_WEIGHTS, ws) {
                (true, Some(ws)) => ws[r.start + i],
                _ => 1,
            };
            if app.comp(t, app.emit(v, w)) {
                repairs += 1;
            }
        }
    }
    repairs
}

/// Estimate the next iteration's runtime characteristics from Expand
/// feedback, without a classification pass (fused chain).
fn estimate_stats(
    prev: &IterStats,
    eo: &gswitch_kernels::ExpandOutput,
    queue_len: u64,
) -> IterStats {
    let mut s = *prev;
    s.v_active = eo.distinct_activated;
    s.e_active = eo.activated_out_edges;
    s.v_inactive = prev.v_inactive.saturating_sub(eo.distinct_activated);
    s.e_inactive = prev.e_inactive.saturating_sub(eo.activated_out_edges);
    s.push.vertices = queue_len;
    s.push.edges = eo.activated_out_edges;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AutoPolicy, StaticPolicy};
    use gswitch_graph::{gen, GraphBuilder, VertexId};
    use gswitch_kernels::atomics::AtomicArray;
    use gswitch_kernels::Status;

    /// Minimal BFS app for engine tests.
    struct Bfs {
        level: AtomicArray<u32>,
        current: std::sync::atomic::AtomicU32,
    }

    impl Bfs {
        fn new(n: usize, src: VertexId) -> Self {
            let b = Bfs {
                level: AtomicArray::filled(n, u32::MAX),
                current: std::sync::atomic::AtomicU32::new(0),
            };
            b.level.store(src, 0);
            b
        }
    }

    impl EdgeApp for Bfs {
        type Msg = u32;
        const PULL_EARLY_EXIT: bool = true;
        fn filter(&self, v: VertexId) -> Status {
            let l = self.level.load(v);
            let cur = self.current.load(std::sync::atomic::Ordering::Relaxed);
            if l == cur {
                Status::Active
            } else if l == u32::MAX {
                Status::Inactive
            } else {
                Status::Fixed
            }
        }
        fn emit(&self, u: VertexId, _w: u32) -> u32 {
            self.level.load(u) + 1
        }
        fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
            self.level.fetch_min(dst, msg) > msg
        }
        fn comp(&self, dst: VertexId, msg: u32) -> bool {
            if msg < self.level.load(dst) {
                self.level.store(dst, msg);
                true
            } else {
                false
            }
        }
        fn advance(&self, it: u32) {
            self.current.store(it, std::sync::atomic::Ordering::Relaxed);
        }
        fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
            self.level.load(dst) == msg
        }
    }

    /// Reference BFS.
    fn bfs_reference(g: &Graph, src: VertexId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; g.num_vertices()];
        dist[src as usize] = 0;
        let mut q = std::collections::VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for &v in g.out_csr().neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    #[test]
    fn engine_bfs_matches_reference_on_path() {
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build();
        let app = Bfs::new(5, 0);
        let rep = run(&g, &app, &AutoPolicy, &EngineOptions::default());
        assert!(rep.converged);
        assert_eq!(app.level.to_vec(), vec![0, 1, 2, 3, 4]);
        // 4 productive expansions + the final one that proves exhaustion.
        assert_eq!(rep.n_iterations(), 5);
        assert!(rep.total_ms() > 0.0);
    }

    #[test]
    fn engine_emits_nested_phase_spans() {
        use gswitch_obs::{SpanKind, SpanRing};
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build();
        let app = Bfs::new(5, 0);
        let ring = std::sync::Arc::new(SpanRing::new(4096));
        // Parent ids always come from the same ring, like the serving
        // runtime's Execute span does.
        let parent = ring.alloc_id();
        let opts = EngineOptions {
            spans: gswitch_obs::SpanCtx::new(ring.collector(), parent, 2, 11),
            ..Default::default()
        };
        let rep = run(&g, &app, &AutoPolicy, &opts);
        assert!(rep.converged);
        let spans = ring.snapshot();
        let steps: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::SuperStep).collect();
        // One SuperStep per engine iteration (including the convergence
        // probe), parented on the caller-supplied id.
        assert_eq!(steps.len(), rep.n_iterations() + 1);
        assert!(steps.iter().all(|s| s.parent == parent && s.worker == 2 && s.job == 11));
        // Every phase span nests under some SuperStep of the same run.
        let step_ids: std::collections::BTreeSet<u64> = steps.iter().map(|s| s.id).collect();
        let phases: Vec<_> = spans.iter().filter(|s| s.kind != SpanKind::SuperStep).collect();
        assert!(!phases.is_empty());
        assert!(phases.iter().all(|s| step_ids.contains(&s.parent)));
        assert!(phases.iter().any(|s| s.kind == SpanKind::Inspect));
        assert!(phases.iter().any(|s| s.kind == SpanKind::Expand));
        // Self-times decompose wall time: Σ excl ≤ Σ root inclusive.
        let p = gswitch_obs::profile(&spans);
        assert!(p.excl_total_ms() <= p.total_ms + 1e-9);
    }

    #[test]
    fn fused_waste_is_zero_not_nan_on_empty_queue() {
        // Regression: `expand_ms * dups / queue.len()` on a drained raw
        // queue divides by zero; the guard must return a clean 0.0 that
        // every downstream comparison handles.
        let w = fused_waste_ms(3.5, 7, 0);
        assert_eq!(w, 0.0);
        assert!(w.is_finite());
        // And the comparison the engine actually makes stays false.
        assert!(w <= 0.1);
        // Non-degenerate case: half the queue is duplicates.
        assert!((fused_waste_ms(4.0, 5, 10) - 2.0).abs() < 1e-12);
        // No duplicates wastes nothing.
        assert_eq!(fused_waste_ms(4.0, 0, 10), 0.0);
    }

    #[test]
    fn partition_span_emitted_for_every_expand() {
        use gswitch_obs::{SpanKind, SpanRing};
        let g = gen::kronecker(8, 8, 5);
        let app = Bfs::new(g.num_vertices(), 0);
        let ring = std::sync::Arc::new(SpanRing::new(4096));
        let parent = ring.alloc_id();
        let opts = EngineOptions {
            spans: gswitch_obs::SpanCtx::new(ring.collector(), parent, 0, 1),
            ..Default::default()
        };
        let rep = run(&g, &app, &AutoPolicy, &opts);
        assert!(rep.converged);
        let spans = ring.snapshot();
        let n = |k: SpanKind| spans.iter().filter(|s| s.kind == k).count();
        // Every Expand was planned under a Partition span (build or reuse).
        assert_eq!(n(SpanKind::Partition), n(SpanKind::Expand));
        assert!(n(SpanKind::Partition) > 0);
    }

    #[test]
    fn engine_bfs_matches_reference_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::erdos_renyi(500, 2_000, seed);
            let app = Bfs::new(500, 0);
            let rep = run(&g, &app, &AutoPolicy, &EngineOptions::default());
            assert!(rep.converged);
            assert_eq!(app.level.to_vec(), bfs_reference(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn every_static_shape_reaches_the_same_answer() {
        let g = gen::kronecker(9, 8, 3);
        let expected = bfs_reference(&g, 0);
        for cfg in KernelConfig::all_shapes() {
            let app = Bfs::new(g.num_vertices(), 0);
            let rep = run(&g, &app, &StaticPolicy::new(cfg), &EngineOptions::default());
            assert!(rep.converged, "{cfg}");
            assert_eq!(app.level.to_vec(), expected, "{cfg}");
        }
    }

    #[test]
    fn mask_pins_baseline_candidates() {
        let g = gen::grid2d(30, 30, 0.0, 1);
        let app = Bfs::new(g.num_vertices(), 0);
        let opts = EngineOptions { mask: PatternMask::none(), ..Default::default() };
        let rep = run(&g, &app, &AutoPolicy, &opts);
        for t in &rep.iterations {
            assert_eq!(t.config.direction, Direction::Push);
            assert_eq!(t.config.lb, LoadBalance::Strict);
            assert_eq!(t.config.fusion, Fusion::Standalone);
        }
    }

    #[test]
    fn mask_up_to_is_monotone() {
        assert_eq!(PatternMask::up_to(0), PatternMask::none());
        assert_eq!(PatternMask::up_to(5), PatternMask::all());
        let m3 = PatternMask::up_to(3);
        assert!(m3.direction && m3.format && m3.load_balance);
        assert!(!m3.stepping && !m3.fusion);
    }

    #[test]
    fn fused_static_policy_chains_and_converges() {
        let g = gen::grid2d(40, 40, 0.0, 2);
        let expected = bfs_reference(&g, 0);
        let cfg = KernelConfig { fusion: Fusion::Fused, ..KernelConfig::push_baseline() };
        let app = Bfs::new(g.num_vertices(), 0);
        let rep = run(&g, &app, &StaticPolicy::new(cfg), &EngineOptions::default());
        assert!(rep.converged);
        assert_eq!(app.level.to_vec(), expected);
        // Chain iterations skip Filter.
        assert!(
            rep.iterations.iter().any(|t| t.filter_ms == 0.0 && t.iteration > 0),
            "expected fused-chain iterations"
        );
    }

    #[test]
    fn disconnected_graph_converges_without_reaching_everything() {
        let g = GraphBuilder::new(4).edges([(0, 1), (2, 3)]).build();
        let app = Bfs::new(4, 0);
        let rep = run(&g, &app, &AutoPolicy, &EngineOptions::default());
        assert!(rep.converged);
        assert_eq!(app.level.load(1), 1);
        assert_eq!(app.level.load(2), u32::MAX);
    }

    #[test]
    fn report_aggregates_are_consistent() {
        let g = gen::erdos_renyi(300, 1_500, 9);
        let app = Bfs::new(300, 0);
        let rep = run(&g, &app, &AutoPolicy, &EngineOptions::default());
        let sum: f64 =
            rep.iterations.iter().map(|t| t.filter_ms + t.expand_ms + t.overhead_ms).sum();
        assert!((rep.total_ms() - sum).abs() < 1e-9);
        assert!(rep.decisions_made() <= rep.n_iterations());
        assert!(rep.edges_touched() > 0);
    }

    #[test]
    fn stability_bypass_reduces_decisions() {
        // A long-diameter graph gives many similar iterations.
        let g = gen::grid2d(60, 60, 0.0, 3);
        let app = Bfs::new(g.num_vertices(), 0);
        let opts = EngineOptions { stability_bypass: true, ..Default::default() };
        let rep = run(&g, &app, &AutoPolicy, &opts);
        assert!(
            rep.decisions_made() < rep.n_iterations(),
            "bypass never engaged over {} iterations",
            rep.n_iterations()
        );
    }

    #[test]
    fn warm_start_uses_seed_without_deciding() {
        let g = gen::kronecker(9, 8, 5);
        let expected = bfs_reference(&g, 0);

        let cold_app = Bfs::new(g.num_vertices(), 0);
        let cold = run(&g, &cold_app, &AutoPolicy, &EngineOptions::default());
        let tuned = cold.dominant_config().expect("cold run iterated");

        let warm_app = Bfs::new(g.num_vertices(), 0);
        let warm = run_with_seed_config(
            &g,
            &warm_app,
            &AutoPolicy,
            &EngineOptions::default(),
            Some(tuned),
        );
        assert!(warm.converged);
        assert_eq!(warm_app.level.to_vec(), expected);
        // The seed replaces the first decision...
        assert!(!warm.iterations[0].decided);
        assert_eq!(warm.iterations[0].config, tuned);
        // ...and priming the streak means warm never decides more often.
        assert!(warm.decisions_made() <= cold.decisions_made());
    }

    #[test]
    fn warm_start_seed_is_masked_and_clamped() {
        let g = gen::grid2d(20, 20, 0.0, 6);
        let seed = KernelConfig {
            direction: Direction::Pull,
            format: AsFormat::Bitmap,
            lb: LoadBalance::Twc,
            stepping: SteppingDelta::Remain,
            fusion: Fusion::Fused,
        };
        let app = Bfs::new(g.num_vertices(), 0);
        let opts = EngineOptions { mask: PatternMask::none(), ..Default::default() };
        let rep = run_with_seed_config(&g, &app, &AutoPolicy, &opts, Some(seed));
        // The mask pins every pattern to the baseline, seed or not.
        let c0 = rep.iterations[0].config;
        assert_eq!(c0.direction, Direction::Push);
        assert_eq!(c0.format, AsFormat::UnsortedQueue);
        assert_eq!(c0.lb, LoadBalance::Strict);
        assert_eq!(c0.fusion, Fusion::Standalone);
    }

    #[test]
    fn report_config_summaries() {
        let g = gen::erdos_renyi(400, 1_600, 11);
        let app = Bfs::new(400, 0);
        let rep = run(&g, &app, &AutoPolicy, &EngineOptions::default());
        let last = rep.iterations.last().unwrap().config;
        assert_eq!(rep.final_config(), Some(last));
        let dom = rep.dominant_config().unwrap();
        let dom_count = rep.iterations.iter().filter(|t| t.config == dom).count();
        for t in &rep.iterations {
            let c = rep.iterations.iter().filter(|u| u.config == t.config).count();
            assert!(c <= dom_count);
        }
        assert_eq!(RunReport::default().final_config(), None);
        assert_eq!(RunReport::default().dominant_config(), None);
    }

    #[test]
    fn probe_stops_run_mid_flight() {
        use crate::cancel::{ProbeHandle, RunProbe, StopReason};

        struct StopAt(u32);
        impl RunProbe for StopAt {
            fn check(&self, iteration: u32) -> Option<StopReason> {
                (iteration >= self.0).then_some(StopReason::DeadlineExceeded)
            }
        }

        let g = gen::grid2d(50, 50, 0.0, 4);
        let app = Bfs::new(g.num_vertices(), 0);
        let opts = EngineOptions {
            probe: ProbeHandle::new(std::sync::Arc::new(StopAt(2))),
            ..Default::default()
        };
        let rep = run(&g, &app, &AutoPolicy, &opts);
        assert_eq!(rep.stopped, Some(StopReason::DeadlineExceeded));
        assert!(!rep.converged);
        assert_eq!(rep.n_iterations(), 2, "stop lands before iteration 2 does work");
    }

    #[test]
    fn cancel_token_stops_before_first_iteration() {
        use crate::cancel::{CancelToken, ProbeHandle};

        let token = std::sync::Arc::new(CancelToken::new());
        token.cancel();
        let g = gen::grid2d(10, 10, 0.0, 4);
        let app = Bfs::new(g.num_vertices(), 0);
        let opts = EngineOptions { probe: ProbeHandle::new(token), ..Default::default() };
        let rep = run(&g, &app, &AutoPolicy, &opts);
        assert_eq!(rep.stopped, Some(crate::cancel::StopReason::Cancelled));
        assert_eq!(rep.n_iterations(), 0);
        // The app was never advanced: every vertex but the source is
        // untouched.
        assert_eq!(app.level.load(1), u32::MAX);
    }

    #[test]
    fn unprobed_run_reports_no_stop() {
        let g = gen::grid2d(10, 10, 0.0, 4);
        let app = Bfs::new(g.num_vertices(), 0);
        let rep = run(&g, &app, &AutoPolicy, &EngineOptions::default());
        assert!(rep.converged);
        assert_eq!(rep.stopped, None);
    }

    #[test]
    fn sentinel_on_healthy_run_checks_without_mismatch() {
        let g = gen::erdos_renyi(400, 1_600, 21);
        let expected = bfs_reference(&g, 0);
        let app = Bfs::new(400, 0);
        let opts = EngineOptions::default().verify_every(1);
        let rep = run(&g, &app, &AutoPolicy, &opts);
        assert!(rep.converged);
        assert_eq!(app.level.to_vec(), expected);
        assert!(rep.sentinel.checks > 0, "sentinel never engaged");
        assert_eq!(rep.sentinel.mismatches, 0);
        assert_eq!(rep.sentinel.pinned_at, None);
    }

    #[test]
    fn sentinel_off_by_default() {
        let g = gen::grid2d(10, 10, 0.0, 4);
        let app = Bfs::new(g.num_vertices(), 0);
        let rep = run(&g, &app, &AutoPolicy, &EngineOptions::default());
        assert_eq!(rep.sentinel, SentinelReport::default());
    }

    #[test]
    fn sentinel_cadence_skips_iterations() {
        // Long-diameter grid with fusion masked off: every super-step is
        // standalone, so every-5 must check far less often than every-1
        // (each scheduled iteration performs the frontier check and, for
        // BFS, the value check).
        let g = gen::grid2d(30, 30, 0.0, 7);
        let every = |n: u32| {
            let app = Bfs::new(g.num_vertices(), 0);
            let opts = EngineOptions {
                mask: PatternMask::up_to(3),
                ..EngineOptions::default().verify_every(n)
            };
            run(&g, &app, &AutoPolicy, &opts).sentinel.checks
        };
        let dense = every(1);
        let sparse = every(5);
        assert!(sparse < dense, "every-5 ({sparse}) should check less than every-1 ({dense})");
        assert!(sparse > 0);
    }

    #[test]
    fn value_sweep_finds_and_repairs_missed_work() {
        // Path 0→1→2. Pretend iteration 0's expand lost the 0→1 update:
        // vertex 0 is Active, vertex 1 still unvisited. The sweep must
        // both report the miss and repair it.
        let g = GraphBuilder::new(3).symmetric(false).edges([(0, 1), (1, 2)]).build();
        let app = Bfs::new(3, 0);
        let status = vec![Status::Active as u8, Status::Inactive as u8, Status::Inactive as u8];
        let repairs = sentinel_value_sweep(&g, &app, &status);
        assert_eq!(repairs, 1);
        assert_eq!(app.level.load(1), 1, "sweep repaired the dropped update");
        // A second sweep finds nothing: the state is consistent now.
        assert_eq!(sentinel_value_sweep(&g, &app, &status), 0);
    }

    #[test]
    fn expected_frontier_mirrors_materialize() {
        let g = gen::erdos_renyi(200, 800, 3);
        let app = Bfs::new(200, 0);
        let spec = DeviceSpec::default();
        let co = classify(&g, &app, &spec);
        for dir in [Direction::Push, Direction::Pull] {
            let expected = sentinel_expected_frontier::<Bfs>(g.num_vertices(), &co.status, dir);
            let (f, _) = materialize::<Bfs>(&g, &co.status, dir, AsFormat::Bitmap, &spec);
            assert_eq!(f.to_vec(), expected, "{dir:?}");
        }
    }

    #[test]
    fn max_iterations_bound_reports_non_convergence() {
        let g = gen::grid2d(50, 50, 0.0, 4);
        let app = Bfs::new(g.num_vertices(), 0);
        let opts = EngineOptions { max_iterations: 3, ..Default::default() };
        let rep = run(&g, &app, &AutoPolicy, &opts);
        assert!(!rep.converged);
        assert_eq!(rep.n_iterations(), 3);
    }
}
