//! The GSWITCH autotuning engine (Fig. 10).
//!
//! Per super-step the engine runs the paper's three stages:
//!
//! * **Inspector** (host) — checks convergence and assembles the 21-entry
//!   feature vector of Table 1 from the dataset attributes, the runtime
//!   characteristics of the last Filter/Expand, and historical timing.
//! * **Selector** (host) — a [`Policy`] maps the features to a
//!   [`KernelConfig`]: one candidate per pattern, decided in the order
//!   P1 → P3 → P2 → P4 → P5 (§4.5). The production policy is
//!   [`ModelPolicy`] (five CART trees trained offline); [`AutoPolicy`]
//!   ships the hand-derived fallback rules; [`StaticPolicy`] pins a
//!   configuration (that is what the baselines do).
//! * **Executor** (device) — runs the chosen Filter/Expand variants from
//!   `gswitch-kernels` on the simulated GPU and feeds the measured runtime
//!   characteristics back.
//!
//! [`oracle`] adds the offline half: brute-force labelling of every
//! iteration for the feature database (§4.4).

#![warn(missing_docs)]

pub mod cancel;
pub mod engine;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod features;
pub mod oracle;
pub mod policy;
pub mod sharded;

pub use cancel::{CancelToken, ProbeHandle, RunProbe, StopReason};
pub use engine::{
    run, run_with_seed_config, EngineOptions, IterationTrace, PatternMask, RunReport,
    SentinelReport,
};
pub use features::DecisionContext;
pub use policy::{
    AppCaps, AutoPolicy, ModelEnvelope, ModelLoadReport, ModelPolicy, Policy, StaticPolicy,
    MODEL_SCHEMA_VERSION,
};
pub use sharded::{run_sharded, ShardError, ShardedOptions, ShardedRunReport, SuperStep};

// Observability handles callers need to request a decision trace
// (`EngineOptions.recorder`); the full registry/summary API lives in
// `gswitch-obs`.
pub use gswitch_obs::{
    Provenance, Recorder, RecorderHandle, SpanCollector, SpanCtx, SpanKind, SpanRecord, SpanRing,
    TraceEvent, TraceRing,
};

// The user programming API re-exported at the crate root: implementing
// `GraphApp` (the paper's filter/emit/comp/compAtomic quartet) is all a
// user writes.
pub use gswitch_kernels::pattern::{
    AsFormat, Direction, Fusion, KernelConfig, LoadBalance, SteppingDelta,
};
pub use gswitch_kernels::{EdgeApp as GraphApp, Status};

/// A boxed policy, for APIs that store heterogeneous policies.
pub type BoxedPolicy = Box<dyn Policy>;
