//! Shard-worker fault-injection tests for the partitioned driver
//! (`--features fault-injection`). Arming is process-global, so this
//! suite lives in its own integration-test binary and each test
//! serializes behind `GUARD` and resets fault state on entry.
//!
//! The property under test: a shard worker that dies (panic) or whose
//! result is lost (drop) at the exchange step surfaces as a structured
//! [`ShardError`] — the driver never hangs and never returns a corrupt
//! "converged" report.

#![cfg(feature = "fault-injection")]

use gswitch_core::{faults, run_sharded, AutoPolicy, GraphApp, ShardError, ShardedOptions, Status};
use gswitch_graph::shard::ShardedCsr;
use gswitch_graph::{gen, Graph, VertexId};
use gswitch_kernels::atomics::AtomicArray;
use gswitch_obs::sync::Lock;

static GUARD: Lock<()> = Lock::new(());

/// Minimal BFS app (mirrors the engine's unit-test app).
struct Bfs {
    level: AtomicArray<u32>,
    current: std::sync::atomic::AtomicU32,
}

impl Bfs {
    fn new(n: usize, src: VertexId) -> Self {
        let b = Bfs {
            level: AtomicArray::filled(n, u32::MAX),
            current: std::sync::atomic::AtomicU32::new(0),
        };
        b.level.store(src, 0);
        b
    }
}

impl GraphApp for Bfs {
    type Msg = u32;
    const PULL_EARLY_EXIT: bool = true;
    fn filter(&self, v: VertexId) -> Status {
        let l = self.level.load(v);
        let cur = self.current.load(std::sync::atomic::Ordering::Relaxed);
        if l == cur {
            Status::Active
        } else if l == u32::MAX {
            Status::Inactive
        } else {
            Status::Fixed
        }
    }
    fn emit(&self, u: VertexId, _w: u32) -> u32 {
        self.level.load(u) + 1
    }
    fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
        self.level.fetch_min(dst, msg) > msg
    }
    fn comp(&self, dst: VertexId, msg: u32) -> bool {
        if msg < self.level.load(dst) {
            self.level.store(dst, msg);
            true
        } else {
            false
        }
    }
    fn advance(&self, it: u32) {
        self.current.store(it, std::sync::atomic::Ordering::Relaxed);
    }
    fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
        self.level.load(dst) == msg
    }
}

fn corpus_graph() -> Graph {
    gen::erdos_renyi(400, 2_000, 7)
}

#[test]
fn panicking_shard_worker_yields_structured_error() {
    let _g = GUARD.lock();
    faults::reset();
    let g = corpus_graph();
    let sharded = ShardedCsr::partition(&g, 4).expect("partition");
    let app = Bfs::new(g.num_vertices(), 0);
    faults::arm_shard_panic(2);
    let err = run_sharded(&sharded, &app, &AutoPolicy, &ShardedOptions::default())
        .expect_err("armed panic must abort the run");
    let fired = faults::shard_fired();
    faults::reset();
    assert!(fired >= 1, "the armed panic never fired");
    match err {
        ShardError::WorkerPanicked { shard, phase, message } => {
            assert_eq!(shard, 2);
            assert_eq!(phase, "exchange");
            assert!(message.contains("injected fault"), "payload lost: {message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

#[test]
fn dropped_shard_result_yields_worker_lost() {
    let _g = GUARD.lock();
    faults::reset();
    let g = corpus_graph();
    let sharded = ShardedCsr::partition(&g, 4).expect("partition");
    let app = Bfs::new(g.num_vertices(), 0);
    faults::arm_shard_drop(1);
    let err = run_sharded(&sharded, &app, &AutoPolicy, &ShardedOptions::default())
        .expect_err("armed drop must abort the run");
    let fired = faults::shard_fired();
    faults::reset();
    assert!(fired >= 1, "the armed drop never fired");
    assert_eq!(err, ShardError::WorkerLost { shard: 1, phase: "exchange" });
}

#[test]
fn run_recovers_cleanly_after_fault_reset() {
    let _g = GUARD.lock();
    faults::reset();
    let g = corpus_graph();
    let sharded = ShardedCsr::partition(&g, 4).expect("partition");

    // First run dies on the injected panic...
    let app = Bfs::new(g.num_vertices(), 0);
    faults::arm_shard_panic(0);
    let err = run_sharded(&sharded, &app, &AutoPolicy, &ShardedOptions::default());
    assert!(err.is_err());
    faults::reset();

    // ...and a fresh run on the same partition completes and matches
    // the serial reference — the fault left no residue.
    let app = Bfs::new(g.num_vertices(), 0);
    let rep = run_sharded(&sharded, &app, &AutoPolicy, &ShardedOptions::default())
        .expect("disarmed run must complete");
    assert!(rep.converged);
    let mut dist = vec![u32::MAX; g.num_vertices()];
    dist[0] = 0;
    let mut q = std::collections::VecDeque::from([0u32]);
    while let Some(u) = q.pop_front() {
        for &v in g.out_csr().neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    assert_eq!(app.level.to_vec(), dist);
}
