//! Divergence-sentinel integration tests, driven by the core fault
//! hooks (`--features fault-injection`). The armed fault is
//! process-global, so this suite lives in its own integration-test
//! binary — its process contains nothing but these tests — and each
//! test serializes behind `GUARD` and resets the fault state on entry.

#![cfg(feature = "fault-injection")]

use gswitch_core::{faults, run, EngineOptions, GraphApp, KernelConfig, StaticPolicy, Status};
use gswitch_graph::{gen, Graph, GraphBuilder, VertexId};
use gswitch_kernels::atomics::AtomicArray;
use gswitch_kernels::pattern::AsFormat;
use gswitch_obs::sync::Lock;

static GUARD: Lock<()> = Lock::new(());

/// Minimal BFS app (mirrors the engine's unit-test app).
struct Bfs {
    level: AtomicArray<u32>,
    current: std::sync::atomic::AtomicU32,
}

impl Bfs {
    fn new(n: usize, src: VertexId) -> Self {
        let b = Bfs {
            level: AtomicArray::filled(n, u32::MAX),
            current: std::sync::atomic::AtomicU32::new(0),
        };
        b.level.store(src, 0);
        b
    }
}

impl GraphApp for Bfs {
    type Msg = u32;
    const PULL_EARLY_EXIT: bool = true;
    fn filter(&self, v: VertexId) -> Status {
        let l = self.level.load(v);
        let cur = self.current.load(std::sync::atomic::Ordering::Relaxed);
        if l == cur {
            Status::Active
        } else if l == u32::MAX {
            Status::Inactive
        } else {
            Status::Fixed
        }
    }
    fn emit(&self, u: VertexId, _w: u32) -> u32 {
        self.level.load(u) + 1
    }
    fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
        self.level.fetch_min(dst, msg) > msg
    }
    fn comp(&self, dst: VertexId, msg: u32) -> bool {
        if msg < self.level.load(dst) {
            self.level.store(dst, msg);
            true
        } else {
            false
        }
    }
    fn advance(&self, it: u32) {
        self.current.store(it, std::sync::atomic::Ordering::Relaxed);
    }
    fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
        self.level.load(dst) == msg
    }
}

fn bfs_reference(g: &Graph, src: VertexId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_vertices()];
    dist[src as usize] = 0;
    let mut q = std::collections::VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &v in g.out_csr().neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// A tuned (non-reference) shape, so the injected fault applies to it.
fn buggy_variant() -> StaticPolicy {
    StaticPolicy::new(KernelConfig {
        format: AsFormat::SortedQueue,
        ..KernelConfig::push_baseline()
    })
}

fn path_graph(n: usize) -> Graph {
    GraphBuilder::new(n).edges((0..n as VertexId - 1).map(|i| (i, i + 1))).build()
}

#[test]
fn injected_fault_without_sentinel_corrupts_the_answer() {
    let _g = GUARD.lock();
    faults::reset();
    let g = path_graph(16);
    let app = Bfs::new(16, 0);
    faults::arm_frontier_corruption();
    let rep = run(&g, &app, &buggy_variant(), &EngineOptions::default());
    faults::reset();
    // The path frontier is a single vertex; losing it ends the traversal
    // immediately. The run "converges" — to the wrong answer.
    assert!(rep.converged);
    assert_eq!(rep.sentinel.mismatches, 0, "sentinel was off");
    assert_eq!(app.level.load(15), u32::MAX, "fault silently truncated the traversal");
}

#[test]
fn sentinel_detects_the_fault_and_recovers_the_exact_answer() {
    let _g = GUARD.lock();
    faults::reset();
    let g = path_graph(16);
    let expected = bfs_reference(&g, 0);
    let app = Bfs::new(16, 0);
    let before = gswitch_obs::hardening::snapshot();
    faults::arm_frontier_corruption();
    let rep = run(&g, &app, &buggy_variant(), &EngineOptions::default().verify_every(1));
    let fired = faults::fired();
    faults::reset();
    assert!(fired >= 1, "the fault never actually fired");
    // Detection on the very first corrupted iteration, in-place repair,
    // and a pinned reference run to the exact BFS levels.
    assert!(rep.converged);
    assert!(rep.sentinel.mismatches >= 1);
    assert_eq!(rep.sentinel.pinned_at, Some(0));
    assert_eq!(app.level.to_vec(), expected);
    let after = gswitch_obs::hardening::snapshot();
    assert!(after.sentinel_mismatch > before.sentinel_mismatch);
}

#[test]
fn sentinel_detects_within_the_configured_cadence() {
    let _g = GUARD.lock();
    faults::reset();
    let g = gen::erdos_renyi(300, 2_400, 13);
    let app = Bfs::new(300, 0);
    // Multiple sources keep the traversal alive through the lost entry,
    // so the fault damages the run without ending it before the first
    // scheduled check.
    for s in [1, 2, 3] {
        app.level.store(s, 0);
    }
    faults::arm_frontier_corruption();
    let rep = run(&g, &app, &buggy_variant(), &EngineOptions::default().verify_every(2));
    faults::reset();
    assert!(rep.converged);
    // The fault corrupts every tuned materialization, so the first
    // scheduled check (the second standalone super-step) must catch it.
    assert_eq!(rep.sentinel.pinned_at, Some(1));
    // From the pin onward the reference shape runs fault-free: every
    // vertex the reference traversal reaches is reached here too.
    let expected = bfs_reference(&g, 0);
    for (v, (&got, &want)) in app.level.to_vec().iter().zip(&expected).enumerate() {
        if want != u32::MAX {
            assert_ne!(got, u32::MAX, "vertex {v} lost to the pre-pin fault");
        }
    }
}

#[test]
fn pinned_run_reports_sentinel_provenance() {
    let _g = GUARD.lock();
    faults::reset();
    let g = path_graph(12);
    let app = Bfs::new(12, 0);
    let ring = std::sync::Arc::new(gswitch_obs::TraceRing::new(64));
    let recorder = gswitch_core::RecorderHandle::new(ring.recorder(1, "path", "bfs"));
    faults::arm_frontier_corruption();
    let opts = EngineOptions { recorder, ..EngineOptions::default().verify_every(1) };
    let rep = run(&g, &app, &buggy_variant(), &opts);
    faults::reset();
    assert!(rep.sentinel.pinned_at.is_some());
    let events = ring.snapshot();
    assert!(
        events.iter().any(|e| e.event.provenance == gswitch_core::Provenance::Sentinel),
        "no Sentinel-provenance trace event was recorded"
    );
}

#[test]
fn reference_shape_is_exempt_from_the_fault() {
    let _g = GUARD.lock();
    faults::reset();
    let g = path_graph(10);
    let expected = bfs_reference(&g, 0);
    let app = Bfs::new(10, 0);
    faults::arm_frontier_corruption();
    // AutoPolicy on a path picks push baseline shapes; wherever it picks
    // exactly the reference config the fault must not apply. Run the
    // reference statically to prove the exemption end to end.
    let rep =
        run(&g, &app, &StaticPolicy::new(KernelConfig::push_baseline()), &EngineOptions::default());
    faults::reset();
    assert!(rep.converged);
    assert_eq!(app.level.to_vec(), expected, "reference run must be untouched");
}
