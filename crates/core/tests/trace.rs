//! Engine ↔ observability integration: a BFS run with a recorder
//! attached emits exactly one trace event per iteration, with sane ids,
//! predictions and measurements, and the JSONL export survives a
//! summary round-trip.

use gswitch_core::{run, AutoPolicy, EngineOptions, RecorderHandle, Status};
use gswitch_graph::{gen, VertexId};
use gswitch_kernels::atomics::AtomicArray;
use gswitch_kernels::EdgeApp;
use gswitch_obs::{parse_jsonl, summarize, Provenance, TraceRing};
use std::sync::Arc;

struct Bfs {
    level: AtomicArray<u32>,
    current: std::sync::atomic::AtomicU32,
}

impl Bfs {
    fn new(n: usize, src: VertexId) -> Self {
        let b = Bfs {
            level: AtomicArray::filled(n, u32::MAX),
            current: std::sync::atomic::AtomicU32::new(0),
        };
        b.level.store(src, 0);
        b
    }
}

impl EdgeApp for Bfs {
    type Msg = u32;
    const PULL_EARLY_EXIT: bool = true;
    fn filter(&self, v: VertexId) -> Status {
        let l = self.level.load(v);
        if l == self.current.load(std::sync::atomic::Ordering::Relaxed) {
            Status::Active
        } else if l == u32::MAX {
            Status::Inactive
        } else {
            Status::Fixed
        }
    }
    fn emit(&self, u: VertexId, _w: u32) -> u32 {
        self.level.load(u) + 1
    }
    fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
        self.level.fetch_min(dst, msg) > msg
    }
    fn comp(&self, dst: VertexId, msg: u32) -> bool {
        if msg < self.level.load(dst) {
            self.level.store(dst, msg);
            true
        } else {
            false
        }
    }
    fn advance(&self, it: u32) {
        self.current.store(it, std::sync::atomic::Ordering::Relaxed);
    }
    fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
        self.level.load(dst) == msg
    }
}

#[test]
fn bfs_run_emits_one_event_per_iteration() {
    let g = gen::kronecker(10, 8, 42);
    let n = g.num_vertices();
    let ring = Arc::new(TraceRing::new(4096));
    let opts = EngineOptions {
        recorder: RecorderHandle::new(ring.recorder(7, "rmat-10", "bfs")),
        ..Default::default()
    };
    let app = Bfs::new(n, 0);
    let rep = run(&g, &app, &AutoPolicy, &opts);
    assert!(rep.converged);
    assert!(rep.n_iterations() > 1, "want a multi-iteration run");

    let events = ring.snapshot();
    assert_eq!(events.len(), rep.n_iterations(), "one event per iteration");
    assert_eq!(ring.dropped(), 0);

    for (i, (ev, it)) in events.iter().zip(&rep.iterations).enumerate() {
        let e = &ev.event;
        // Monotone 0-based iteration ids, in emit order.
        assert_eq!(e.iteration, i as u32);
        assert_eq!(e.iteration, it.iteration);
        // The event mirrors the engine's own trace.
        assert_eq!(e.config, it.config);
        assert_eq!(e.measured_ms, it.expand_ms);
        assert_eq!(e.filter_ms, it.filter_ms);
        assert_eq!(e.edges_touched, it.edges_touched);
        assert_eq!(e.features, it.features);
        assert!(e.measured_ms > 0.0, "iteration {i} measured nothing");
        // Iteration 0 has no history, so no prediction; afterwards the
        // Inspector always carries one.
        if i == 0 {
            assert_eq!(e.predicted_ms, 0.0);
            assert_eq!(e.provenance, Provenance::Decided);
        } else {
            assert!(e.predicted_ms > 0.0, "iteration {i} lost its prediction");
        }
        // Labels stamped by the ring recorder.
        assert_eq!(ev.job, 7);
        assert_eq!(ev.graph, "rmat-10");
        assert_eq!(ev.algo, "bfs");
        assert_eq!(ev.seq, i as u64);
    }

    // Provenance agrees with the report's decision accounting.
    let decided = events.iter().filter(|ev| ev.event.provenance == Provenance::Decided).count();
    assert_eq!(decided, rep.decisions_made());

    // JSONL export → parse → summary round-trip.
    let parsed = parse_jsonl(&ring.to_jsonl());
    assert!(parsed.errors.is_empty(), "bad lines: {:?}", parsed.errors);
    assert_eq!(parsed.events, events);
    let s = summarize(&parsed.events);
    assert_eq!(s.events, rep.n_iterations());
    assert_eq!(s.jobs, 1);
    assert!(s.predicted_events as usize == rep.n_iterations() - 1);
}

#[test]
fn disabled_recorder_records_nothing() {
    let g = gen::kronecker(8, 8, 1);
    let app = Bfs::new(g.num_vertices(), 0);
    let opts = EngineOptions::default();
    assert!(!opts.recorder.is_enabled());
    let rep = run(&g, &app, &AutoPolicy, &opts);
    assert!(rep.converged);
}

#[test]
fn warm_start_provenance_reaches_the_trace() {
    let g = gen::kronecker(9, 8, 3);
    let n = g.num_vertices();
    let cold = Bfs::new(n, 0);
    let rep = run(&g, &cold, &AutoPolicy, &EngineOptions::default());
    let tuned = rep.dominant_config().expect("cold run iterated");

    let ring = Arc::new(TraceRing::new(1024));
    let opts = EngineOptions {
        recorder: RecorderHandle::new(ring.recorder(1, "rmat-9", "bfs")),
        ..Default::default()
    };
    let warm = Bfs::new(n, 0);
    gswitch_core::run_with_seed_config(&g, &warm, &AutoPolicy, &opts, Some(tuned));
    let events = ring.snapshot();
    assert_eq!(events[0].event.provenance, Provenance::WarmStart);
    assert_eq!(events[0].event.config, tuned);
}
