//! Breadth-First Search on the GSWITCH API — the Fig. 11 example app.

use gswitch_core::{run, EngineOptions, GraphApp, Policy, RunReport, Status};
use gswitch_graph::{Graph, VertexId, Weight};
use gswitch_kernels::atomics::AtomicArray;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

/// The BFS application: per-vertex levels, level-synchronous expansion.
/// Mirrors the paper's Fig. 11 four functions exactly.
#[derive(Debug)]
pub struct Bfs {
    level: AtomicArray<u32>,
    current: AtomicU32,
}

impl Bfs {
    /// A BFS instance over `n` vertices rooted at `src`.
    pub fn new(n: usize, src: VertexId) -> Self {
        let b = Bfs { level: AtomicArray::filled(n, u32::MAX), current: AtomicU32::new(0) };
        b.level.store(src, 0);
        b
    }

    /// Snapshot the level array (`u32::MAX` = unreachable).
    pub fn levels(&self) -> Vec<u32> {
        self.level.to_vec()
    }
}

impl GraphApp for Bfs {
    type Msg = u32;
    const PULL_EARLY_EXIT: bool = true; // any current-level parent is enough
    const DUP_TOLERANT: bool = true; // atomicMin is idempotent

    fn filter(&self, v: VertexId) -> Status {
        let l = self.level.load(v);
        let cur = self.current.load(Relaxed);
        if l == cur {
            Status::Active
        } else if l == u32::MAX {
            Status::Inactive
        } else {
            Status::Fixed
        }
    }

    fn emit(&self, u: VertexId, _w: Weight) -> u32 {
        self.level.load(u) + 1
    }

    fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
        self.level.fetch_min(dst, msg) > msg
    }

    fn comp(&self, dst: VertexId, msg: u32) -> bool {
        if msg < self.level.load(dst) {
            self.level.store(dst, msg);
            true
        } else {
            false
        }
    }

    fn advance(&self, iteration: u32) {
        self.current.store(iteration, Relaxed);
    }

    fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
        self.level.load(dst) == msg
    }
}

/// Result of a BFS run.
#[derive(Debug)]
pub struct BfsResult {
    /// Per-vertex levels (`u32::MAX` = unreachable).
    pub levels: Vec<u32>,
    /// The engine trace.
    pub report: RunReport,
}

/// Run BFS from `src` under `policy`.
pub fn bfs(g: &Graph, src: VertexId, policy: &dyn Policy, opts: &EngineOptions) -> BfsResult {
    let app = Bfs::new(g.num_vertices(), src);
    let report = run(g, &app, policy, opts);
    BfsResult { levels: app.levels(), report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gswitch_core::{AutoPolicy, KernelConfig, StaticPolicy};
    use gswitch_graph::gen;

    #[test]
    fn matches_reference_on_varied_topologies() {
        let graphs = [
            gen::erdos_renyi(400, 1600, 1),
            gen::barabasi_albert(400, 3, 2),
            gen::grid2d(20, 20, 0.05, 3),
            gen::star(200),
            gen::banded(300, 8, 0.1, 4),
        ];
        for g in &graphs {
            let r = bfs(g, 0, &AutoPolicy, &EngineOptions::default());
            assert!(r.report.converged);
            assert_eq!(r.levels, reference::bfs(g, 0), "{}", g.name());
        }
    }

    #[test]
    fn every_shape_agrees() {
        let g = gen::kronecker(8, 8, 5);
        let expected = reference::bfs(&g, 0);
        for cfg in KernelConfig::all_shapes() {
            let r = bfs(&g, 0, &StaticPolicy::new(cfg), &EngineOptions::default());
            assert_eq!(r.levels, expected, "{cfg}");
        }
    }

    #[test]
    fn source_choice_respected() {
        let g = gen::grid2d(10, 10, 0.0, 6);
        let r = bfs(&g, 55, &AutoPolicy, &EngineOptions::default());
        assert_eq!(r.levels[55], 0);
        assert_eq!(r.levels, reference::bfs(&g, 55));
    }
}
