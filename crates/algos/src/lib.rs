//! The paper's five benchmark applications (§2.1) implemented on the
//! GSWITCH 4-function API, each in ~50 lines of app code — the
//! productivity claim of §4.2 — plus sequential CPU references used by
//! the test suite to verify every kernel variant bit-for-bit (or within
//! float tolerance for PageRank).
//!
//! | Benchmark | Module | Paper reference |
//! |---|---|---|
//! | Breadth-First Search | [`bfs`] | direction-optimizing BFS \[7\] |
//! | Connected Components | [`cc`] | label propagation (cf. Soman \[53\]) |
//! | PageRank | [`pr`] | delta-PageRank \[19\] |
//! | Single-Source Shortest Path | [`sssp`] | dynamic stepping (§3 P4), Bellman-Ford, Δ-stepping \[42\] |
//! | Betweenness Centrality | [`bc`] | Brandes on GPUs \[47\] |

#![warn(missing_docs)]

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod kcore;
pub mod pr;
pub mod reference;
pub mod sssp;

pub use bc::Bc;
pub use bfs::Bfs;
pub use cc::Cc;
pub use kcore::KCore;
pub use pr::PageRank;
pub use sssp::{BellmanFord, DeltaStepping, Sssp};
