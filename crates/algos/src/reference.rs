//! Sequential reference implementations.
//!
//! These are the ground truth the test suite checks every kernel variant
//! against. They are deliberately the plainest possible algorithms —
//! textbook BFS/Dijkstra/Brandes/union-find/power-iteration — so a bug in
//! the parallel kernels cannot hide behind a twin bug here.

use gswitch_graph::{Graph, VertexId};
use std::collections::VecDeque;

/// BFS levels from `src`; unreachable vertices get `u32::MAX`.
pub fn bfs(g: &Graph, src: VertexId) -> Vec<u32> {
    let mut level = vec![u32::MAX; g.num_vertices()];
    level[src as usize] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &v in g.out_csr().neighbors(u) {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    level
}

/// Connected-component labels: each vertex gets the smallest vertex id in
/// its (weakly) connected component.
pub fn cc(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    for s in 0..n as VertexId {
        if label[s as usize] != u32::MAX {
            continue;
        }
        // BFS flood from the smallest unvisited id: everything reached
        // gets `s`, which is minimal for the component by scan order.
        label[s as usize] = s;
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &v in g.out_csr().neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = s;
                    q.push_back(v);
                }
            }
            // Weak connectivity on directed graphs: also traverse in-edges.
            if !g.is_symmetric() {
                for &v in g.in_csr().neighbors(u) {
                    if label[v as usize] == u32::MAX {
                        label[v as usize] = s;
                        q.push_back(v);
                    }
                }
            }
        }
    }
    label
}

/// Shortest-path distances from `src` by Dijkstra; unreachable vertices
/// get `u32::MAX`. Uses the graph's weights (1 when unweighted).
pub fn sssp(g: &Graph, src: VertexId) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    dist[src as usize] = 0;
    let mut heap = BinaryHeap::from([Reverse((0u32, src))]);
    let csr = g.out_csr();
    let ws = g.out_weights();
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        let r = csr.edge_range(u);
        for (i, &v) in csr.neighbors(u).iter().enumerate() {
            let w = ws.map(|w| w[r.start + i]).unwrap_or(1);
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// PageRank by damped power iteration until the L1 delta falls below
/// `tol`: the fixed point of `pr_v = (1−α)/n + α Σ_{u→v} pr_u / deg_u`.
/// Dangling (zero-out-degree) mass is dropped, matching the
/// delta-PageRank formulation the paper's PR benchmark uses — on graphs
/// without isolated vertices the scores sum to 1.
pub fn pagerank(g: &Graph, alpha: f64, tol: f64, max_iter: usize) -> Vec<f64> {
    let n = g.num_vertices();
    assert!(n > 0);
    let csr = g.out_csr();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..max_iter {
        next.fill((1.0 - alpha) / n as f64);
        for u in 0..n as VertexId {
            let d = csr.degree(u);
            if d == 0 {
                continue; // dangling mass is dropped
            }
            let share = alpha * rank[u as usize] / d as f64;
            for &v in csr.neighbors(u) {
                next[v as usize] += share;
            }
        }
        let l1: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if l1 < tol {
            break;
        }
    }
    rank
}

/// Single-source betweenness dependencies (Brandes): for the given
/// source, `delta[v]` = Σ_{t} σ_{s,t}(v)/σ_{s,t}. This is the quantity a
/// single-source BC kernel accumulates into the centrality array.
pub fn bc(g: &Graph, src: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![i64::MAX; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    sigma[src as usize] = 1.0;
    dist[src as usize] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        order.push(u);
        for &v in g.out_csr().neighbors(u) {
            let (vi, ui) = (v as usize, u as usize);
            if dist[vi] == i64::MAX {
                dist[vi] = dist[ui] + 1;
                q.push_back(v);
            }
            if dist[vi] == dist[ui] + 1 {
                sigma[vi] += sigma[ui];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &u in order.iter().rev() {
        let ui = u as usize;
        for &v in g.out_csr().neighbors(u) {
            let vi = v as usize;
            if dist[vi] == dist[ui] + 1 && sigma[vi] > 0.0 {
                delta[ui] += sigma[ui] / sigma[vi] * (1.0 + delta[vi]);
            }
        }
    }
    delta[src as usize] = 0.0;
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_graph::{gen, GraphBuilder};

    #[test]
    fn bfs_on_path() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(&g, 3), vec![3, 2, 1, 0]);
    }

    #[test]
    fn cc_labels_by_min_id() {
        let g = GraphBuilder::new(5).edges([(0, 1), (3, 4)]).build();
        assert_eq!(cc(&g), vec![0, 0, 2, 3, 3]);
    }

    #[test]
    fn sssp_prefers_light_detour() {
        // 0->2 direct costs 10; 0->1->2 costs 3.
        let g = GraphBuilder::new(3).weighted_edges([(0, 2, 10), (0, 1, 1), (1, 2, 2)]).build();
        assert_eq!(sssp(&g, 0), vec![0, 1, 3]);
    }

    #[test]
    fn sssp_unweighted_equals_bfs() {
        let g = gen::erdos_renyi(200, 800, 3);
        let b = bfs(&g, 0);
        let s = sssp(&g, 0);
        assert_eq!(b, s);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_highest() {
        let g = gen::star(50);
        let pr = pagerank(&g, 0.85, 1e-10, 200);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        assert!(pr[0] > pr[1] * 5.0, "hub should dominate");
    }

    #[test]
    fn bc_path_center_is_highest() {
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build();
        let d = bc(&g, 0);
        // From source 0, vertex 1 lies on paths to 2,3,4 -> delta 3; etc.
        assert_eq!(d, vec![0.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn bc_counts_multiple_shortest_paths() {
        // Diamond: 0->{1,2}->3; sigma(3)=2; delta(1)=delta(2)=0.5.
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build();
        let d = bc(&g, 0);
        assert!((d[1] - 0.5).abs() < 1e-12);
        assert!((d[2] - 0.5).abs() < 1e-12);
        assert_eq!(d[0], 0.0);
    }
}
