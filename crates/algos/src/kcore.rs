//! k-core decomposition by parallel peeling — a sixth application
//! demonstrating the API's generality beyond the paper's five benchmarks.
//!
//! The k-core of a graph is the maximal subgraph in which every vertex
//! has degree ≥ k. Peeling maps directly onto Filter-Expand: a vertex
//! whose residual degree has dropped below `k` becomes *active*, is
//! peeled in `prepare`, and its Expand decrements every neighbor's
//! residual degree — possibly activating them for the next super-step.
//! The active set starts sparse and travels in waves, so the autotuner's
//! format/load-balance choices matter just as they do for traversal.

use gswitch_core::{run, EngineOptions, GraphApp, Policy, RunReport, Status};
use gswitch_graph::{Graph, VertexId, Weight};
use gswitch_kernels::atomics::AtomicArray;

/// Vertex states for the peeling automaton, packed into the degree array:
/// alive vertices hold their residual degree; peeled vertices hold
/// `PEELED`.
const PEELED: u32 = u32::MAX;

/// The k-core peeling application.
#[derive(Debug)]
pub struct KCore {
    /// Residual degree, or `PEELED`.
    degree: AtomicArray<u32>,
    k: u32,
}

impl KCore {
    /// Prepare a peel of `g` down to its `k`-core.
    pub fn new(g: &Graph, k: u32) -> Self {
        let kc = KCore { degree: AtomicArray::filled(g.num_vertices(), 0), k };
        for v in 0..g.num_vertices() as VertexId {
            kc.degree.store(v, g.out_degree(v));
        }
        kc
    }

    /// Membership mask after the run: `true` = in the k-core.
    pub fn membership(&self) -> Vec<bool> {
        (0..self.degree.len() as VertexId).map(|v| self.degree.load(v) != PEELED).collect()
    }
}

impl GraphApp for KCore {
    type Msg = u32;
    const PULL_EARLY_EXIT: bool = false; // every peeled neighbor counts
    const DUP_TOLERANT: bool = false; // decrements are not idempotent

    fn filter(&self, v: VertexId) -> Status {
        let d = self.degree.load(v);
        if d == PEELED {
            Status::Fixed
        } else if d < self.k {
            Status::Active // below threshold: peel this round
        } else {
            Status::Inactive
        }
    }

    fn prepare(&self, v: VertexId) {
        self.degree.store(v, PEELED);
    }

    fn emit(&self, _u: VertexId, _w: Weight) -> u32 {
        1 // one lost neighbor
    }

    fn comp_atomic(&self, dst: VertexId, loss: u32) -> bool {
        // Saturating decrement that never touches peeled vertices.
        loop {
            let cur = self.degree.load(dst);
            if cur == PEELED {
                return false;
            }
            let next = cur.saturating_sub(loss);
            if self.degree.compare_set(dst, cur, next) {
                // Activation = crossing the threshold just now.
                return cur >= self.k && next < self.k;
            }
        }
    }

    fn comp(&self, dst: VertexId, loss: u32) -> bool {
        let cur = self.degree.load(dst);
        if cur == PEELED {
            return false;
        }
        let next = cur.saturating_sub(loss);
        self.degree.store(dst, next);
        cur >= self.k && next < self.k
    }
}

/// Result of a k-core run.
#[derive(Debug)]
pub struct KCoreResult {
    /// Per-vertex membership in the k-core.
    pub in_core: Vec<bool>,
    /// The engine trace.
    pub report: RunReport,
}

/// Peel `g` to its `k`-core under `policy`.
pub fn kcore(g: &Graph, k: u32, policy: &dyn Policy, opts: &EngineOptions) -> KCoreResult {
    let app = KCore::new(g, k);
    let report = run(g, &app, policy, opts);
    KCoreResult { in_core: app.membership(), report }
}

/// Sequential reference: classic iterative peeling.
pub fn kcore_reference(g: &Graph, k: u32) -> Vec<bool> {
    let n = g.num_vertices();
    let mut deg: Vec<i64> = (0..n as VertexId).map(|v| g.out_degree(v) as i64).collect();
    let mut alive = vec![true; n];
    loop {
        let mut peeled_any = false;
        for v in 0..n {
            if alive[v] && deg[v] < k as i64 {
                alive[v] = false;
                peeled_any = true;
                for &u in g.out_csr().neighbors(v as VertexId) {
                    deg[u as usize] -= 1;
                }
            }
        }
        if !peeled_any {
            return alive;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_core::{AutoPolicy, KernelConfig, StaticPolicy};
    use gswitch_graph::{gen, GraphBuilder};

    #[test]
    fn triangle_survives_2core_tail_does_not() {
        // Triangle {0,1,2} with a tail 2-3-4.
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).build();
        let r = kcore(&g, 2, &AutoPolicy, &EngineOptions::default());
        assert!(r.report.converged);
        assert_eq!(r.in_core, vec![true, true, true, false, false]);
        assert_eq!(r.in_core, kcore_reference(&g, 2));
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::erdos_renyi(400, 1_200, seed);
            for k in [2, 3, 5] {
                let r = kcore(&g, k, &AutoPolicy, &EngineOptions::default());
                assert_eq!(r.in_core, kcore_reference(&g, k), "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn every_shape_agrees() {
        let g = gen::barabasi_albert(300, 3, 7);
        let want = kcore_reference(&g, 3);
        for cfg in KernelConfig::all_shapes() {
            let r = kcore(&g, 3, &StaticPolicy::new(cfg), &EngineOptions::default());
            assert_eq!(r.in_core, want, "{cfg}");
        }
    }

    #[test]
    fn k0_keeps_everything_huge_k_empties() {
        let g = gen::grid2d(10, 10, 0.0, 1);
        let all = kcore(&g, 1, &AutoPolicy, &EngineOptions::default());
        assert!(all.in_core.iter().all(|&b| b));
        let none = kcore(&g, 100, &AutoPolicy, &EngineOptions::default());
        assert!(none.in_core.iter().all(|&b| !b));
    }

    #[test]
    fn peeling_cascades() {
        // A path peels from both ends inward under k=2: everything goes.
        let g = GraphBuilder::new(6).edges((0..5u32).map(|i| (i, i + 1))).build();
        let r = kcore(&g, 2, &AutoPolicy, &EngineOptions::default());
        assert!(r.in_core.iter().all(|&b| !b));
        // The cascade takes several waves, one per peel layer.
        assert!(r.report.n_iterations() >= 3);
    }
}
