//! Connected Components by parallel label propagation.
//!
//! Every vertex starts labelled with its own id and repeatedly adopts the
//! minimum label among its neighbors; at convergence each (weak)
//! component carries its minimum vertex id. This is the data-driven
//! formulation the GSWITCH paper benchmarks (its GPUCC baseline is
//! Soman's hooking/pointer-jumping variant, implemented in
//! `gswitch-baselines`).

use gswitch_core::{run, EngineOptions, GraphApp, Policy, RunReport, Status};
use gswitch_graph::{Graph, VertexId, Weight};
use gswitch_kernels::atomics::AtomicArray;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

/// The CC application.
#[derive(Debug)]
pub struct Cc {
    label: AtomicArray<u32>,
    /// Epoch tag: a vertex is active in iteration `i` iff its label
    /// changed in iteration `i - 1`, encoded as `changed_at == i`.
    changed_at: AtomicArray<u32>,
    current: AtomicU32,
}

impl Cc {
    /// CC over `n` vertices.
    pub fn new(n: usize) -> Self {
        let c = Cc {
            label: AtomicArray::filled(n, 0),
            changed_at: AtomicArray::filled(n, 0),
            current: AtomicU32::new(0),
        };
        for v in 0..n as VertexId {
            c.label.store(v, v);
        }
        c
    }

    /// Snapshot the component labels.
    pub fn labels(&self) -> Vec<u32> {
        self.label.to_vec()
    }

    fn mark_changed(&self, v: VertexId) {
        // Activate for the next iteration.
        let next = self.current.load(Relaxed) + 1;
        self.changed_at.store(v, next);
    }
}

impl GraphApp for Cc {
    type Msg = u32;
    const PULL_EARLY_EXIT: bool = false; // must take the min over all parents
    const DUP_TOLERANT: bool = true; // min is idempotent

    fn filter(&self, v: VertexId) -> Status {
        if self.changed_at.load(v) == self.current.load(Relaxed) {
            Status::Active
        } else {
            Status::Inactive
        }
    }

    fn emit(&self, u: VertexId, _w: Weight) -> u32 {
        self.label.load(u)
    }

    fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
        if self.label.fetch_min(dst, msg) > msg {
            self.mark_changed(dst);
            true
        } else {
            false
        }
    }

    fn comp(&self, dst: VertexId, msg: u32) -> bool {
        if msg < self.label.load(dst) {
            self.label.store(dst, msg);
            self.mark_changed(dst);
            true
        } else {
            false
        }
    }

    fn advance(&self, iteration: u32) {
        self.current.store(iteration, Relaxed);
    }

    fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
        self.label.load(dst) == msg
    }

    fn pull_receives(status: Status) -> bool {
        // Labels may improve at any time: everyone gathers.
        !matches!(status, Status::Fixed)
    }
}

/// Result of a CC run.
#[derive(Debug)]
pub struct CcResult {
    /// Per-vertex component labels (minimum vertex id in the component).
    pub labels: Vec<u32>,
    /// The engine trace.
    pub report: RunReport,
}

/// Run connected components under `policy`.
pub fn cc(g: &Graph, policy: &dyn Policy, opts: &EngineOptions) -> CcResult {
    let app = Cc::new(g.num_vertices());
    let report = run(g, &app, policy, opts);
    CcResult { labels: app.labels(), report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gswitch_core::{AutoPolicy, KernelConfig, StaticPolicy};
    use gswitch_graph::{gen, GraphBuilder};

    #[test]
    fn labels_components_with_min_id() {
        let g = GraphBuilder::new(6).edges([(0, 1), (1, 2), (4, 5)]).build();
        let r = cc(&g, &AutoPolicy, &EngineOptions::default());
        assert!(r.report.converged);
        assert_eq!(r.labels, vec![0, 0, 0, 3, 4, 4]);
        assert_eq!(r.labels, reference::cc(&g));
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..4 {
            // Sparse ER graphs have many components.
            let g = gen::erdos_renyi(300, 250, seed);
            let r = cc(&g, &AutoPolicy, &EngineOptions::default());
            assert_eq!(r.labels, reference::cc(&g), "seed {seed}");
        }
    }

    #[test]
    fn every_shape_agrees() {
        let g = gen::erdos_renyi(256, 300, 9);
        let expected = reference::cc(&g);
        for cfg in KernelConfig::all_shapes() {
            let r = cc(&g, &StaticPolicy::new(cfg), &EngineOptions::default());
            assert_eq!(r.labels, expected, "{cfg}");
        }
    }

    #[test]
    fn singleton_vertices_keep_own_label() {
        let g = GraphBuilder::new(3).edges([(0, 1)]).build();
        let r = cc(&g, &AutoPolicy, &EngineOptions::default());
        assert_eq!(r.labels[2], 2);
    }
}
