//! Betweenness Centrality (Brandes) on the GSWITCH API.
//!
//! Single-source BC is two BSP phases, each its own GSWITCH app:
//!
//! 1. **Forward** — a BFS that also accumulates `σ` (shortest-path
//!    counts): a newly discovered vertex takes `level + 1` and sums the
//!    σ of all its current-level parents.
//! 2. **Backward** — dependency accumulation from the deepest level up:
//!    at backward step `k`, vertices at level `max_level − k` send
//!    `σ_u/σ_v (1 + δ_v)` to their level-`ℓ−1` predecessors.
//!
//! The paper's BC results (Table 3, Fig. 15) hinge on the generalized
//! direction optimization (P1) applying to both phases — exactly what
//! the GPUBC/Gunrock push-only baselines lack.

use gswitch_core::{run, EngineOptions, GraphApp, Policy, RunReport, Status};
use gswitch_graph::{Graph, VertexId, Weight};
use gswitch_kernels::atomics::AtomicArray;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

/// Forward phase: levels and shortest-path counts.
#[derive(Debug)]
pub struct BcForward {
    level: AtomicArray<u32>,
    sigma: AtomicArray<f64>,
    current: AtomicU32,
}

impl BcForward {
    /// Forward state rooted at `src`.
    pub fn new(n: usize, src: VertexId) -> Self {
        let f = BcForward {
            level: AtomicArray::filled(n, u32::MAX),
            sigma: AtomicArray::filled(n, 0.0),
            current: AtomicU32::new(0),
        };
        f.level.store(src, 0);
        f.sigma.store(src, 1.0);
        f
    }
}

impl GraphApp for BcForward {
    /// (candidate level, parent's σ).
    type Msg = (u32, f64);
    const PULL_EARLY_EXIT: bool = false; // σ needs *all* parents
    const DUP_TOLERANT: bool = false; // σ additions are not idempotent

    fn filter(&self, v: VertexId) -> Status {
        let l = self.level.load(v);
        let cur = self.current.load(Relaxed);
        if l == cur {
            Status::Active
        } else if l == u32::MAX {
            Status::Inactive
        } else {
            Status::Fixed
        }
    }

    fn emit(&self, u: VertexId, _w: Weight) -> (u32, f64) {
        (self.level.load(u) + 1, self.sigma.load(u))
    }

    fn comp_atomic(&self, dst: VertexId, (lvl, sig): (u32, f64)) -> bool {
        // Claim the level first (idempotent), then accumulate σ whenever
        // the level matches — every same-level parent contributes.
        let claimed = self.level.fetch_min(dst, lvl) > lvl;
        if self.level.load(dst) == lvl {
            self.sigma.fetch_add(dst, sig);
        }
        claimed
    }

    fn comp(&self, dst: VertexId, (lvl, sig): (u32, f64)) -> bool {
        let cur = self.level.load(dst);
        if lvl < cur {
            self.level.store(dst, lvl);
            self.sigma.store(dst, sig);
            true
        } else if lvl == cur {
            self.sigma.store(dst, self.sigma.load(dst) + sig);
            false
        } else {
            false
        }
    }

    fn advance(&self, iteration: u32) {
        self.current.store(iteration, Relaxed);
    }
}

/// Backward phase: dependency accumulation over frozen levels/σ.
#[derive(Debug)]
pub struct BcBackward {
    /// Levels from the forward phase (read-only here).
    level: Vec<u32>,
    /// σ from the forward phase (read-only here).
    sigma: Vec<f64>,
    delta: AtomicArray<f64>,
    max_level: u32,
    current: AtomicU32,
}

impl BcBackward {
    /// Build from a completed forward phase.
    pub fn new(fwd: &BcForward) -> Self {
        let level = fwd.level.to_vec();
        let sigma = fwd.sigma.to_vec();
        let max_level = level.iter().copied().filter(|&l| l != u32::MAX).max().unwrap_or(0);
        BcBackward {
            delta: AtomicArray::filled(level.len(), 0.0),
            level,
            sigma,
            max_level,
            current: AtomicU32::new(0),
        }
    }

    /// The level processed at backward iteration `iter` (negative = done).
    fn target(&self, iter: u32) -> i64 {
        self.max_level as i64 - iter as i64
    }

    /// Dependency scores after the run (source convention: 0).
    pub fn deltas(&self) -> Vec<f64> {
        self.delta.to_vec()
    }
}

impl GraphApp for BcBackward {
    /// (sender's level, sender's σ, sender's finalized δ).
    type Msg = (u32, f64, f64);
    const PULL_EARLY_EXIT: bool = false;
    const DUP_TOLERANT: bool = false;

    fn filter(&self, v: VertexId) -> Status {
        let l = self.level[v as usize];
        if l == u32::MAX {
            return Status::Fixed; // unreachable: never participates
        }
        let target = self.target(self.current.load(Relaxed));
        if target < 0 {
            Status::Fixed
        } else if l as i64 == target {
            Status::Active
        } else if (l as i64) < target {
            Status::Inactive // will be processed in a later backward step
        } else {
            Status::Fixed // deeper level: already processed
        }
    }

    fn emit(&self, u: VertexId, _w: Weight) -> (u32, f64, f64) {
        let ui = u as usize;
        (self.level[ui], self.sigma[ui], self.delta.load(u))
    }

    fn comp_atomic(&self, dst: VertexId, (lvl, sig, del): (u32, f64, f64)) -> bool {
        let di = dst as usize;
        // Only true predecessors (one level up the BFS tree) accumulate.
        if self.level[di] + 1 == lvl && sig > 0.0 {
            self.delta.fetch_add(dst, self.sigma[di] / sig * (1.0 + del));
        }
        false // activation is level-driven, not message-driven
    }

    fn comp(&self, dst: VertexId, msg: (u32, f64, f64)) -> bool {
        let di = dst as usize;
        if self.level[di] + 1 == msg.0 && msg.1 > 0.0 {
            let add = self.sigma[di] / msg.1 * (1.0 + msg.2);
            self.delta.store(dst, self.delta.load(dst) + add);
        }
        false
    }

    fn advance(&self, iteration: u32) {
        self.current.store(iteration, Relaxed);
    }
}

/// Betweenness-centrality entry points.
#[derive(Debug)]
pub struct Bc;

impl Bc {
    /// Single-source Brandes dependencies (see [`bc`]).
    pub fn single_source(
        g: &Graph,
        src: VertexId,
        policy: &dyn Policy,
        opts: &EngineOptions,
    ) -> BcResult {
        bc(g, src, policy, opts)
    }

    /// Exact or sampled full centrality (see [`bc_all`]).
    pub fn all_sources(
        g: &Graph,
        sources: impl IntoIterator<Item = VertexId>,
        policy: &dyn Policy,
        opts: &EngineOptions,
    ) -> (Vec<f64>, f64) {
        bc_all(g, sources, policy, opts)
    }
}

/// Result of a BC run.
#[derive(Debug)]
pub struct BcResult {
    /// Per-vertex dependency scores from this source (the addend a full
    /// BC would accumulate per source).
    pub scores: Vec<f64>,
    /// Forward-phase trace.
    pub forward: RunReport,
    /// Backward-phase trace.
    pub backward: RunReport,
}

impl BcResult {
    /// Combined simulated time (ms).
    pub fn total_ms(&self) -> f64 {
        self.forward.total_ms() + self.backward.total_ms()
    }

    /// Combined iteration count.
    pub fn n_iterations(&self) -> usize {
        self.forward.n_iterations() + self.backward.n_iterations()
    }
}

/// Full (multi-source) betweenness centrality over `sources`, summing the
/// per-source dependencies (exact BC when `sources` is every vertex;
/// Brandes-sampling approximation otherwise). Returns the centrality
/// vector and the total simulated time.
pub fn bc_all(
    g: &Graph,
    sources: impl IntoIterator<Item = VertexId>,
    policy: &dyn Policy,
    opts: &EngineOptions,
) -> (Vec<f64>, f64) {
    let mut centrality = vec![0.0f64; g.num_vertices()];
    let mut total_ms = 0.0;
    for src in sources {
        let r = bc(g, src, policy, opts);
        for (c, d) in centrality.iter_mut().zip(&r.scores) {
            *c += d;
        }
        total_ms += r.total_ms();
    }
    (centrality, total_ms)
}

/// Run single-source BC from `src` under `policy`.
pub fn bc(g: &Graph, src: VertexId, policy: &dyn Policy, opts: &EngineOptions) -> BcResult {
    let fwd = BcForward::new(g.num_vertices(), src);
    let forward = run(g, &fwd, policy, opts);
    let bwd = BcBackward::new(&fwd);
    let backward = run(g, &bwd, policy, opts);
    let mut scores = bwd.deltas();
    if let Some(s) = scores.get_mut(src as usize) {
        *s = 0.0; // Brandes convention: the source accumulates nothing
    }
    BcResult { scores, forward, backward }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gswitch_core::{AutoPolicy, KernelConfig, StaticPolicy};
    use gswitch_graph::{gen, GraphBuilder};

    fn assert_close(got: &[f64], want: &[f64], tag: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (a, b)) in got.iter().zip(want).enumerate() {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{tag}: delta[{i}] = {a} vs {b}");
        }
    }

    #[test]
    fn path_graph_dependencies() {
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build();
        let r = bc(&g, 0, &AutoPolicy, &EngineOptions::default());
        assert_eq!(r.scores, vec![0.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn diamond_splits_dependency() {
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build();
        let r = bc(&g, 0, &AutoPolicy, &EngineOptions::default());
        assert_close(&r.scores, &reference::bc(&g, 0), "diamond");
        assert!((r.scores[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matches_brandes_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(200, 700, seed);
            let r = bc(&g, 0, &AutoPolicy, &EngineOptions::default());
            assert_close(&r.scores, &reference::bc(&g, 0), &format!("seed {seed}"));
        }
    }

    #[test]
    fn every_standalone_shape_agrees() {
        let g = gen::barabasi_albert(150, 3, 6);
        let want = reference::bc(&g, 0);
        for cfg in KernelConfig::all_shapes() {
            // BC is not duplicate-tolerant: fused shapes get clamped to
            // standalone by the engine, so all 48 still agree.
            let r = bc(&g, 0, &StaticPolicy::new(cfg), &EngineOptions::default());
            assert_close(&r.scores, &want, &cfg.to_string());
        }
    }

    #[test]
    fn bc_all_matches_summed_brandes() {
        // Exact BC on an undirected path: the classic n-choose-2 pattern.
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build();
        let (cent, ms) = bc_all(&g, 0..5, &AutoPolicy, &EngineOptions::default());
        // For an undirected path a-b-c-d-e, vertex c lies on 2*(2x2)=8
        // directed shortest paths, b and d on 2*3=6.
        assert_eq!(cent, vec![0.0, 6.0, 8.0, 6.0, 0.0]);
        assert!(ms > 0.0);
    }

    #[test]
    fn bc_all_matches_reference_sum_on_random_graph() {
        let g = gen::erdos_renyi(60, 200, 3);
        let (cent, _) = bc_all(&g, 0..60, &AutoPolicy, &EngineOptions::default());
        let mut want = vec![0.0; 60];
        for s in 0..60u32 {
            for (w, d) in want.iter_mut().zip(reference::bc(&g, s)) {
                *w += d;
            }
        }
        for (i, (a, b)) in cent.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()), "v{i}: {a} vs {b}");
        }
    }

    #[test]
    fn unreachable_vertices_score_zero() {
        let g = GraphBuilder::new(4).edges([(0, 1), (2, 3)]).build();
        let r = bc(&g, 0, &AutoPolicy, &EngineOptions::default());
        assert_eq!(r.scores[2], 0.0);
        assert_eq!(r.scores[3], 0.0);
    }
}
