//! Delta-PageRank \[PowerGraph, 19\] on the GSWITCH API.
//!
//! Each vertex keeps an accumulated `rank` and an undistributed
//! `residual`. An active vertex (residual above threshold) consumes its
//! residual in `prepare` (the Filter's "Apply/Update"), then Expand
//! scatters `α · consumed / deg` to its neighbors (push) or lets every
//! vertex gather the shares of its active in-neighbors (pull). Compared
//! with full power iteration, only vertices with meaningful pending mass
//! do work — which is why the *format* (P2) and *direction* (P1)
//! decisions swing this benchmark (Figs. 3, 5).

use gswitch_core::{run, EngineOptions, GraphApp, Policy, RunReport, Status};
use gswitch_graph::{Graph, VertexId, Weight};
use gswitch_kernels::atomics::AtomicArray;

/// The delta-PageRank application.
#[derive(Debug)]
pub struct PageRank {
    rank: AtomicArray<f64>,
    residual: AtomicArray<f64>,
    consumed: AtomicArray<f64>,
    /// α/deg per vertex, precomputed (0 for dangling vertices).
    share: Vec<f64>,
    /// Per-vertex activation threshold on the residual.
    threshold: f64,
}

impl PageRank {
    /// Damping factor used throughout the paper's PR experiments.
    pub const ALPHA: f64 = 0.85;

    /// A PageRank instance on `g` with tolerance `tol` (total residual
    /// mass left unconsumed at convergence; the paper uses "the same
    /// terminal condition" across libraries — we use tol = 1e-3).
    pub fn new(g: &Graph, tol: f64) -> Self {
        let n = g.num_vertices();
        assert!(n > 0);
        let share = (0..n as VertexId)
            .map(|v| {
                let d = g.out_csr().degree(v);
                if d == 0 {
                    0.0
                } else {
                    Self::ALPHA / d as f64
                }
            })
            .collect();
        PageRank {
            rank: AtomicArray::filled(n, 0.0),
            residual: AtomicArray::filled(n, (1.0 - Self::ALPHA) / n as f64),
            consumed: AtomicArray::filled(n, 0.0),
            share,
            threshold: tol / n as f64,
        }
    }

    /// Final scores: accumulated rank plus any unconsumed residual.
    pub fn ranks(&self) -> Vec<f64> {
        (0..self.rank.len() as VertexId)
            .map(|v| self.rank.load(v) + self.residual.load(v))
            .collect()
    }
}

impl GraphApp for PageRank {
    type Msg = f64;
    const PULL_EARLY_EXIT: bool = false; // sums need every active parent
    const DUP_TOLERANT: bool = false; // consuming a residual twice double-counts

    fn filter(&self, v: VertexId) -> Status {
        if self.residual.load(v) > self.threshold {
            Status::Active
        } else {
            Status::Inactive
        }
    }

    fn prepare(&self, v: VertexId) {
        // Consume the pending mass: credit the rank, stage the emission.
        let r = self.residual.swap(v, 0.0);
        self.consumed.store(v, r);
        self.rank.store(v, self.rank.load(v) + r);
    }

    fn emit(&self, u: VertexId, _w: Weight) -> f64 {
        self.consumed.load(u) * self.share[u as usize]
    }

    fn comp_atomic(&self, dst: VertexId, msg: f64) -> bool {
        let old = self.residual.fetch_add(dst, msg);
        // "Activated" = the residual crossed the threshold just now.
        old <= self.threshold && old + msg > self.threshold
    }

    fn comp(&self, dst: VertexId, msg: f64) -> bool {
        let old = self.residual.load(dst);
        self.residual.store(dst, old + msg);
        old <= self.threshold && old + msg > self.threshold
    }

    fn pull_receives(_status: Status) -> bool {
        // Any vertex may accumulate fresh residual.
        true
    }
}

/// Result of a PageRank run.
#[derive(Debug)]
pub struct PrResult {
    /// Per-vertex PageRank scores.
    pub ranks: Vec<f64>,
    /// The engine trace.
    pub report: RunReport,
}

/// Run delta-PageRank to tolerance `tol` under `policy`.
pub fn pagerank(g: &Graph, tol: f64, policy: &dyn Policy, opts: &EngineOptions) -> PrResult {
    let app = PageRank::new(g, tol);
    let report = run(g, &app, policy, opts);
    PrResult { ranks: app.ranks(), report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gswitch_core::{AutoPolicy, Direction, KernelConfig, StaticPolicy};
    use gswitch_graph::gen;

    fn assert_close(got: &[f64], want: &[f64], tol: f64, tag: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (a, b)) in got.iter().zip(want).enumerate() {
            assert!((a - b).abs() < tol, "{tag}: rank[{i}] = {a}, reference {b}");
        }
    }

    #[test]
    fn matches_power_iteration_on_star() {
        let g = gen::star(64);
        let r = pagerank(&g, 1e-6, &AutoPolicy, &EngineOptions::default());
        assert!(r.report.converged);
        let want = reference::pagerank(&g, 0.85, 1e-12, 500);
        assert_close(&r.ranks, &want, 1e-5, "star");
        assert!(r.ranks[0] > r.ranks[1] * 5.0);
    }

    #[test]
    fn matches_power_iteration_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(300, 1_500, seed);
            let r = pagerank(&g, 1e-6, &AutoPolicy, &EngineOptions::default());
            let want = reference::pagerank(&g, 0.85, 1e-12, 500);
            assert_close(&r.ranks, &want, 1e-5, &format!("seed {seed}"));
        }
    }

    #[test]
    fn push_and_pull_agree() {
        let g = gen::barabasi_albert(400, 4, 7);
        let push = pagerank(
            &g,
            1e-6,
            &StaticPolicy::new(KernelConfig::push_baseline()),
            &EngineOptions::default(),
        );
        let pull_cfg = KernelConfig { direction: Direction::Pull, ..KernelConfig::push_baseline() };
        let pull = pagerank(&g, 1e-6, &StaticPolicy::new(pull_cfg), &EngineOptions::default());
        assert_close(&push.ranks, &pull.ranks, 1e-9, "push vs pull");
    }

    #[test]
    fn mass_is_conserved() {
        // No dangling vertices in a symmetrized ER graph with enough
        // edges: ranks must sum to 1.
        let g = gen::erdos_renyi(200, 2_000, 11);
        let r = pagerank(&g, 1e-7, &AutoPolicy, &EngineOptions::default());
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum = {sum}");
    }

    #[test]
    fn dense_workload_runs_bounded_iterations() {
        let g = gen::erdos_renyi(500, 4_000, 13);
        let r = pagerank(&g, 1e-3, &AutoPolicy, &EngineOptions::default());
        // Geometric residual decay: tens of iterations, not hundreds
        // (paper reports ~18-24 for its PR runs).
        assert!(
            (5..80).contains(&r.report.n_iterations()),
            "iterations = {}",
            r.report.n_iterations()
        );
    }
}
