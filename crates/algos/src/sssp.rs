//! Single-Source Shortest Paths: dynamic stepping (the paper's SSSP),
//! unordered Bellman-Ford (BF), and classic Δ-stepping — the three
//! variants compared in Fig. 8.
//!
//! All three share one state machine: tentative distances, a `pending`
//! set (vertices whose distance improved and still owe a relaxation),
//! and a priority threshold that admits only `dist ≤ threshold` into the
//! active set. They differ *only* in how the threshold moves:
//!
//! * **Bellman-Ford** — threshold = ∞: everything pending is active.
//!   Maximum parallelism, maximum wasted relaxations.
//! * **Δ-stepping** — fixed window; when the window drains, advance by Δ
//!   (the `rescue` hook).
//! * **Dynamic stepping** — the GSWITCH novelty (§3 P4): the window
//!   reacts to the measured edge-workload trend through
//!   `adjust_priority` (±35% rule or the trained P4 classifier).

use gswitch_core::{run, EngineOptions, GraphApp, Policy, RunReport, Status, SteppingDelta};
use gswitch_graph::{Graph, VertexId, Weight};
use gswitch_kernels::atomics::{AtomicArray, AtomicBitSet};
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

/// Shared SSSP state.
#[derive(Debug)]
struct SsspState {
    dist: AtomicArray<u32>,
    /// Vertices whose distance improved and have not been expanded since.
    pending: AtomicBitSet,
    /// Priority window: pending vertices with `dist ≤ threshold` are
    /// active.
    threshold: AtomicU32,
    /// Step size for threshold moves.
    step: u32,
}

impl SsspState {
    fn new(n: usize, src: VertexId, threshold: u32, step: u32) -> Self {
        let s = SsspState {
            dist: AtomicArray::filled(n, u32::MAX),
            pending: AtomicBitSet::new(n),
            threshold: AtomicU32::new(threshold),
            step,
        };
        s.dist.store(src, 0);
        s.pending.set(src);
        s
    }

    fn filter(&self, v: VertexId) -> Status {
        if self.pending.get(v) && self.dist.load(v) <= self.threshold.load(Relaxed) {
            Status::Active
        } else {
            Status::Inactive
        }
    }

    fn prepare(&self, v: VertexId) {
        // This pending relaxation is being serviced now.
        self.pending.unset(v);
    }

    fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
        if self.dist.fetch_min(dst, msg) > msg {
            self.pending.set(dst);
            true
        } else {
            false
        }
    }

    fn comp(&self, dst: VertexId, msg: u32) -> bool {
        if msg < self.dist.load(dst) {
            self.dist.store(dst, msg);
            self.pending.set(dst);
            true
        } else {
            false
        }
    }

    /// No pending vertex fits the window: advance the threshold past the
    /// cheapest pending distance (Δ-stepping's "next bucket"). Returns
    /// false when nothing is pending at all (true convergence).
    fn rescue(&self) -> bool {
        let mut min_pending = u32::MAX;
        for v in self.pending.to_sorted_vec() {
            min_pending = min_pending.min(self.dist.load(v));
        }
        if min_pending == u32::MAX {
            return false;
        }
        self.threshold.store(min_pending.saturating_add(self.step), Relaxed);
        true
    }
}

/// Estimate a sensible initial window from the graph: c·w̄·(m/n is the
/// degree; the paper's static reference uses cw̄/d from [13]).
fn default_step(g: &Graph) -> u32 {
    let avg_w = match g.out_weights() {
        Some(ws) if !ws.is_empty() => ws.iter().map(|&w| w as u64).sum::<u64>() / ws.len() as u64,
        _ => 1,
    };
    let d = (g.num_edges() as f64 / g.num_vertices().max(1) as f64).max(1.0);
    ((avg_w as f64 * 8.0 / d).ceil() as u32).max(1)
}

macro_rules! delegate_state {
    () => {
        type Msg = u32;
        const PULL_EARLY_EXIT: bool = false; // must take the min over all parents
        const DUP_TOLERANT: bool = true; // relaxations are monotonic
        const NEEDS_WEIGHTS: bool = true;

        fn filter(&self, v: VertexId) -> Status {
            self.state.filter(v)
        }
        fn prepare(&self, v: VertexId) {
            self.state.prepare(v);
        }
        fn emit(&self, u: VertexId, w: Weight) -> u32 {
            self.state.dist.load(u).saturating_add(w)
        }
        fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
            self.state.comp_atomic(dst, msg)
        }
        fn comp(&self, dst: VertexId, msg: u32) -> bool {
            self.state.comp(dst, msg)
        }
        fn would_tie(&self, dst: VertexId, msg: u32) -> bool {
            self.state.dist.load(dst) == msg
        }
        fn pull_receives(_status: Status) -> bool {
            // Any vertex's distance may still improve.
            true
        }
    };
}

/// The paper's SSSP: dynamic stepping (P4-driven window).
#[derive(Debug)]
pub struct Sssp {
    state: SsspState,
}

impl Sssp {
    /// Dynamic-stepping SSSP on `g` from `src`.
    pub fn new(g: &Graph, src: VertexId) -> Self {
        let step = default_step(g);
        Sssp { state: SsspState::new(g.num_vertices(), src, step, step) }
    }

    /// Snapshot distances (`u32::MAX` = unreachable).
    pub fn distances(&self) -> Vec<u32> {
        self.state.dist.to_vec()
    }
}

impl GraphApp for Sssp {
    delegate_state!();
    const PRIORITY_DRIVEN: bool = true;

    fn adjust_priority(&self, delta: SteppingDelta) {
        // Multiplicative window moves: workload trends are geometric
        // (frontier explosions multiply edge counts), so an additive step
        // cannot keep up — it degenerates to Bellman-Ford on skewed
        // graphs. Widen gently, narrow hard.
        let t = &self.state.threshold;
        let cur = t.load(Relaxed);
        match delta {
            SteppingDelta::Increase => {
                t.store(cur.saturating_add((cur / 2).max(self.state.step)), Relaxed);
            }
            SteppingDelta::Decrease => {
                t.store((cur / 2).max(1), Relaxed);
            }
            SteppingDelta::Remain => {}
        }
    }

    fn rescue(&self) -> bool {
        self.state.rescue()
    }
}

/// Unordered Bellman-Ford: every pending vertex relaxes every iteration.
#[derive(Debug)]
pub struct BellmanFord {
    state: SsspState,
}

impl BellmanFord {
    /// Bellman-Ford SSSP on `g` from `src`.
    pub fn new(g: &Graph, src: VertexId) -> Self {
        BellmanFord { state: SsspState::new(g.num_vertices(), src, u32::MAX, 1) }
    }

    /// Snapshot distances.
    pub fn distances(&self) -> Vec<u32> {
        self.state.dist.to_vec()
    }
}

impl GraphApp for BellmanFord {
    delegate_state!();
}

/// Classic Δ-stepping \[Meyer & Sanders 42\]: a fixed window advanced only
/// when it drains.
#[derive(Debug)]
pub struct DeltaStepping {
    state: SsspState,
}

impl DeltaStepping {
    /// Δ-stepping SSSP on `g` from `src` with window `delta`.
    pub fn new(g: &Graph, src: VertexId, delta: u32) -> Self {
        assert!(delta >= 1);
        DeltaStepping { state: SsspState::new(g.num_vertices(), src, delta, delta) }
    }

    /// Δ-stepping with the cw̄/d̄ default window of \[13\].
    pub fn with_default_delta(g: &Graph, src: VertexId) -> Self {
        Self::new(g, src, default_step(g))
    }

    /// Snapshot distances.
    pub fn distances(&self) -> Vec<u32> {
        self.state.dist.to_vec()
    }
}

impl GraphApp for DeltaStepping {
    delegate_state!();

    fn rescue(&self) -> bool {
        self.state.rescue()
    }
}

/// Result of an SSSP run.
#[derive(Debug)]
pub struct SsspResult {
    /// Tentative distances at convergence (`u32::MAX` = unreachable).
    pub distances: Vec<u32>,
    /// The engine trace.
    pub report: RunReport,
}

/// Run the paper's dynamic-stepping SSSP under `policy`.
pub fn sssp(g: &Graph, src: VertexId, policy: &dyn Policy, opts: &EngineOptions) -> SsspResult {
    let app = Sssp::new(g, src);
    let report = run(g, &app, policy, opts);
    SsspResult { distances: app.distances(), report }
}

/// Run unordered Bellman-Ford under `policy`.
pub fn bellman_ford(
    g: &Graph,
    src: VertexId,
    policy: &dyn Policy,
    opts: &EngineOptions,
) -> SsspResult {
    let app = BellmanFord::new(g, src);
    let report = run(g, &app, policy, opts);
    SsspResult { distances: app.distances(), report }
}

/// Run classic Δ-stepping under `policy`.
pub fn delta_stepping(
    g: &Graph,
    src: VertexId,
    policy: &dyn Policy,
    opts: &EngineOptions,
) -> SsspResult {
    let app = DeltaStepping::with_default_delta(g, src);
    let report = run(g, &app, policy, opts);
    SsspResult { distances: app.distances(), report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gswitch_core::{AutoPolicy, KernelConfig, StaticPolicy};
    use gswitch_graph::gen;

    fn weighted(seed: u64) -> Graph {
        gen::with_random_weights(&gen::erdos_renyi(300, 1_200, seed), 64, seed)
    }

    #[test]
    fn all_three_variants_match_dijkstra() {
        for seed in 0..3 {
            let g = weighted(seed);
            let want = reference::sssp(&g, 0);
            let opts = EngineOptions::default();
            assert_eq!(sssp(&g, 0, &AutoPolicy, &opts).distances, want, "dyn seed {seed}");
            assert_eq!(bellman_ford(&g, 0, &AutoPolicy, &opts).distances, want, "bf seed {seed}");
            assert_eq!(
                delta_stepping(&g, 0, &AutoPolicy, &opts).distances,
                want,
                "delta seed {seed}"
            );
        }
    }

    #[test]
    fn every_shape_agrees() {
        let g = gen::with_random_weights(&gen::kronecker(8, 6, 2), 32, 5);
        let want = reference::sssp(&g, 0);
        for cfg in KernelConfig::all_shapes() {
            let r = sssp(&g, 0, &StaticPolicy::new(cfg), &EngineOptions::default());
            assert_eq!(r.distances, want, "{cfg}");
        }
    }

    #[test]
    fn unweighted_sssp_equals_bfs() {
        let g = gen::grid2d(15, 15, 0.05, 8);
        let r = sssp(&g, 0, &AutoPolicy, &EngineOptions::default());
        assert_eq!(r.distances, reference::bfs(&g, 0));
    }

    #[test]
    fn ordered_variants_touch_fewer_edges_than_bf() {
        // Work-efficiency claim of Fig. 8: stepping reduces touched edges.
        let g = gen::with_random_weights(&gen::barabasi_albert(2_000, 6, 4), 64, 9);
        let opts = EngineOptions::default();
        let bf = bellman_ford(&g, 0, &AutoPolicy, &opts);
        let dyn_ = sssp(&g, 0, &AutoPolicy, &opts);
        assert_eq!(bf.distances, dyn_.distances);
        assert!(
            dyn_.report.edges_touched() < bf.report.edges_touched(),
            "dynamic {} vs bf {}",
            dyn_.report.edges_touched(),
            bf.report.edges_touched()
        );
    }

    #[test]
    fn disconnected_targets_stay_unreachable() {
        let g = gswitch_graph::GraphBuilder::new(4).weighted_edges([(0, 1, 3)]).build();
        let r = sssp(&g, 0, &AutoPolicy, &EngineOptions::default());
        assert_eq!(r.distances, vec![0, 3, u32::MAX, u32::MAX]);
    }
}
