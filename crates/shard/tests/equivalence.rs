//! K-shard vs single-shard equivalence over the representative corpus —
//! the acceptance gate of the partitioned path: batched sharded queries
//! must produce the *same answers* as the whole-graph engine.
//!
//! BFS and CC compute via `u32` atomic-min, which is order-independent,
//! so the comparison is exact equality. Delta-PageRank accumulates
//! `f64` residuals whose addition order differs between one device and
//! K concurrent shard workers, so its comparison is a tolerance well
//! below the convergence threshold (see DESIGN §4.11).

use gswitch_algos::{bfs, cc, pr};
use gswitch_core::{AutoPolicy, EngineOptions};
use gswitch_graph::corpus::representatives_small;
use gswitch_graph::Graph;
use gswitch_shard::{execute_batch, BatchOptions, BatchQuery, BatchResult, QueryStatus, ShardPlan};
use std::sync::Arc;

const PR_EPS: f64 = 1e-3;
/// f64 summation-order slack: far below `PR_EPS / n` for every corpus
/// graph, so a real divergence cannot hide inside it.
const PR_TOL: f64 = 1e-9;

fn corpus() -> Vec<Arc<Graph>> {
    representatives_small().into_iter().map(|r| Arc::new(r.recipe.build())).collect()
}

fn batch_result(plan: &ShardPlan, q: BatchQuery) -> BatchResult {
    let rep = execute_batch(plan, &[q], &BatchOptions::default());
    let out = &rep.outcomes[0];
    assert_eq!(out.status, QueryStatus::Ok, "{:?} on {}: {:?}", q, plan.graph().name(), out.error);
    assert!(out.converged, "{:?} on {} did not converge", q, plan.graph().name());
    out.result.clone().expect("ok outcome carries a result")
}

#[test]
fn bfs_identical_across_shard_counts_on_whole_corpus() {
    for g in corpus() {
        let expected = bfs::bfs(&g, 0, &AutoPolicy, &EngineOptions::default()).levels;
        for k in [2u32, 4] {
            let plan = ShardPlan::new(Arc::clone(&g), k).expect("partition");
            match batch_result(&plan, BatchQuery::Bfs { src: 0 }) {
                BatchResult::Levels(levels) => {
                    assert_eq!(levels, expected, "bfs k={k} diverged on {}", g.name());
                }
                other => panic!("bfs returned {other:?}"),
            }
        }
    }
}

#[test]
fn cc_identical_across_shard_counts_on_whole_corpus() {
    for g in corpus() {
        let expected = cc::cc(&g, &AutoPolicy, &EngineOptions::default()).labels;
        for k in [2u32, 4] {
            let plan = ShardPlan::new(Arc::clone(&g), k).expect("partition");
            match batch_result(&plan, BatchQuery::Cc) {
                BatchResult::Labels(labels) => {
                    assert_eq!(labels, expected, "cc k={k} diverged on {}", g.name());
                }
                other => panic!("cc returned {other:?}"),
            }
        }
    }
}

#[test]
fn pagerank_matches_within_summation_tolerance_on_whole_corpus() {
    for g in corpus() {
        let expected = pr::pagerank(&g, PR_EPS, &AutoPolicy, &EngineOptions::default()).ranks;
        let plan = ShardPlan::new(Arc::clone(&g), 4).expect("partition");
        match batch_result(&plan, BatchQuery::Pr { eps: PR_EPS }) {
            BatchResult::Ranks(ranks) => {
                assert_eq!(ranks.len(), expected.len());
                for (v, (a, b)) in ranks.iter().zip(&expected).enumerate() {
                    assert!(
                        (a - b).abs() < PR_TOL,
                        "pr diverged on {} at vertex {v}: {a} vs {b}",
                        g.name()
                    );
                }
            }
            other => panic!("pr returned {other:?}"),
        }
    }
}

#[test]
fn mixed_batch_on_a_representative_matches_sequential_answers() {
    let g = Arc::new(representatives_small()[0].recipe.build());
    let plan = ShardPlan::new(Arc::clone(&g), 4).expect("partition");
    let queries = [
        BatchQuery::Bfs { src: 0 },
        BatchQuery::Cc,
        BatchQuery::Bfs { src: 1 },
        BatchQuery::Cc,
        BatchQuery::Bfs { src: 2 },
    ];
    let rep = execute_batch(&plan, &queries, &BatchOptions::default());
    assert_eq!(rep.ok_count(), 5);
    for out in &rep.outcomes {
        let expected = match queries[out.index] {
            BatchQuery::Bfs { src } => BatchResult::Levels(
                bfs::bfs(&g, src, &AutoPolicy, &EngineOptions::default()).levels,
            ),
            BatchQuery::Cc => {
                BatchResult::Labels(cc::cc(&g, &AutoPolicy, &EngineOptions::default()).labels)
            }
            BatchQuery::Pr { .. } => unreachable!("no PR in this batch"),
        };
        assert_eq!(out.result.as_ref(), Some(&expected), "query {} diverged", out.index);
    }
    // Concurrent queries overlapped: occupancy is meaningful and > 0.
    assert!(rep.occupancy() > 0.0);
}
