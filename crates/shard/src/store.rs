//! Resident partitioned graphs, shared across queries.

use gswitch_graph::shard::ShardedCsr;
use gswitch_graph::Graph;
use gswitch_obs::sync::Lock;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One resident partitioning: the whole graph plus its K-shard form.
///
/// The whole graph stays alongside the shards because apps carry global
/// state sized to it (a PageRank instance needs every out-degree, not
/// one shard's), and because K=1 queries should not pay partition
/// overhead twice.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    graph: Arc<Graph>,
    sharded: Arc<ShardedCsr>,
}

impl ShardPlan {
    /// Partition `graph` into `k` shards.
    pub fn new(graph: Arc<Graph>, k: u32) -> Result<Self, String> {
        let sharded = Arc::new(ShardedCsr::partition(&graph, k)?);
        Ok(ShardPlan { graph, sharded })
    }

    /// The whole graph the shards were cut from.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The resident sharded form.
    pub fn sharded(&self) -> &Arc<ShardedCsr> {
        &self.sharded
    }

    /// Number of shards.
    pub fn k(&self) -> u32 {
        self.sharded.k()
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    plans: BTreeMap<(String, u32), Arc<ShardPlan>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<(String, u32)>,
}

/// A bounded cache of [`ShardPlan`]s keyed by `(graph name, K)`.
///
/// Partitioning is the expensive step this subsystem exists to amortize,
/// so plans are built once and shared by `Arc` with every query that
/// needs them. The cache is bounded (FIFO eviction) because each plan
/// duplicates the graph's CSR across shards; an evicted plan stays alive
/// as long as any in-flight batch still holds its `Arc`.
#[derive(Debug)]
pub struct ShardStore {
    inner: Lock<StoreInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardStore {
    /// A store retaining at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ShardStore {
            inner: Lock::new(StoreInner {
                plans: BTreeMap::new(),
                order: VecDeque::with_capacity(capacity.max(1)),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch the resident plan for `(graph.name(), k)`, partitioning and
    /// inserting it on miss. Errors propagate from the partitioner
    /// (`k == 0`) without poisoning the cache.
    pub fn get_or_partition(&self, graph: &Arc<Graph>, k: u32) -> Result<Arc<ShardPlan>, String> {
        let key = (graph.name().to_string(), k);
        if let Some(plan) = self.inner.lock().plans.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        // Partition outside the lock: cutting a large graph is the slow
        // path, and concurrent misses for the same key just race to
        // insert identical plans (the loser's work is dropped).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(ShardPlan::new(Arc::clone(graph), k)?);
        let mut inner = self.inner.lock();
        if !inner.plans.contains_key(&key) {
            while inner.plans.len() >= self.capacity {
                match inner.order.pop_front() {
                    Some(oldest) => {
                        inner.plans.remove(&oldest);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
            inner.order.push_back(key.clone());
            inner.plans.insert(key.clone(), Arc::clone(&plan));
        }
        match inner.plans.get(&key) {
            Some(winner) => Ok(Arc::clone(winner)),
            None => Ok(plan),
        }
    }

    /// Plans currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().plans.len()
    }

    /// Whether no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (each one paid a partitioning) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Plans evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The `(name, k)` keys currently resident, in eviction order.
    pub fn keys(&self) -> Vec<(String, u32)> {
        self.inner.lock().order.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_graph::gen;

    fn arc_graph(seed: u64) -> Arc<Graph> {
        Arc::new(gen::erdos_renyi(120, 480, seed).with_name(format!("er{seed}")))
    }

    #[test]
    fn hit_returns_the_same_plan() {
        let store = ShardStore::new(4);
        let g = arc_graph(1);
        let a = store.get_or_partition(&g, 2).expect("partition");
        let b = store.get_or_partition(&g, 2).expect("cached");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
    }

    #[test]
    fn different_k_is_a_different_plan() {
        let store = ShardStore::new(4);
        let g = arc_graph(2);
        let a = store.get_or_partition(&g, 2).expect("k=2");
        let b = store.get_or_partition(&g, 4).expect("k=4");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.k(), 2);
        assert_eq!(b.k(), 4);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let store = ShardStore::new(2);
        for seed in 0..3 {
            store.get_or_partition(&arc_graph(seed), 2).expect("partition");
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        let keys = store.keys();
        assert_eq!(keys, vec![("er1".to_string(), 2), ("er2".to_string(), 2)]);
    }

    #[test]
    fn partitioner_error_propagates_without_insert() {
        let store = ShardStore::new(2);
        let g = arc_graph(5);
        assert!(store.get_or_partition(&g, 0).is_err());
        assert!(store.is_empty());
    }
}
