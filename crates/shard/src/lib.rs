//! Partitioned execution + batched multi-query serving: the glue between
//! the sharded engine driver ([`gswitch_core::sharded`]) and a resident
//! service.
//!
//! The single-query runtime amortizes *tuning* across queries; this
//! crate additionally amortizes the **partitioning**: cutting a graph
//! into K shards (renumbering, halo tables, per-shard stats) costs more
//! than one traversal, so it only pays off when the sharded form stays
//! resident and many queries run against it — ideally at the same time,
//! since K shard workers give a single query at most K-way parallelism
//! but a *batch* keeps every worker busy across query boundaries.
//!
//! - [`store`] — [`ShardStore`]: a bounded cache of partitioned graphs
//!   keyed by (graph name, K), each entry an `Arc` shared by every
//!   in-flight query.
//! - [`batch`] — [`BatchQuery`]/[`execute_batch`]: run a set of
//!   concurrent queries against one resident [`ShardPlan`] on a
//!   panic-isolated worker pool, reporting per-query outcomes plus
//!   batch-level occupancy, exchange volume, and shard imbalance.
//! - [`quota`] — [`TenantQuotas`]: per-tenant in-flight admission
//!   caps with RAII release, so one tenant's burst cannot monopolize
//!   the batch slots.
//!
//! `gswitch-runtime` mounts all three behind the `gswitch-serve`
//! protocol (`--shards K`, the `batch` request); this crate stays
//! independent of the runtime so the partitioned path is testable
//! without a scheduler.

#![warn(missing_docs)]

pub mod batch;
pub mod quota;
pub mod store;

pub use batch::{
    execute_batch, BatchOptions, BatchOutcome, BatchQuery, BatchReport, BatchResult, QueryStatus,
};
pub use quota::{QuotaError, QuotaPermit, TenantQuotas};
pub use store::{ShardPlan, ShardStore};
