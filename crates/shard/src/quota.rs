//! Per-tenant admission quotas for batch serving.
//!
//! A resident shard plan invites abuse: batches are cheap to submit and
//! expensive to run, and one tenant's burst can occupy every worker
//! slot. [`TenantQuotas`] caps each tenant's *in-flight* queries; the
//! cap is enforced at admission and released by RAII ([`QuotaPermit`]),
//! so a panicking batch path can never leak a tenant's budget.

use gswitch_obs::sync::Lock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Admission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuotaError {
    /// The tenant is at its in-flight cap.
    Exhausted {
        /// The refused tenant.
        tenant: String,
        /// The cap that was hit.
        limit: usize,
    },
}

impl std::fmt::Display for QuotaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuotaError::Exhausted { tenant, limit } => {
                write!(f, "tenant {tenant:?} is at its in-flight quota ({limit})")
            }
        }
    }
}

impl std::error::Error for QuotaError {}

/// Per-tenant in-flight caps with RAII release.
#[derive(Debug)]
pub struct TenantQuotas {
    /// Max in-flight queries per tenant.
    limit: usize,
    /// Current in-flight count per tenant; entries are removed when a
    /// tenant drains to zero so the map stays bounded by live tenants.
    inflight: Lock<BTreeMap<String, usize>>,
    rejections: AtomicU64,
    admissions: AtomicU64,
}

impl TenantQuotas {
    /// Quotas allowing each tenant `limit` in-flight queries
    /// (minimum 1).
    pub fn new(limit: usize) -> Arc<Self> {
        Arc::new(TenantQuotas {
            limit: limit.max(1),
            inflight: Lock::new(BTreeMap::new()),
            rejections: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
        })
    }

    /// Admit `count` queries for `tenant`, or refuse without partial
    /// admission. The returned permit releases the whole count on drop.
    pub fn acquire(
        self: &Arc<Self>,
        tenant: &str,
        count: usize,
    ) -> Result<QuotaPermit, QuotaError> {
        self.acquire_capped(tenant, count, self.limit)
    }

    /// Like [`acquire`](Self::acquire) but against
    /// `min(limit, cap)` — degraded-mode (brownout) admission tightens
    /// the effective cap without rebuilding the quota table, and the
    /// tightened cap only refuses *new* admissions; permits already
    /// held release normally.
    pub fn acquire_capped(
        self: &Arc<Self>,
        tenant: &str,
        count: usize,
        cap: usize,
    ) -> Result<QuotaPermit, QuotaError> {
        let limit = self.limit.min(cap.max(1));
        let mut inflight = self.inflight.lock();
        let current = inflight.get(tenant).copied().unwrap_or(0);
        if current + count > limit {
            drop(inflight);
            self.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(QuotaError::Exhausted { tenant: tenant.to_string(), limit });
        }
        inflight.insert(tenant.to_string(), current + count);
        drop(inflight);
        self.admissions.fetch_add(count as u64, Ordering::Relaxed);
        Ok(QuotaPermit { quotas: Arc::clone(self), tenant: tenant.to_string(), count })
    }

    /// The per-tenant cap.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Queries currently in flight for `tenant`.
    pub fn inflight(&self, tenant: &str) -> usize {
        self.inflight.lock().get(tenant).copied().unwrap_or(0)
    }

    /// Admissions refused so far.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// Queries admitted so far.
    pub fn admissions(&self) -> u64 {
        self.admissions.load(Ordering::Relaxed)
    }

    fn release(&self, tenant: &str, count: usize) {
        let mut inflight = self.inflight.lock();
        if let Some(current) = inflight.get_mut(tenant) {
            *current = current.saturating_sub(count);
            if *current == 0 {
                inflight.remove(tenant);
            }
        }
    }
}

/// An admitted budget of in-flight queries; dropping it releases the
/// budget even if the batch path panicked.
#[derive(Debug)]
pub struct QuotaPermit {
    quotas: Arc<TenantQuotas>,
    tenant: String,
    count: usize,
}

impl QuotaPermit {
    /// Queries this permit admitted.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The tenant the permit belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}

impl Drop for QuotaPermit {
    fn drop(&mut self) {
        self.quotas.release(&self.tenant, self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_until_the_cap_then_refuse() {
        let q = TenantQuotas::new(3);
        let a = q.acquire("alice", 2).expect("first");
        assert_eq!(q.inflight("alice"), 2);
        let err = q.acquire("alice", 2).expect_err("over cap");
        assert_eq!(err, QuotaError::Exhausted { tenant: "alice".into(), limit: 3 });
        assert_eq!(q.rejections(), 1);
        // A different tenant has its own budget.
        let _b = q.acquire("bob", 3).expect("bob is fresh");
        drop(a);
        assert_eq!(q.inflight("alice"), 0);
        let _c = q.acquire("alice", 3).expect("released budget is reusable");
    }

    #[test]
    fn refusal_admits_nothing() {
        let q = TenantQuotas::new(2);
        assert!(q.acquire("t", 5).is_err());
        assert_eq!(q.inflight("t"), 0);
        assert_eq!(q.admissions(), 0);
    }

    #[test]
    fn permit_releases_on_panic_unwind() {
        let q = TenantQuotas::new(1);
        let res = std::panic::catch_unwind({
            let q = Arc::clone(&q);
            move || {
                let _p = q.acquire("t", 1).expect("admit");
                panic!("batch path died");
            }
        });
        assert!(res.is_err());
        assert_eq!(q.inflight("t"), 0, "permit leaked through the panic");
        assert!(q.acquire("t", 1).is_ok());
    }

    #[test]
    fn capped_acquire_tightens_without_touching_held_permits() {
        let q = TenantQuotas::new(8);
        let held = q.acquire("t", 4).expect("normal admission");
        // Under a cap of 4 the tenant is already full…
        assert!(q.acquire_capped("t", 1, 4).is_err());
        // …but the cap never exceeds the real limit either.
        assert!(q.acquire_capped("t", 5, 100).is_err());
        drop(held);
        let _p = q.acquire_capped("t", 4, 4).expect("released budget fits the cap");
    }

    #[test]
    fn drained_tenants_leave_the_map() {
        let q = TenantQuotas::new(2);
        {
            let _p = q.acquire("ghost", 1).expect("admit");
            assert_eq!(q.inflight.lock().len(), 1);
        }
        assert_eq!(q.inflight.lock().len(), 0, "zero-count entry retained");
    }
}
