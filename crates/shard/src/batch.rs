//! Batched multi-query execution against one resident [`ShardPlan`].
//!
//! A single sharded query gives at most K-way parallelism, and its
//! tail super-steps leave most shard workers idle. A *batch* runs many
//! queries concurrently over the same resident shards on a bounded
//! worker pool, so one query's idle tail overlaps another's dense
//! middle — the occupancy metric in [`BatchReport`] measures exactly
//! how well that overlap worked.

use crate::store::ShardPlan;
use gswitch_algos::{Cc, PageRank};
use gswitch_core::sharded::{run_sharded, ShardError, ShardedOptions, ShardedRunReport};
use gswitch_core::{AutoPolicy, RecorderHandle};
use gswitch_obs::{SpanCtx, SpanKind};
use gswitch_simt::DeviceSpec;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One query in a batch. A deliberate subset of the runtime's query
/// surface: the partitioned driver is push-only and rejects
/// priority-driven apps, so SSSP and BC stay on the single-shard path.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub enum BatchQuery {
    /// Breadth-first search from `src`.
    Bfs {
        /// Source vertex (global id).
        src: u32,
    },
    /// Delta-PageRank to tolerance `eps`.
    Pr {
        /// Convergence tolerance.
        eps: f64,
    },
    /// Connected components.
    Cc,
}

impl BatchQuery {
    /// Algorithm tag used in reports and metrics.
    pub fn algo(&self) -> &'static str {
        match self {
            BatchQuery::Bfs { .. } => "bfs",
            BatchQuery::Pr { .. } => "pr",
            BatchQuery::Cc => "cc",
        }
    }
}

/// Per-vertex results of one batch query.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchResult {
    /// BFS levels (`u32::MAX` = unreachable).
    Levels(Vec<u32>),
    /// PageRank scores.
    Ranks(Vec<f64>),
    /// CC labels (minimum vertex id per component).
    Labels(Vec<u32>),
}

/// Terminal status of one batch query, mirroring the runtime's
/// error/failure split: `Error` means the request was bad (retrying is
/// pointless), `Failed` means the infrastructure was (retrying may
/// succeed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum QueryStatus {
    /// Completed; `result` is populated.
    Ok,
    /// The request was invalid for this plan (bad source vertex).
    Error,
    /// A shard worker died or the query's own worker panicked.
    Failed,
}

/// Everything the batch executor reports about one query.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Position of this query in the submitted batch.
    pub index: usize,
    /// Algorithm tag.
    pub algo: &'static str,
    /// Terminal status.
    pub status: QueryStatus,
    /// Failure description when not `Ok`.
    pub error: Option<String>,
    /// Whether the sharded run converged.
    pub converged: bool,
    /// Super-steps executed.
    pub supersteps: u32,
    /// Total simulated time (critical path + exchange + host), ms.
    pub sim_ms: f64,
    /// Wall-clock execution time on the batch worker, ms.
    pub wall_ms: f64,
    /// Frontier-exchange records routed between shards.
    pub exchange_records: u64,
    /// Frontier-exchange bytes routed between shards.
    pub exchange_bytes: u64,
    /// Busiest-shard / average-shard busy time (1.0 = balanced).
    pub imbalance: f64,
    /// Per-vertex results when `Ok`.
    pub result: Option<BatchResult>,
}

/// Options for [`execute_batch`].
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// The simulated device each shard occupies.
    pub device: DeviceSpec,
    /// Concurrent query slots in the worker pool (minimum 1).
    pub slots: usize,
    /// Per-shard stability bypass inside each query's run.
    pub stability_bypass: bool,
    /// Decision-trace sink shared by every query in the batch.
    pub recorder: RecorderHandle,
    /// Span context for the batch: one `Batch` span covers the whole
    /// call, one `BatchQuery` span per query (tagged with its batch
    /// index as `iter`, worker = slot), and each query's sharded
    /// super-steps nest beneath it.
    pub spans: SpanCtx,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            device: DeviceSpec::default(),
            slots: 4,
            stability_bypass: true,
            recorder: RecorderHandle::none(),
            spans: SpanCtx::default(),
        }
    }
}

/// The result of one [`execute_batch`] call.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-query outcomes, in submission order.
    pub outcomes: Vec<BatchOutcome>,
    /// Wall-clock time for the whole batch, ms.
    pub wall_ms: f64,
    /// Summed per-query execution time, ms.
    pub busy_ms: f64,
    /// Worker slots the batch ran on.
    pub slots: usize,
}

impl BatchReport {
    /// Fraction of slot-time spent executing queries (0..=1): summed
    /// query time over `wall × slots`. Low occupancy means the batch
    /// was too small (or too skewed) for the pool.
    pub fn occupancy(&self) -> f64 {
        let denom = self.wall_ms * self.slots as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        (self.busy_ms / denom).min(1.0)
    }

    /// Queries that completed.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == QueryStatus::Ok).count()
    }

    /// Total exchange bytes routed across the batch.
    pub fn exchange_bytes(&self) -> u64 {
        self.outcomes.iter().map(|o| o.exchange_bytes).sum()
    }

    /// Total exchange records routed across the batch.
    pub fn exchange_records(&self) -> u64 {
        self.outcomes.iter().map(|o| o.exchange_records).sum()
    }

    /// Worst per-query shard imbalance observed.
    pub fn max_imbalance(&self) -> f64 {
        self.outcomes.iter().map(|o| o.imbalance).fold(0.0, f64::max)
    }

    /// Total simulated device time across the batch, ms.
    pub fn sim_ms(&self) -> f64 {
        self.outcomes.iter().map(|o| o.sim_ms).sum()
    }
}

fn outcome_shell(index: usize, algo: &'static str) -> BatchOutcome {
    BatchOutcome {
        index,
        algo,
        status: QueryStatus::Failed,
        error: None,
        converged: false,
        supersteps: 0,
        sim_ms: 0.0,
        wall_ms: 0.0,
        exchange_records: 0,
        exchange_bytes: 0,
        imbalance: 0.0,
        result: None,
    }
}

fn fill_from_report(out: &mut BatchOutcome, rep: &ShardedRunReport) {
    out.converged = rep.converged;
    out.supersteps = rep.n_supersteps() as u32;
    out.sim_ms = rep.total_ms();
    let total = rep.exchange_total();
    out.exchange_records = total.routed;
    out.exchange_bytes = total.bytes();
    out.imbalance = rep.imbalance();
}

fn run_one(
    plan: &ShardPlan,
    query: BatchQuery,
    index: usize,
    opts: &ShardedOptions,
) -> BatchOutcome {
    let mut out = outcome_shell(index, query.algo());
    let n = plan.graph().num_vertices();
    let result: Result<(ShardedRunReport, BatchResult), ShardError> = match query {
        BatchQuery::Bfs { src } => {
            if src as usize >= n {
                out.status = QueryStatus::Error;
                out.error = Some(format!("source {src} out of range (n = {n})"));
                return out;
            }
            let app = gswitch_algos::Bfs::new(n, src);
            run_sharded(plan.sharded(), &app, &AutoPolicy, opts)
                .map(|rep| (rep, BatchResult::Levels(app.levels())))
        }
        BatchQuery::Pr { eps } => {
            let app = PageRank::new(plan.graph(), eps);
            run_sharded(plan.sharded(), &app, &AutoPolicy, opts)
                .map(|rep| (rep, BatchResult::Ranks(app.ranks())))
        }
        BatchQuery::Cc => {
            let app = Cc::new(n);
            run_sharded(plan.sharded(), &app, &AutoPolicy, opts)
                .map(|rep| (rep, BatchResult::Labels(app.labels())))
        }
    };
    match result {
        Ok((rep, payload)) => {
            fill_from_report(&mut out, &rep);
            out.status = QueryStatus::Ok;
            out.result = Some(payload);
        }
        Err(e) => {
            out.status = match e {
                ShardError::Unsupported(_) => QueryStatus::Error,
                ShardError::WorkerPanicked { .. } | ShardError::WorkerLost { .. } => {
                    QueryStatus::Failed
                }
            };
            out.error = Some(e.to_string());
        }
    }
    out
}

/// Run `queries` concurrently against `plan` on a pool of
/// `opts.slots` workers.
///
/// Every query gets its own app instance and its own sharded run; the
/// shards themselves are shared read-only. A query whose worker panics
/// is reported as `Failed` with the panic payload — the rest of the
/// batch is unaffected. Outcomes come back in submission order.
pub fn execute_batch(plan: &ShardPlan, queries: &[BatchQuery], opts: &BatchOptions) -> BatchReport {
    let slots = opts.slots.max(1).min(queries.len().max(1));
    let sharded_opts = ShardedOptions {
        device: opts.device.clone(),
        stability_bypass: opts.stability_bypass,
        recorder: opts.recorder.clone(),
        ..ShardedOptions::default()
    };
    let next = AtomicUsize::new(0);
    let clock = opts.spans.clock().clone();
    // The Batch span covers the whole call; its guard lives on the
    // caller's thread and closes (recording the span) when we return.
    let driver = opts.spans.local();
    let batch_guard = driver.start(SpanKind::Batch, opts.spans.parent);
    let batch_id = batch_guard.id();
    let batch_start = clock.now_ns();
    let mut per_worker: Vec<Vec<BatchOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..slots)
            .map(|slot| {
                let next = &next;
                let sharded_opts = &sharded_opts;
                let clock = &clock;
                let sctx = &opts.spans;
                scope.spawn(move || {
                    let local = sctx.collector().local(slot as u32, sctx.job);
                    let mut mine = Vec::with_capacity(queries.len() / slots + 1);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let q = queries[i];
                        let t0 = clock.now_ns();
                        let qguard =
                            local.start_tagged(SpanKind::BatchQuery, batch_id, None, i as u32);
                        let qopts = ShardedOptions {
                            spans: sctx.child(qguard.id()).for_worker(slot as u32),
                            ..sharded_opts.clone()
                        };
                        let mut out =
                            match catch_unwind(AssertUnwindSafe(|| run_one(plan, q, i, &qopts))) {
                                Ok(out) => out,
                                Err(payload) => {
                                    let mut out = outcome_shell(i, q.algo());
                                    out.status = QueryStatus::Failed;
                                    out.error = Some(match payload.downcast_ref::<&str>() {
                                        Some(s) => (*s).to_string(),
                                        None => match payload.downcast_ref::<String>() {
                                            Some(s) => s.clone(),
                                            None => "opaque panic payload".to_string(),
                                        },
                                    });
                                    out
                                }
                            };
                        drop(qguard);
                        out.wall_ms = clock.elapsed_ms(t0);
                        mine.push(out);
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            // A worker that dies outside catch_unwind loses only the
            // queries it had claimed; they are reported lost below.
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall_ms = clock.elapsed_ms(batch_start);

    let mut outcomes: Vec<Option<BatchOutcome>> = (0..queries.len()).map(|_| None).collect();
    for worker in per_worker.drain(..) {
        for out in worker {
            let slot = out.index;
            outcomes[slot] = Some(out);
        }
    }
    let outcomes: Vec<BatchOutcome> = outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| match o {
            Some(o) => o,
            None => {
                let mut lost = outcome_shell(i, queries[i].algo());
                lost.error = Some("batch worker lost".to_string());
                lost
            }
        })
        .collect();
    let busy_ms = outcomes.iter().map(|o| o.wall_ms).sum();
    BatchReport { outcomes, wall_ms, busy_ms, slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_graph::gen;
    use std::sync::Arc;

    fn plan(k: u32) -> ShardPlan {
        let g = Arc::new(gen::erdos_renyi(300, 1_500, 17).with_name("er-batch"));
        ShardPlan::new(g, k).expect("partition")
    }

    #[test]
    fn batch_runs_all_queries_in_order() {
        let plan = plan(4);
        let queries = [
            BatchQuery::Bfs { src: 0 },
            BatchQuery::Cc,
            BatchQuery::Pr { eps: 1e-3 },
            BatchQuery::Bfs { src: 7 },
        ];
        let rep = execute_batch(&plan, &queries, &BatchOptions::default());
        assert_eq!(rep.outcomes.len(), 4);
        assert_eq!(rep.ok_count(), 4);
        for (i, out) in rep.outcomes.iter().enumerate() {
            assert_eq!(out.index, i);
            assert_eq!(out.status, QueryStatus::Ok, "query {i}: {:?}", out.error);
            assert!(out.converged);
            assert!(out.result.is_some());
            assert!(out.supersteps > 0);
        }
        assert_eq!(rep.outcomes[0].algo, "bfs");
        assert_eq!(rep.outcomes[1].algo, "cc");
        assert_eq!(rep.outcomes[2].algo, "pr");
        let occ = rep.occupancy();
        assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ}");
    }

    #[test]
    fn bad_source_is_an_error_not_a_failure() {
        let plan = plan(2);
        let queries = [BatchQuery::Bfs { src: 10_000 }, BatchQuery::Cc];
        let rep = execute_batch(&plan, &queries, &BatchOptions::default());
        assert_eq!(rep.outcomes[0].status, QueryStatus::Error);
        assert!(rep.outcomes[0].error.as_deref().is_some_and(|e| e.contains("out of range")));
        assert_eq!(rep.outcomes[1].status, QueryStatus::Ok);
        assert_eq!(rep.ok_count(), 1);
    }

    #[test]
    fn exchange_metrics_surface_in_the_report() {
        let plan = plan(4);
        let rep = execute_batch(&plan, &[BatchQuery::Bfs { src: 0 }], &BatchOptions::default());
        assert!(rep.exchange_records() > 0, "4-shard BFS must route halo records");
        assert!(rep.exchange_bytes() > 0);
        assert!(rep.max_imbalance() >= 1.0);
    }

    #[test]
    fn batch_emits_nested_query_spans() {
        use gswitch_obs::SpanRing;
        let plan = plan(3);
        let ring = Arc::new(SpanRing::new(16_384));
        let opts = BatchOptions {
            slots: 2,
            spans: SpanCtx::new(ring.collector(), 0, 0, 7),
            ..BatchOptions::default()
        };
        let queries = [BatchQuery::Bfs { src: 0 }, BatchQuery::Cc, BatchQuery::Pr { eps: 1e-3 }];
        let rep = execute_batch(&plan, &queries, &opts);
        assert_eq!(rep.ok_count(), 3);

        let spans = ring.snapshot();
        let batches: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Batch).collect();
        assert_eq!(batches.len(), 1, "one call, one batch span");
        let qspans: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::BatchQuery).collect();
        assert_eq!(qspans.len(), 3, "one span per query");
        let mut indices: Vec<u32> = qspans
            .iter()
            .map(|s| {
                assert_eq!(s.parent, batches[0].id);
                assert_eq!(s.job, 7);
                s.iter
            })
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2], "iter carries the batch index");
        // Each query's sharded super-steps nest under its BatchQuery
        // span, and the per-shard phases carry shard tags.
        let qids: std::collections::BTreeSet<u64> = qspans.iter().map(|s| s.id).collect();
        let steps: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::SuperStep).collect();
        assert!(!steps.is_empty());
        assert!(steps.iter().all(|s| qids.contains(&s.parent)));
        assert!(spans.iter().any(|s| s.kind == SpanKind::Inspect && s.shard.is_some()));
    }

    #[test]
    fn single_slot_batch_serializes_but_completes() {
        let plan = plan(2);
        let queries = [BatchQuery::Cc, BatchQuery::Cc, BatchQuery::Cc];
        let opts = BatchOptions { slots: 1, ..BatchOptions::default() };
        let rep = execute_batch(&plan, &queries, &opts);
        assert_eq!(rep.ok_count(), 3);
        assert_eq!(rep.slots, 1);
    }
}
