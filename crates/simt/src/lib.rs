//! Analytic SIMT execution-model simulator.
//!
//! The paper measures kernel variants on real Nvidia K40m and P100 GPUs. We
//! have no GPU, so `gswitch-kernels` runs every variant *for real* on the
//! CPU while counting the device-relevant work it performs — edges touched,
//! atomics issued, coalesced vs. random memory words, binary-search steps,
//! per-warp lockstep work, prefix-scan elements, kernel launches. This crate
//! converts those counts into simulated milliseconds under a device model.
//!
//! The model is deliberately first-order:
//!
//! * A kernel is a bag of **warp tasks**; each task has a cycle estimate
//!   derived from the lockstep rule (a warp is as slow as its busiest lane).
//! * The device offers `sm_count × warps_per_sm` concurrent warp slots;
//!   makespan is the greedy-scheduling bound
//!   `max(total_cycles / slots, longest_task)`.
//! * A kernel cannot beat global memory bandwidth: the final time is
//!   `max(compute_time, bytes_moved / bandwidth) + launches × launch_overhead`.
//!
//! First-order is enough: the autotuner's decisions (and the paper's
//! figures) depend on the *relative ordering* of variants, which is driven
//! by workload structure the kernels measure exactly, not by microarch
//! details. See DESIGN.md §2 for the substitution argument.

#![warn(missing_docs)]

pub mod device;
pub mod profile;

pub use device::DeviceSpec;
pub use profile::{KernelProfile, TaskStats};

/// Simulated durations are carried as milliseconds in `f64`, the same unit
/// as every runtime table in the paper.
pub type SimMs = f64;

/// Version tag of the pricing model and feature encoding. Bump whenever
/// cost constants, pricing formulas, or the feature transform change, so
/// cached oracle labels and features are invalidated, never silently
/// reused. v7: bitmap-mode Expand charges workload reads word-granularly
/// (8 bytes per backing `u64`, each word once) instead of per-chunk
/// `len/8` rounding.
pub const COST_MODEL_VERSION: u32 = 7;
