//! Work profiles: what a kernel did, counted exactly while doing it.

use serde::{Deserialize, Serialize};

/// Aggregate statistics over the warp tasks of one kernel.
///
/// A *warp task* is one warp's worth of work under the kernel's
/// load-balancing strategy: e.g. one TWC thread-bucket group of 32
/// vertices, one WM batch, one STRICT edge chunk. We keep only the
/// aggregates the makespan model needs — total, max, and count — so
/// profiles stay O(1) in memory on graphs with hundreds of millions of
/// edges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskStats {
    /// Sum of task cycle estimates.
    pub total_cycles: f64,
    /// Longest single task (critical path under infinite parallelism).
    pub max_cycles: f64,
    /// Number of tasks.
    pub count: u64,
}

impl TaskStats {
    /// Record one warp task of `cycles` cycles.
    #[inline]
    pub fn add_task(&mut self, cycles: f64) {
        debug_assert!(cycles >= 0.0, "negative task cycles");
        self.total_cycles += cycles;
        if cycles > self.max_cycles {
            self.max_cycles = cycles;
        }
        self.count += 1;
    }

    /// Merge another set of tasks into this one (rayon reduce step).
    #[inline]
    pub fn merge(&mut self, other: &TaskStats) {
        self.total_cycles += other.total_cycles;
        self.max_cycles = self.max_cycles.max(other.max_cycles);
        self.count += other.count;
    }

    /// Mean task length; 0 on the empty profile.
    pub fn mean_cycles(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles / self.count as f64
        }
    }

    /// Imbalance ratio max/mean (1.0 = perfectly balanced, 0 when empty).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_cycles();
        if mean == 0.0 {
            0.0
        } else {
            self.max_cycles / mean
        }
    }
}

/// Everything one simulated kernel did.
///
/// Built incrementally by the kernel implementations in `gswitch-kernels`
/// (sequentially or via rayon `fold`/`reduce` with [`KernelProfile::merge`])
/// and priced by [`crate::DeviceSpec::kernel_time_ms`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Warp-task cycle statistics (compute side of the model).
    pub tasks: TaskStats,
    /// Bytes read from simulated global memory, after coalescing accounting
    /// (a random 4-byte access is charged a full 32-byte sector).
    pub bytes_read: u64,
    /// Bytes written to simulated global memory.
    pub bytes_written: u64,
    /// Atomic operations issued (push-mode `compAtomic`, queue append).
    pub atomics: u64,
    /// Atomics that hit an already-updated location this iteration —
    /// a proxy for same-cache-line contention.
    pub atomic_conflicts: u64,
    /// Kernel launches (fusion removes launches; that is its entire point).
    pub launches: u32,
    /// Elements pushed through prefix-scan (sorted-queue generation).
    pub scan_elems: u64,
    /// CTA-wide barriers executed (CM and STRICT).
    pub syncs: u64,
    /// Edges actually expanded (for feedback features, not for pricing).
    pub edges_expanded: u64,
    /// Duplicate active-set entries processed (fused mode tolerates these).
    pub duplicates: u64,
}

impl KernelProfile {
    /// A profile that did nothing but still counts as one launch.
    pub fn launch() -> Self {
        KernelProfile { launches: 1, ..Default::default() }
    }

    /// Warp-task imbalance of this kernel: max/mean task cycles (see
    /// [`TaskStats::imbalance`]) — the load-balance quality signal the
    /// decision trace reports per strategy.
    pub fn imbalance(&self) -> f64 {
        self.tasks.imbalance()
    }

    /// Merge another profile into this one (rayon reduce step). Launches
    /// add — merging partial profiles of the *same* kernel should first
    /// zero one side's `launches`.
    pub fn merge(&mut self, other: &KernelProfile) {
        self.tasks.merge(&other.tasks);
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.atomics += other.atomics;
        self.atomic_conflicts += other.atomic_conflicts;
        self.launches += other.launches;
        self.scan_elems += other.scan_elems;
        self.syncs += other.syncs;
        self.edges_expanded += other.edges_expanded;
        self.duplicates += other.duplicates;
    }

    /// Merge used as a rayon reduce operator.
    pub fn merged(mut self, other: KernelProfile) -> Self {
        self.merge(&other);
        self
    }

    /// Total bytes moved through the memory system.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_stats_track_total_max_count() {
        let mut t = TaskStats::default();
        t.add_task(10.0);
        t.add_task(30.0);
        t.add_task(20.0);
        assert_eq!(t.total_cycles, 60.0);
        assert_eq!(t.max_cycles, 30.0);
        assert_eq!(t.count, 3);
        assert_eq!(t.mean_cycles(), 20.0);
        assert_eq!(t.imbalance(), 1.5);
    }

    #[test]
    fn empty_stats_are_safe() {
        let t = TaskStats::default();
        assert_eq!(t.mean_cycles(), 0.0);
        assert_eq!(t.imbalance(), 0.0);
    }

    #[test]
    fn merge_is_commutative_on_aggregates() {
        let mut a = TaskStats::default();
        a.add_task(5.0);
        a.add_task(7.0);
        let mut b = TaskStats::default();
        b.add_task(100.0);

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.max_cycles, 100.0);
        assert_eq!(ab.count, 3);
    }

    #[test]
    fn profile_merge_sums_everything() {
        let mut p = KernelProfile::launch();
        p.bytes_read = 100;
        p.atomics = 5;
        let q = KernelProfile {
            bytes_read: 50,
            bytes_written: 7,
            atomic_conflicts: 2,
            duplicates: 3,
            ..Default::default()
        };
        p.merge(&q);
        assert_eq!(p.bytes_read, 150);
        assert_eq!(p.bytes_moved(), 157);
        assert_eq!(p.launches, 1);
        assert_eq!(p.atomic_conflicts, 2);
        assert_eq!(p.duplicates, 3);
    }

    #[test]
    fn merged_is_reduce_friendly() {
        let profiles = [
            KernelProfile { bytes_read: 1, ..Default::default() },
            KernelProfile { bytes_read: 2, ..Default::default() },
            KernelProfile { bytes_read: 4, ..Default::default() },
        ];
        let total = profiles.into_iter().fold(KernelProfile::default(), KernelProfile::merged);
        assert_eq!(total.bytes_read, 7);
    }
}
