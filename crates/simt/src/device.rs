//! Device specifications and the pricing model.

use crate::profile::KernelProfile;
use crate::SimMs;
use serde::Serialize;

/// A simulated GPU. Two presets reproduce the paper's evaluation platforms;
/// all constants are in "model units" chosen so that relative costs track
/// the published microarchitectural ratios (bandwidth, SM count, clock,
/// atomic throughput) between Kepler K40m and Pascal P100.
///
/// `Deserialize` is hand-written (not derived) so the exchange fields
/// added with cost model v6 default instead of failing on specs
/// serialized under earlier versions.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DeviceSpec {
    /// Marketing name, used in reports.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Warps concurrently *issuing* per SM (CUDA cores / 32), not resident
    /// warps: the model folds latency hiding into per-access cycle costs,
    /// so the parallelism term must be execution width, not occupancy.
    pub warps_per_sm: u32,
    /// Threads per warp. 32 on every Nvidia part.
    pub warp_size: u32,
    /// Threads per CTA used by the kernel library.
    pub cta_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Global-memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Fixed cost of one kernel launch, microseconds (driver + dispatch).
    pub launch_overhead_us: f64,
    /// Amortized cycles for one 4-byte coalesced global access per lane.
    pub coalesced_cycles: f64,
    /// Multiplier applied to non-coalesced (random) accesses: a random
    /// 4-byte load drags a 32-byte sector through the memory system and
    /// cannot amortize latency across the warp.
    pub random_penalty: f64,
    /// Cycles per uncontended global atomic.
    pub atomic_cycles: f64,
    /// Extra cycles per atomic that conflicts with another update to the
    /// same location in the same kernel.
    pub atomic_contention_cycles: f64,
    /// Cycles per shared-memory access (WM/CM staging).
    pub shared_cycles: f64,
    /// Cycles per CTA-wide barrier.
    pub sync_cycles: f64,
    /// Cycles per element of a device-wide prefix scan (sorted-queue
    /// generation), already divided by scan parallelism.
    pub scan_cycles_per_elem: f64,
    /// Host-side microseconds to copy the runtime-characteristics feedback
    /// block device→host at the end of an iteration (tiny, latency-bound).
    pub feedback_copy_us: f64,
    /// Peer-to-peer interconnect bandwidth for inter-shard frontier
    /// exchange, GB/s (PCIe-class on Kepler, NVLink-class on Pascal).
    /// Defaulted on deserialization so device specs serialized before
    /// sharded execution existed still load.
    pub exchange_bw_gbs: f64,
    /// Fixed per-peer latency of one exchange round, microseconds
    /// (transfer setup + synchronization with the owning shard).
    /// Defaulted on deserialization like `exchange_bw_gbs`.
    pub exchange_latency_us: f64,
}

fn default_exchange_bw_gbs() -> f64 {
    12.0
}

fn default_exchange_latency_us() -> f64 {
    10.0
}

impl serde::Deserialize for DeviceSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        // The exchange fields arrived with cost model v6: absent in
        // older documents, so they fall back to conservative defaults
        // instead of failing the whole spec.
        let f64_or = |name: &str, default: f64| -> Result<f64, serde::DeError> {
            match v.get(name) {
                None => Ok(default),
                Some(_) => serde::__field(v, name),
            }
        };
        Ok(DeviceSpec {
            name: serde::__field(v, "name")?,
            sm_count: serde::__field(v, "sm_count")?,
            warps_per_sm: serde::__field(v, "warps_per_sm")?,
            warp_size: serde::__field(v, "warp_size")?,
            cta_size: serde::__field(v, "cta_size")?,
            clock_ghz: serde::__field(v, "clock_ghz")?,
            mem_bw_gbs: serde::__field(v, "mem_bw_gbs")?,
            launch_overhead_us: serde::__field(v, "launch_overhead_us")?,
            coalesced_cycles: serde::__field(v, "coalesced_cycles")?,
            random_penalty: serde::__field(v, "random_penalty")?,
            atomic_cycles: serde::__field(v, "atomic_cycles")?,
            atomic_contention_cycles: serde::__field(v, "atomic_contention_cycles")?,
            shared_cycles: serde::__field(v, "shared_cycles")?,
            sync_cycles: serde::__field(v, "sync_cycles")?,
            scan_cycles_per_elem: serde::__field(v, "scan_cycles_per_elem")?,
            feedback_copy_us: serde::__field(v, "feedback_copy_us")?,
            exchange_bw_gbs: f64_or("exchange_bw_gbs", default_exchange_bw_gbs())?,
            exchange_latency_us: f64_or("exchange_latency_us", default_exchange_latency_us())?,
        })
    }
}

impl DeviceSpec {
    /// Nvidia Tesla K40m (Kepler GK110B): 15 SMs, 745 MHz, 288 GB/s.
    /// Kepler's global atomics are slow and its launch overhead high.
    pub fn k40m() -> Self {
        DeviceSpec {
            name: "K40m".into(),
            sm_count: 15,
            warps_per_sm: 6, // 192 cores / 32
            warp_size: 32,
            cta_size: 256,
            clock_ghz: 0.745,
            mem_bw_gbs: 288.0,
            launch_overhead_us: 6.0,
            coalesced_cycles: 4.0,
            random_penalty: 40.0,
            atomic_cycles: 48.0,
            atomic_contention_cycles: 16.0,
            shared_cycles: 2.0,
            sync_cycles: 64.0,
            scan_cycles_per_elem: 0.02,
            feedback_copy_us: 8.0,
            // PCIe 3.0 x16 class peer transfers.
            exchange_bw_gbs: 12.0,
            exchange_latency_us: 12.0,
        }
    }

    /// Nvidia Tesla P100 (Pascal GP100): 56 SMs, 1328 MHz, 732 GB/s.
    /// Pascal roughly triples bandwidth and halves atomic cost.
    pub fn p100() -> Self {
        DeviceSpec {
            name: "P100".into(),
            sm_count: 56,
            warps_per_sm: 2, // 64 cores / 32
            warp_size: 32,
            cta_size: 256,
            clock_ghz: 1.328,
            mem_bw_gbs: 732.0,
            launch_overhead_us: 4.0,
            coalesced_cycles: 4.0,
            random_penalty: 30.0,
            atomic_cycles: 24.0,
            atomic_contention_cycles: 8.0,
            shared_cycles: 2.0,
            sync_cycles: 48.0,
            scan_cycles_per_elem: 0.012,
            feedback_copy_us: 6.0,
            // NVLink 1.0 class peer transfers.
            exchange_bw_gbs: 40.0,
            exchange_latency_us: 8.0,
        }
    }

    /// Concurrent warp slots (the parallelism the makespan model divides
    /// by).
    #[inline]
    pub fn warp_slots(&self) -> u64 {
        self.sm_count as u64 * self.warps_per_sm as u64
    }

    /// Warps per CTA.
    #[inline]
    pub fn warps_per_cta(&self) -> u32 {
        self.cta_size / self.warp_size
    }

    /// Convert device cycles to milliseconds.
    #[inline]
    pub fn cycles_to_ms(&self, cycles: f64) -> SimMs {
        cycles / (self.clock_ghz * 1e6)
    }

    /// Price a kernel: `max(compute, memory) + launches·overhead`.
    ///
    /// * compute: greedy-scheduling makespan of the warp tasks across
    ///   [`Self::warp_slots`], plus atomic and scan cycles serialized over
    ///   the same slots.
    /// * memory: bytes moved over [`Self::mem_bw_gbs`].
    pub fn kernel_time_ms(&self, p: &KernelProfile) -> SimMs {
        let slots = self.warp_slots() as f64;
        // Atomic and scan work are global serialization points priced
        // per-element and spread over the machine.
        let atomic_cycles = p.atomics as f64 * self.atomic_cycles
            + p.atomic_conflicts as f64 * self.atomic_contention_cycles;
        let scan_cycles = p.scan_elems as f64 * self.scan_cycles_per_elem;
        let sync_cycles = p.syncs as f64 * self.sync_cycles;
        let spread = (atomic_cycles + sync_cycles) / slots + scan_cycles;
        let makespan = (p.tasks.total_cycles / slots).max(p.tasks.max_cycles) + spread;
        let compute_ms = self.cycles_to_ms(makespan);
        let memory_ms = p.bytes_moved() as f64 / (self.mem_bw_gbs * 1e6);
        compute_ms.max(memory_ms) + p.launches as f64 * self.launch_overhead_us / 1e3
    }

    /// Device→host feedback copy cost per iteration (ms).
    pub fn feedback_time_ms(&self) -> SimMs {
        self.feedback_copy_us / 1e3
    }

    /// Price one inter-shard frontier-exchange round: `bytes` of routed
    /// activation records over the peer interconnect, plus a fixed
    /// latency per peer pair synchronized. Zero when there is nothing to
    /// route and nobody to synchronize with (`peers == 0`).
    pub fn exchange_time_ms(&self, bytes: u64, peers: u32) -> SimMs {
        if peers == 0 {
            return 0.0;
        }
        let transfer = bytes as f64 / (self.exchange_bw_gbs * 1e6);
        let latency = peers as f64 * self.exchange_latency_us / 1e3;
        transfer + latency
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::p100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TaskStats;

    fn profile_with(total: f64, max: f64, count: u64) -> KernelProfile {
        KernelProfile {
            tasks: TaskStats { total_cycles: total, max_cycles: max, count },
            launches: 1,
            ..Default::default()
        }
    }

    #[test]
    fn presets_reflect_published_ratios() {
        let k = DeviceSpec::k40m();
        let p = DeviceSpec::p100();
        assert!(p.mem_bw_gbs / k.mem_bw_gbs > 2.0);
        assert!(p.sm_count > 3 * k.sm_count);
        assert!(p.atomic_cycles < k.atomic_cycles);
        assert_eq!(k.warp_size, 32);
    }

    #[test]
    fn empty_kernel_costs_only_launch() {
        let d = DeviceSpec::k40m();
        let t = d.kernel_time_ms(&KernelProfile::launch());
        assert!((t - d.launch_overhead_us / 1e3).abs() < 1e-12);
    }

    #[test]
    fn balanced_work_scales_with_total() {
        let d = DeviceSpec::p100();
        let t1 = d.kernel_time_ms(&profile_with(1e9, 10.0, 100_000));
        let t2 = d.kernel_time_ms(&profile_with(2e9, 10.0, 200_000));
        assert!(t2 > 1.9 * t1 - d.launch_overhead_us / 1e3);
    }

    #[test]
    fn straggler_task_dominates() {
        let d = DeviceSpec::p100();
        // Tiny total but one monster task (a hub vertex in TWC).
        let balanced = profile_with(1e6, 100.0, 10_000);
        let skewed = profile_with(1e6, 5e5, 10_000);
        assert!(d.kernel_time_ms(&skewed) > 10.0 * d.kernel_time_ms(&balanced));
    }

    #[test]
    fn bandwidth_floor_applies() {
        let d = DeviceSpec::p100();
        // Negligible compute but 7.32 GB moved => ≥ 10 ms at 732 GB/s.
        let mut p = profile_with(10.0, 10.0, 1);
        p.bytes_read = 7_320_000_000;
        let t = d.kernel_time_ms(&p);
        assert!(t >= 10.0, "t = {t}");
    }

    #[test]
    fn atomics_and_contention_cost_extra() {
        let d = DeviceSpec::k40m();
        let base = profile_with(1e6, 50.0, 1000);
        let mut with_atomics = base;
        with_atomics.atomics = 1_000_000;
        let mut with_conflicts = with_atomics;
        with_conflicts.atomic_conflicts = 500_000;
        let t0 = d.kernel_time_ms(&base);
        let t1 = d.kernel_time_ms(&with_atomics);
        let t2 = d.kernel_time_ms(&with_conflicts);
        assert!(t1 > t0);
        assert!(t2 > t1);
    }

    #[test]
    fn p100_outruns_k40m_on_same_work() {
        let p = profile_with(1e9, 1e4, 100_000);
        assert!(DeviceSpec::p100().kernel_time_ms(&p) < DeviceSpec::k40m().kernel_time_ms(&p));
    }

    #[test]
    fn exchange_cost_scales_with_bytes_and_peers() {
        let d = DeviceSpec::p100();
        assert_eq!(d.exchange_time_ms(1 << 20, 0), 0.0, "no peers, no exchange");
        let one = d.exchange_time_ms(1 << 20, 1);
        let three = d.exchange_time_ms(1 << 20, 3);
        assert!(one > 0.0);
        assert!(three > one, "more peers cost more latency");
        assert!(d.exchange_time_ms(1 << 24, 1) > one, "more bytes cost more transfer");
        // NVLink-class P100 beats PCIe-class K40m at moving the same volume.
        assert!(d.exchange_time_ms(1 << 24, 1) < DeviceSpec::k40m().exchange_time_ms(1 << 24, 1));
    }

    #[test]
    fn pre_exchange_spec_json_still_deserializes() {
        // A spec serialized before the exchange fields existed (cost
        // model v5) must load with the defaults, not fail.
        let mut spec = DeviceSpec::k40m();
        spec.exchange_bw_gbs = default_exchange_bw_gbs();
        spec.exchange_latency_us = default_exchange_latency_us();
        let json = serde_json::to_string(&DeviceSpec::k40m()).unwrap();
        let stripped = json
            .replace(&format!(",\"exchange_bw_gbs\":{:?}", DeviceSpec::k40m().exchange_bw_gbs), "")
            .replace(
                &format!(",\"exchange_latency_us\":{:?}", DeviceSpec::k40m().exchange_latency_us),
                "",
            );
        assert!(!stripped.contains("exchange"), "strip failed: {stripped}");
        let back: DeviceSpec = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn cycles_to_ms_roundtrip() {
        let d = DeviceSpec::p100();
        // 1.328e9 cycles per second = 1.328e6 per ms.
        assert!((d.cycles_to_ms(1.328e6) - 1.0).abs() < 1e-12);
    }
}
