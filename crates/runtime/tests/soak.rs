//! The chaos-soak harness (DESIGN.md §4.14).
//!
//! One long scenario drives a mixed query/batch workload — thousands of
//! submissions across priority classes and algorithms — through a
//! scheduler under deterministic seeded fault schedules: a recurring
//! panic storm that must open a circuit breaker, then sustained
//! slow-downs plus random panics that must push the runtime into
//! brownout. Throughout, the suite holds the serving invariants:
//!
//! - **Outcome conservation** — every admitted job reaches exactly one
//!   terminal state, and the terminal counters sum to `jobs_submitted`;
//!   the client-side tally agrees with the metrics registry bucket by
//!   bucket.
//! - **No deadlock** — every `JobHandle::wait` returns, even for work
//!   shed at admission or failed fast by an open breaker.
//! - **No quota-permit leak** — tenant inflight counts drain to zero
//!   once the batches are done.
//! - **Health always answers** — `HealthReport::gather` responds every
//!   round, including while the queue is full and workers are dying.
//! - **Self-healing** — the breaker re-closes after its cooldown probe
//!   and brownout disengages once pressure eases; the run ends with an
//!   all-ok health report.
//!
//! The fault schedule is fully determined by [`SEED`]; wall-clock
//! timing only shifts *where* outcomes land between buckets, never out
//! of them. Runs in a few seconds (CI budget: under 60).

#![cfg(feature = "fault-injection")]

use gswitch_graph::gen;
use gswitch_runtime::faults::{arm, arm_schedule, reset, site, Fault, Schedule};
use gswitch_runtime::obs::metric;
use gswitch_runtime::{
    BreakerConfig, BrownoutConfig, ConfigCache, GraphRegistry, HealthReport, JobSpec, JobStatus,
    Priority, Query, RuntimeObs, Scheduler, SchedulerConfig, ShardService,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Everything random in the soak derives from this one constant.
const SEED: u64 = 0xC0FFEE;
/// Fingerprint handed to the batch path's breaker key.
const BATCH_FP: u64 = 0xE5;
/// Breaker cooldown: long enough that a failure storm opens the breaker
/// before its first probe window, short enough to re-close in-test.
const COOLDOWN_MS: u64 = 120;

fn spec(query: Query, priority: Priority, timeout_ms: Option<u64>) -> JobSpec {
    JobSpec { graph: "kron".into(), query, timeout_ms, priority: Some(priority) }
}

fn rotate_query(i: u64) -> Query {
    match i % 4 {
        0 => Query::Bfs { src: (i % 251) as u32 },
        1 => Query::Cc,
        2 => Query::Pr { eps: 1e-4 },
        _ => Query::Sssp { src: (i % 251) as u32 },
    }
}

fn rotate_priority(i: u64) -> Priority {
    match i % 3 {
        0 => Priority::Interactive,
        1 => Priority::Batch,
        _ => Priority::BestEffort,
    }
}

#[test]
fn chaos_soak_upholds_serving_invariants() {
    reset();
    let registry = Arc::new(GraphRegistry::new());
    registry.insert("kron", gen::kronecker(8, 8, 3));
    let cache = Arc::new(ConfigCache::new());
    let obs = Arc::new(RuntimeObs::new());
    let config = SchedulerConfig {
        workers: 2,
        queue_capacity: 16,
        default_timeout_ms: 10_000,
        breaker: BreakerConfig { failure_threshold: 3, cooldown_ms: COOLDOWN_MS },
        brownout: BrownoutConfig {
            enter_occupancy: 0.70,
            exit_occupancy: 0.30,
            enter_after: 4,
            exit_after: 4,
        },
        ..Default::default()
    };
    let scheduler =
        Scheduler::with_obs(Arc::clone(&registry), Arc::clone(&cache), config, Arc::clone(&obs));
    let shards = ShardService::new(Arc::clone(&obs), 4, 2)
        .with_breakers(Arc::clone(scheduler.breakers()))
        .with_brownout(Arc::clone(scheduler.brownout()));
    let batch_graph = Arc::new(gen::erdos_renyi(400, 1600, SEED).with_name("er-soak"));

    // Client-side ledger: every terminal status we ever observe.
    let mut tally: BTreeMap<JobStatus, u64> = BTreeMap::new();
    let mut client_rejected: u64 = 0;
    let mut attempts: u64 = 0;
    let settle = |tally: &mut BTreeMap<JobStatus, u64>, status: JobStatus| {
        *tally.entry(status).or_insert(0) += 1;
    };

    // ---- Phase 1: recurring panic storm opens the bfs breaker. ------
    // Every execution dies, so three sequential submissions feed the
    // breaker its threshold and the next one must fail fast.
    arm_schedule(site::EXECUTOR_START, Schedule::every(1), Fault::Panic("soak storm".into()));
    let mut saw_fastfail = false;
    for i in 0..32u64 {
        attempts += 1;
        let out = scheduler
            .submit(spec(Query::Bfs { src: 0 }, Priority::Batch, None))
            .expect("phase-1 submissions fit an empty queue")
            .wait();
        settle(&mut tally, out.status);
        if out.status == JobStatus::BreakerOpen {
            saw_fastfail = true;
            break;
        }
        assert_eq!(out.status, JobStatus::Failed, "storm execution {i} must panic");
    }
    assert!(saw_fastfail, "breaker never opened under a 100% failure storm");
    {
        let snap = obs.metrics.snapshot();
        assert!(snap.counter(metric::BREAKER_OPENED) >= 1);
        assert!(snap.counter(metric::JOBS_FAILED) >= 3);
    }

    // ---- Phase 2: sustained overload with random chaos. -------------
    // Iterations crawl and a seeded coin kills roughly one execution in
    // eight; burst submissions outrun two slow workers, so the queue
    // saturates, sheds, and brownout engages.
    reset();
    arm(site::ENGINE_ITERATION, Fault::SlowMs(4));
    arm_schedule(
        site::EXECUTOR_START,
        Schedule::random(SEED, 8),
        Fault::Panic("soak chaos".into()),
    );
    let mut handles = Vec::new();
    let mut batches_tried: u64 = 0;
    let mut batch_failures: u64 = 0;
    // Batch queries share the registry's job counters, so the ledger
    // tracks their per-query outcomes too: [ok, error, failed,
    // breaker-open].
    let mut batch_tally = [0u64; 4];
    let settle_batch =
        |tally: &mut [u64; 4], result: &Result<_, String>, queries: usize| match result {
            Ok(report) => {
                let report: &gswitch_shard::BatchReport = report;
                for out in &report.outcomes {
                    match out.status {
                        gswitch_shard::QueryStatus::Ok => tally[0] += 1,
                        gswitch_shard::QueryStatus::Error => tally[1] += 1,
                        gswitch_shard::QueryStatus::Failed => tally[2] += 1,
                    }
                }
            }
            Err(e) if e.contains("circuit breaker open") => tally[3] += queries as u64,
            Err(_) => {}
        };
    for round in 0..40u64 {
        for i in 0..50u64 {
            attempts += 1;
            let n = round * 50 + i;
            let deadline = if n % 7 == 0 { Some(1) } else { None };
            match scheduler.submit(spec(rotate_query(n), rotate_priority(n), deadline)) {
                Ok(handle) => handles.push(handle),
                Err(_) => client_rejected += 1,
            }
        }
        // Health must answer mid-overload, every round.
        let report = HealthReport::gather(&scheduler, &cache, Some(&shards));
        assert!(report.components.len() >= 4, "health went mute in round {round}");
        // Sprinkle batch traffic through the same breakers and quotas.
        if round % 5 == 0 {
            batches_tried += 1;
            let queries = [Query::Bfs { src: round as u32 }, Query::Cc];
            let result = shards.batch(
                &batch_graph,
                BATCH_FP,
                None,
                Some("soak"),
                &queries,
                round,
                "er-soak",
            );
            settle_batch(&mut batch_tally, &result, queries.len());
            if result.is_err() {
                batch_failures += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(batches_tried > 0 && batch_failures < batches_tried, "no batch ever ran");

    // ---- Phase 3: heal the faults and drain everything. -------------
    reset();
    for handle in handles {
        settle(&mut tally, handle.wait().status); // no deadlock: every wait returns
    }

    // Past the cooldown, one clean probe per algorithm re-closes any
    // breaker the chaos opened.
    std::thread::sleep(Duration::from_millis(COOLDOWN_MS + 30));
    for n in 0..8u64 {
        attempts += 1;
        let out = scheduler
            .submit(spec(rotate_query(n), Priority::Interactive, None))
            .expect("recovery submissions fit a drained queue")
            .wait();
        settle(&mut tally, out.status);
        assert_eq!(out.status, JobStatus::Ok, "recovery probe {n} on a healed runtime");
    }
    // A clean batch re-closes the batch-path breaker if the chaos
    // opened it, and proves quota admission recovered.
    let recovery =
        shards.batch(&batch_graph, BATCH_FP, None, Some("soak"), &[Query::Cc], 9_999, "er-soak");
    settle_batch(&mut batch_tally, &recovery, 1);
    recovery.expect("recovery batch on a healed runtime");
    // Low-occupancy traffic walks brownout back out.
    for n in 0..8u64 {
        attempts += 1;
        let out = scheduler.submit(spec(Query::Cc, Priority::Batch, None)).unwrap().wait();
        settle(&mut tally, out.status);
        assert_eq!(out.status, JobStatus::Ok);
        if !scheduler.brownout().active() && n >= 3 {
            break;
        }
    }

    // ---- Invariants. -------------------------------------------------
    let snap = obs.metrics.snapshot();
    let bucket = |name: &str| snap.counter(name);
    let submitted = bucket(metric::JOBS_SUBMITTED);
    let terminal = bucket(metric::JOBS_OK)
        + bucket(metric::JOBS_ERROR)
        + bucket(metric::JOBS_FAILED)
        + bucket(metric::JOBS_CANCELLED)
        + bucket(metric::JOBS_SHED)
        + bucket(metric::JOBS_BREAKER_OPEN)
        + bucket(metric::JOBS_TIMEOUT_QUEUED)
        + bucket(metric::JOBS_TIMEOUT_MIDRUN)
        + bucket(metric::JOBS_TIMEOUT_LATE);
    assert_eq!(submitted, terminal, "outcome conservation: {tally:?}");
    // The client ledger — scheduler handles plus per-query batch
    // outcomes — agrees with the registry, bucket by bucket.
    let client_total: u64 = tally.values().sum::<u64>() + batch_tally.iter().sum::<u64>();
    assert_eq!(client_total, submitted, "every admitted job settled exactly once");
    assert_eq!(tally.values().sum::<u64>() + client_rejected, attempts);
    assert_eq!(client_rejected, bucket(metric::JOBS_REJECTED));
    let client = |s: JobStatus| tally.get(&s).copied().unwrap_or(0);
    assert_eq!(client(JobStatus::Ok) + batch_tally[0], bucket(metric::JOBS_OK));
    assert_eq!(client(JobStatus::Error) + batch_tally[1], bucket(metric::JOBS_ERROR));
    assert_eq!(client(JobStatus::Failed) + batch_tally[2], bucket(metric::JOBS_FAILED));
    assert_eq!(client(JobStatus::Shed), bucket(metric::JOBS_SHED));
    assert_eq!(client(JobStatus::BreakerOpen) + batch_tally[3], bucket(metric::JOBS_BREAKER_OPEN));
    assert_eq!(
        client(JobStatus::DeadlineExceeded),
        bucket(metric::JOBS_TIMEOUT_QUEUED)
            + bucket(metric::JOBS_TIMEOUT_MIDRUN)
            + bucket(metric::JOBS_TIMEOUT_LATE)
    );
    assert!(attempts >= 2_000, "the soak must push thousands of jobs, pushed {attempts}");

    // The breaker both opened and re-closed; brownout engaged and
    // disengaged; nothing is stuck degraded.
    assert!(bucket(metric::BREAKER_OPENED) >= 1, "breaker never opened");
    assert!(bucket(metric::BREAKER_CLOSED) >= 1, "breaker never re-closed");
    assert!(bucket(metric::BROWNOUT_ENTERED) >= 1, "overload never triggered brownout");
    assert!(bucket(metric::BROWNOUT_EXITED) >= 1, "brownout never disengaged");
    assert_eq!(scheduler.breakers().open_count(), 0, "a breaker is stuck open");
    assert!(!scheduler.brownout().active(), "brownout is stuck active");

    // No quota-permit leak: the batch tenant drained to zero.
    assert_eq!(shards.quotas().inflight("soak"), 0, "leaked batch quota permits");
    assert_eq!(shards.quotas().inflight("default"), 0);

    // And the final health report is clean.
    let report = HealthReport::gather(&scheduler, &cache, Some(&shards));
    assert_eq!(report.status, "ok", "{report:?}");
    assert!(!report.brownout);
    assert_eq!(report.breakers_open, 0);

    scheduler.shutdown();
    reset();
}
