//! Property-based saturation suite (DESIGN.md §4.14).
//!
//! The chaos-soak harness (`tests/soak.rs`) drives one long scripted
//! scenario; these properties instead throw *randomized* workloads —
//! arbitrary priority/deadline mixes at at least twice the queue's
//! capacity — at a small scheduler and check the accounting identities
//! that overload handling must never break:
//!
//! - every accepted submission settles in exactly one terminal state,
//!   and the registry's terminal counters sum to `jobs_submitted`;
//! - rejections at admission are counted and are *not* submissions;
//! - tenant quota permits always drain back to zero, in any acquire /
//!   release interleaving, capped or not, and an acquire never admits
//!   past the effective limit.
//!
//! The vendored proptest derives its RNG deterministically from the
//! test name, so failures replay.

use gswitch_graph::gen;
use gswitch_runtime::obs::metric;
use gswitch_runtime::{
    ConfigCache, GraphRegistry, JobSpec, Priority, Query, RuntimeObs, Scheduler, SchedulerConfig,
};
use gswitch_shard::TenantQuotas;
use proptest::prelude::*;
use std::sync::Arc;

const QUEUE_CAPACITY: usize = 8;

fn priority_from(raw: u8) -> Priority {
    match raw % 3 {
        0 => Priority::Interactive,
        1 => Priority::Batch,
        _ => Priority::BestEffort,
    }
}

/// Deadline mix: mostly unconstrained, some already-hopeless 1 ms
/// deadlines that exercise the queued-expiry purge, some comfortable.
fn deadline_from(raw: u8) -> Option<u64> {
    match raw % 4 {
        0 => Some(1),
        1 => Some(5_000),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random priority/deadline mixes at ≥2× queue capacity: whatever
    /// the shed policy and workers do, the counters balance and every
    /// handle resolves.
    #[test]
    fn saturated_scheduler_conserves_outcomes(
        jobs in proptest::collection::vec((0u8..3, 0u8..4, 0u8..2), 2 * QUEUE_CAPACITY..5 * QUEUE_CAPACITY),
    ) {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(6, 8, 3));
        let obs = Arc::new(RuntimeObs::new());
        let config = SchedulerConfig {
            workers: 2,
            queue_capacity: QUEUE_CAPACITY,
            default_timeout_ms: 10_000,
            ..Default::default()
        };
        let scheduler = Scheduler::with_obs(
            registry,
            Arc::new(ConfigCache::new()),
            config,
            Arc::clone(&obs),
        );

        let mut handles = Vec::new();
        let mut rejected: u64 = 0;
        for &(p, d, q) in &jobs {
            let query = if q == 0 { Query::Bfs { src: 0 } } else { Query::Cc };
            let spec = JobSpec {
                graph: "kron".into(),
                query,
                timeout_ms: deadline_from(d),
                priority: Some(priority_from(p)),
            };
            match scheduler.submit(spec) {
                Ok(h) => handles.push(h),
                Err(_) => rejected += 1,
            }
        }
        let accepted = handles.len() as u64;
        // No deadlock: every accepted handle resolves.
        for h in handles {
            let _ = h.wait();
        }
        scheduler.shutdown();

        let snap = obs.metrics.snapshot();
        let bucket = |name: &str| snap.counter(name);
        prop_assert_eq!(accepted + rejected, jobs.len() as u64);
        prop_assert_eq!(bucket(metric::JOBS_SUBMITTED), accepted);
        prop_assert_eq!(bucket(metric::JOBS_REJECTED), rejected);
        let terminal = bucket(metric::JOBS_OK)
            + bucket(metric::JOBS_ERROR)
            + bucket(metric::JOBS_FAILED)
            + bucket(metric::JOBS_CANCELLED)
            + bucket(metric::JOBS_SHED)
            + bucket(metric::JOBS_BREAKER_OPEN)
            + bucket(metric::JOBS_TIMEOUT_QUEUED)
            + bucket(metric::JOBS_TIMEOUT_MIDRUN)
            + bucket(metric::JOBS_TIMEOUT_LATE);
        prop_assert_eq!(terminal, accepted);
    }

    /// Quota permits never leak: random acquire/release interleavings
    /// across tenants — with random counts and random brownout-style
    /// caps — always drain inflight back to zero, and no admission ever
    /// exceeds the effective limit.
    #[test]
    fn quota_permits_never_leak(
        ops in proptest::collection::vec((0u8..4, 1usize..6, 1usize..12, 0u8..2), 1..80),
    ) {
        let quotas = TenantQuotas::new(8);
        let tenants = ["alpha", "beta", "gamma", "delta"];
        let mut held = Vec::new();
        for &(t, count, cap, release) in &ops {
            let tenant = tenants[t as usize];
            // Interleave: sometimes release the oldest held permit.
            if release == 1 && !held.is_empty() {
                held.remove(0);
            }
            let effective = quotas.limit().min(cap.max(1));
            match quotas.acquire_capped(tenant, count, cap) {
                Ok(permit) => {
                    prop_assert!(quotas.inflight(tenant) <= effective,
                        "admitted past the effective cap {}", effective);
                    held.push(permit);
                }
                Err(_) => {
                    // Refusal means the request genuinely did not fit.
                    prop_assert!(quotas.inflight(tenant) + count > effective);
                }
            }
        }
        drop(held);
        for tenant in tenants {
            prop_assert_eq!(quotas.inflight(tenant), 0);
        }
    }
}
