//! Fault-tolerance integration suite, driven by deterministic fault
//! injection (`gswitch_runtime::faults`, `fault-injection` feature).
//!
//! Each test injures the runtime at a named site and asserts two
//! things: the *outcome* is the right structured failure (never a dead
//! worker or a panicking client), and the *observability* agrees (the
//! matching counter moved). Fault state is process-global, so every
//! test serializes behind `GUARD` and resets the fault table on entry
//! and exit.

#![cfg(feature = "fault-injection")]

use gswitch_graph::gen;
use gswitch_obs::sync::{poison_recoveries, Lock};
use gswitch_runtime::faults::{arm, arm_after, arm_schedule, reset, site, Fault, Schedule};
use gswitch_runtime::obs::metric;
use gswitch_runtime::{
    BreakerConfig, ConfigCache, GraphRegistry, JobSpec, JobStatus, Query, RuntimeObs, Scheduler,
    SchedulerConfig,
};
use std::sync::Arc;
use std::time::Duration;

/// Serializes tests sharing the process-global fault table. The lock is
/// poison-recovering, so one failing test cannot wedge the rest.
static GUARD: Lock<()> = Lock::new(());

struct Harness {
    scheduler: Scheduler,
    obs: Arc<RuntimeObs>,
    cache: Arc<ConfigCache>,
}

fn harness(workers: usize) -> Harness {
    let registry = Arc::new(GraphRegistry::new());
    registry.insert("kron", gen::kronecker(8, 8, 3));
    let cache = Arc::new(ConfigCache::new());
    let obs = Arc::new(RuntimeObs::new());
    let config = SchedulerConfig { workers, ..Default::default() };
    let scheduler = Scheduler::with_obs(registry, Arc::clone(&cache), config, Arc::clone(&obs));
    Harness { scheduler, obs, cache }
}

fn bfs(src: u32) -> JobSpec {
    JobSpec { graph: "kron".into(), query: Query::Bfs { src }, timeout_ms: None, priority: None }
}

/// A job that panics at executor start becomes `Failed` with the panic
/// message, the counter records it, and the pool keeps serving.
#[test]
fn panicking_job_fails_structured_and_pool_survives() {
    let _g = GUARD.lock();
    reset();
    let h = harness(1);

    arm(site::EXECUTOR_START, Fault::Panic("simulated executor crash".into()));
    let out = h.scheduler.submit(bfs(0)).unwrap().wait();
    assert_eq!(out.status, JobStatus::Failed);
    let err = out.error.expect("failed job carries its panic message");
    assert!(err.contains("simulated executor crash"), "error was `{err}`");
    assert!(out.payload.is_none(), "failed job must not leak partial results");

    // The same worker — there is only one — serves the next job fine.
    assert_eq!(h.scheduler.submit(bfs(0)).unwrap().wait().status, JobStatus::Ok);

    let snap = h.obs.metrics.snapshot();
    assert_eq!(snap.counter(metric::JOBS_FAILED), 1);
    assert_eq!(snap.counter(metric::JOBS_OK), 1);
    h.scheduler.shutdown();
    reset();
}

/// A panic *mid-run* — on the fourth engine super-step, while frontier
/// state is live — is isolated exactly the same way.
#[test]
fn panic_mid_expand_is_isolated() {
    let _g = GUARD.lock();
    reset();
    let h = harness(1);

    arm_after(site::ENGINE_ITERATION, 3, Fault::Panic("boom on iteration 3".into()));
    let out = h.scheduler.submit(bfs(0)).unwrap().wait();
    assert_eq!(out.status, JobStatus::Failed);
    assert!(out.error.unwrap().contains("boom on iteration 3"));

    assert_eq!(h.scheduler.submit(bfs(0)).unwrap().wait().status, JobStatus::Ok);
    assert_eq!(h.obs.metrics.snapshot().counter(metric::JOBS_FAILED), 1);
    h.scheduler.shutdown();
    reset();
}

/// An overrunning job is stopped cooperatively at a super-step boundary
/// and reports `DeadlineExceeded` (mid-run counter, not the queued or
/// late one), withholding results.
#[test]
fn deadline_enforced_mid_run() {
    let _g = GUARD.lock();
    reset();
    let h = harness(1);

    // Each super-step sleeps 20 ms; a tight PageRank tolerance needs
    // far more iterations than the 60 ms budget allows.
    arm(site::ENGINE_ITERATION, Fault::SlowMs(20));
    let spec = JobSpec {
        graph: "kron".into(),
        query: Query::Pr { eps: 1e-12 },
        timeout_ms: Some(60),
        priority: None,
    };
    let out = h.scheduler.submit(spec).unwrap().wait();
    assert_eq!(out.status, JobStatus::DeadlineExceeded);
    assert!(out.payload.is_none(), "deadline-exceeded job must withhold results");
    assert!(out.iterations.is_empty());
    reset(); // stop slowing the follow-up job

    assert_eq!(h.scheduler.submit(bfs(0)).unwrap().wait().status, JobStatus::Ok);
    let snap = h.obs.metrics.snapshot();
    assert_eq!(snap.counter(metric::JOBS_TIMEOUT_MIDRUN), 1);
    assert_eq!(snap.counter(metric::JOBS_TIMEOUT_QUEUED), 0);
    assert_eq!(snap.counter(metric::JOBS_TIMEOUT_LATE), 0);
    h.scheduler.shutdown();
}

/// Cancelling a job that is already executing stops it at the next
/// super-step via its cancel token.
#[test]
fn cancel_reaches_a_running_job() {
    let _g = GUARD.lock();
    reset();
    let h = harness(1);

    // ~5 ms per super-step keeps the job running long enough to be
    // cancelled mid-flight with a comfortable margin.
    arm(site::ENGINE_ITERATION, Fault::SlowMs(5));
    let spec = JobSpec {
        graph: "kron".into(),
        query: Query::Pr { eps: 1e-12 },
        timeout_ms: None,
        priority: None,
    };
    let handle = h.scheduler.submit(spec).unwrap();
    // The only worker is idle, so the job starts immediately; give it
    // time to be well inside the engine loop before cancelling.
    std::thread::sleep(Duration::from_millis(30));
    h.scheduler.cancel(handle.id);
    let out = handle.wait();
    assert_eq!(out.status, JobStatus::Cancelled);
    assert!(out.payload.is_none());
    reset();

    assert_eq!(h.scheduler.submit(bfs(0)).unwrap().wait().status, JobStatus::Ok);
    assert_eq!(h.obs.metrics.snapshot().counter(metric::JOBS_CANCELLED), 1);
    h.scheduler.shutdown();
}

/// A panic while the cache's write lock is held poisons the lock; the
/// poison-recovering wrapper absorbs it and the cache keeps working.
#[test]
fn poisoned_cache_lock_recovers() {
    let _g = GUARD.lock();
    reset();
    let h = harness(1);
    let before = poison_recoveries();

    // The store fault fires *inside* the cache's write lock, so the
    // panic unwinds with the guard held.
    arm(site::CACHE_STORE, Fault::Panic("die holding the cache lock".into()));
    let out = h.scheduler.submit(bfs(0)).unwrap().wait();
    assert_eq!(out.status, JobStatus::Failed);

    // The next job takes the poisoned lock, recovers, and completes;
    // the failed store never landed, so this run misses and re-stores.
    let out = h.scheduler.submit(bfs(0)).unwrap().wait();
    assert_eq!(out.status, JobStatus::Ok);
    assert_eq!(out.cache.as_deref(), Some("miss"));
    assert!(
        poison_recoveries() > before,
        "recovering from the poisoned cache lock must be counted"
    );
    assert_eq!(h.cache.counters().entries, 1, "the retried store landed");

    // And a third run hits the now-populated cache.
    let out = h.scheduler.submit(bfs(0)).unwrap().wait();
    assert_eq!(out.status, JobStatus::Ok);
    assert_eq!(out.cache.as_deref(), Some("hit"));
    h.scheduler.shutdown();
    reset();
}

/// A corrupt persisted cache degrades to an empty cache with the
/// `cache_load_failed` counter set — the server still starts.
#[test]
fn corrupt_cache_file_degrades_to_empty() {
    let _g = GUARD.lock();
    reset();

    // Persist a healthy cache to disk.
    let path = std::env::temp_dir().join("gswitch-faults-corrupt-cache.json");
    let healthy = ConfigCache::new();
    healthy.store(
        &gswitch_runtime::CacheKey::new(gswitch_graph::Fingerprint(7), "bfs", "v8d3g4"),
        gswitch_kernels::KernelConfig::push_baseline(),
    );
    healthy.save(&path).unwrap();

    // Corrupt it between disk and parser.
    arm(site::CACHE_LOAD, Fault::CorruptText);
    let cache = ConfigCache::load_or_empty(&path);
    assert_eq!(cache.counters().entries, 0, "corrupt cache must come up empty");
    assert_eq!(cache.counters().load_failed, 1);
    reset();

    // The counter flows into a bound registry under the canonical name.
    let registry = gswitch_obs::MetricsRegistry::new();
    cache.bind_metrics(&registry);
    assert_eq!(registry.snapshot().counter(metric::CACHE_LOAD_FAILED), 1);

    // Undamaged, the same file loads fine.
    let cache = ConfigCache::load_or_empty(&path);
    assert_eq!(cache.counters().entries, 1);
    assert_eq!(cache.counters().load_failed, 0);
    let _ = std::fs::remove_file(&path);
}

/// The crash-safe persistence regression: a save that dies in its
/// crash window — temp file written and fsynced, rename not yet
/// performed — leaves the destination untouched, so the next
/// `load_or_empty` sees the previous generation with `load_failed` 0.
#[test]
fn interrupted_save_never_corrupts_the_cache() {
    let _g = GUARD.lock();
    reset();
    let path = std::env::temp_dir().join("gswitch-faults-atomic-save.json");
    let tmp = std::env::temp_dir().join("gswitch-faults-atomic-save.json.tmp");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&tmp);

    let key = |fp: u64, algo: &str| {
        gswitch_runtime::CacheKey::new(gswitch_graph::Fingerprint(fp), algo, "v8d3g4")
    };
    let cache = ConfigCache::new();
    cache.store(&key(7, "bfs"), gswitch_kernels::KernelConfig::push_baseline());
    cache.save(&path).unwrap();

    // The second generation dies mid-save.
    cache.store(&key(8, "pr"), gswitch_kernels::KernelConfig::push_baseline());
    arm(site::CACHE_SAVE, Fault::Panic("power loss before rename".into()));
    let died =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.save(&path))).is_err();
    assert!(died, "the armed save must die in the crash window");
    reset();

    // The destination still holds the first generation, parseable.
    let loaded = ConfigCache::load_or_empty(&path);
    assert_eq!(loaded.counters().entries, 1, "old cache must survive the interrupted save");
    assert_eq!(loaded.counters().load_failed, 0, "interrupted save must never corrupt");

    // A healthy save replaces it atomically and leaves no temp residue.
    cache.save(&path).unwrap();
    assert_eq!(ConfigCache::load_or_empty(&path).counters().entries, 2);
    assert!(!tmp.exists(), "temp residue after a successful save");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&tmp);
}

/// End-to-end breaker lifecycle under recurring injected panics: K
/// consecutive worker failures open the breaker, submissions then fail
/// fast with `BreakerOpen`, and after the cooldown a half-open probe
/// re-closes it — all visible in the transition counters.
#[test]
fn breaker_opens_on_recurring_panics_then_recloses() {
    let _g = GUARD.lock();
    reset();
    let registry = Arc::new(GraphRegistry::new());
    registry.insert("kron", gen::kronecker(8, 8, 3));
    let cache = Arc::new(ConfigCache::new());
    let obs = Arc::new(RuntimeObs::new());
    let config = SchedulerConfig {
        workers: 1,
        breaker: BreakerConfig { failure_threshold: 3, cooldown_ms: 50 },
        ..Default::default()
    };
    let scheduler = Scheduler::with_obs(registry, cache, config, Arc::clone(&obs));

    // Unlike the legacy one-shot arm, a scheduled panic recurs: every
    // execution dies until the site is disarmed.
    arm_schedule(site::EXECUTOR_START, Schedule::every(1), Fault::Panic("chaos".into()));
    for i in 0..3 {
        let out = scheduler.submit(bfs(i)).unwrap().wait();
        assert_eq!(out.status, JobStatus::Failed, "failure {i} feeds the breaker");
    }
    // Threshold reached: the breaker answers before the queue.
    let out = scheduler.submit(bfs(9)).unwrap().wait();
    assert_eq!(out.status, JobStatus::BreakerOpen);
    assert!(out.error.as_deref().unwrap_or("").contains("circuit breaker open"));
    reset(); // heal the executor

    // After the cooldown a single probe runs clean and closes it.
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(scheduler.submit(bfs(0)).unwrap().wait().status, JobStatus::Ok);
    assert_eq!(scheduler.submit(bfs(1)).unwrap().wait().status, JobStatus::Ok);

    let snap = obs.metrics.snapshot();
    assert_eq!(snap.counter(metric::BREAKER_OPENED), 1);
    assert_eq!(snap.counter(metric::BREAKER_HALF_OPEN), 1);
    assert_eq!(snap.counter(metric::BREAKER_CLOSED), 1);
    assert_eq!(snap.counter(metric::JOBS_BREAKER_OPEN), 1);
    // Conservation across the whole episode: every submission reached
    // exactly one terminal state.
    let terminal = snap.counter(metric::JOBS_OK)
        + snap.counter(metric::JOBS_FAILED)
        + snap.counter(metric::JOBS_BREAKER_OPEN);
    assert_eq!(snap.counter(metric::JOBS_SUBMITTED), terminal);
    scheduler.shutdown();
    reset();
}

/// `submit_with_retry` turns a transient worker panic into a success:
/// the injected panic is one-shot, so the resubmission runs clean.
#[test]
fn retry_recovers_from_transient_panic() {
    let _g = GUARD.lock();
    reset();
    let h = harness(1);

    arm(site::EXECUTOR_START, Fault::Panic("transient".into()));
    let out = h.scheduler.submit_with_retry(bfs(0), 2, Duration::from_millis(1)).unwrap();
    assert_eq!(out.status, JobStatus::Ok, "retry after one-shot panic must succeed");

    let snap = h.obs.metrics.snapshot();
    assert_eq!(snap.counter(metric::JOBS_RETRIED), 1);
    assert_eq!(snap.counter(metric::JOBS_FAILED), 1);
    assert_eq!(snap.counter(metric::JOBS_OK), 1);
    h.scheduler.shutdown();
    reset();
}
