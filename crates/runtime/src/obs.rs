//! The serving runtime's observability root: one shared
//! [`MetricsRegistry`] plus one bounded decision-trace ring, handed to
//! every component so `gswitch-serve` can expose a single unified
//! snapshot through the `stats` and `trace` verbs.
//!
//! Metric names are centralized here (the `metric` module) so the
//! scheduler, the cache and the CLI agree on spelling.

use gswitch_obs::{Clock, MetricsRegistry, RecorderHandle, SpanCollector, SpanRing, TraceRing};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Canonical metric names for the serving runtime.
pub mod metric {
    /// Gauge: jobs currently waiting for a worker.
    pub const QUEUE_DEPTH: &str = "scheduler_queue_depth";
    /// Counter: jobs admitted into the queue.
    pub const JOBS_SUBMITTED: &str = "jobs_submitted";
    /// Counter: submissions refused (queue full, unknown graph, shutdown).
    pub const JOBS_REJECTED: &str = "jobs_rejected";
    /// Counter: jobs that completed `Ok`.
    pub const JOBS_OK: &str = "jobs_ok";
    /// Counter: jobs that completed `Error`.
    pub const JOBS_ERROR: &str = "jobs_error";
    /// Counter: jobs cancelled — while queued (never ran) or mid-run
    /// (the engine stopped at a super-step boundary).
    pub const JOBS_CANCELLED: &str = "jobs_cancelled";
    /// Counter: jobs that panicked in a worker (status `Failed`); the
    /// worker survived and kept serving.
    pub const JOBS_FAILED: &str = "jobs_failed";
    /// Counter: jobs whose deadline passed while queued (never ran).
    pub const JOBS_TIMEOUT_QUEUED: &str = "jobs_timeout_queued";
    /// Counter: jobs stopped *mid-run* because their deadline passed —
    /// the engine exited cooperatively at the next super-step.
    pub const JOBS_TIMEOUT_MIDRUN: &str = "jobs_timeout_midrun";
    /// Counter: jobs that ran to completion but finished past their
    /// deadline (result withheld).
    pub const JOBS_TIMEOUT_LATE: &str = "jobs_timeout_late";
    /// Counter: transiently-failed jobs resubmitted by the retry layer.
    pub const JOBS_RETRIED: &str = "jobs_retried";
    /// Histogram: admission-to-pickup wait, ms.
    pub const QUEUE_WAIT_MS: &str = "queue_wait_ms";
    /// Histogram: worker execution time per job, ms.
    pub const EXECUTE_MS: &str = "execute_ms";
    /// Histogram: admission-to-terminal-state time per job, ms.
    pub const JOB_TOTAL_MS: &str = "job_total_ms";
    /// Counter: tuned-config cache lookups that found a seed.
    pub const CACHE_HITS: &str = "cache_hits";
    /// Counter: tuned-config cache lookups that found nothing.
    pub const CACHE_MISSES: &str = "cache_misses";
    /// Counter: tuned-config cache writes.
    pub const CACHE_STORES: &str = "cache_stores";
    /// Counter: persisted-cache loads that failed to parse and degraded
    /// to an empty cache.
    pub const CACHE_LOAD_FAILED: &str = "cache_load_failed";
    /// Counter: batches executed against resident shard plans.
    pub const BATCHES: &str = "shard_batches";
    /// Counter: queries executed inside those batches.
    pub const BATCH_QUERIES: &str = "shard_batch_queries";
    /// Counter: frontier-exchange records routed between shards.
    pub const SHARD_EXCHANGE_RECORDS: &str = "shard_exchange_records";
    /// Counter: frontier-exchange bytes routed between shards.
    pub const SHARD_EXCHANGE_BYTES: &str = "shard_exchange_bytes";
    /// Histogram: per-batch worker-pool occupancy, percent.
    pub const BATCH_OCCUPANCY: &str = "shard_batch_occupancy_pct";
    /// Histogram: per-batch worst shard busy-time imbalance
    /// (busiest / average; 1.0 = balanced).
    pub const SHARD_IMBALANCE: &str = "shard_imbalance";
    /// Counter: batch submissions refused by per-tenant quotas.
    pub const QUOTA_REJECTED: &str = "shard_quota_rejected";
    /// Counter: queued jobs dropped by the overload shed policy to
    /// admit higher-priority work (terminal status `Shed`).
    pub const JOBS_SHED: &str = "jobs_shed";
    /// Counter: submissions refused at admission because the deadline
    /// could not be met given the observed p95 queue wait.
    pub const JOBS_UNMEETABLE: &str = "jobs_deadline_unmeetable";
    /// Counter: jobs failed fast because their (graph, algorithm)
    /// circuit breaker was open (terminal status `BreakerOpen`).
    pub const JOBS_BREAKER_OPEN: &str = "jobs_breaker_open";
    /// Counter: breaker transitions Closed/HalfOpen → Open.
    pub const BREAKER_OPENED: &str = "breaker_opened";
    /// Counter: breaker transitions Open → HalfOpen (cooldown elapsed,
    /// one probe admitted).
    pub const BREAKER_HALF_OPEN: &str = "breaker_half_open";
    /// Counter: breaker transitions HalfOpen → Closed (probe succeeded).
    pub const BREAKER_CLOSED: &str = "breaker_closed";
    /// Counter: brownout (degraded-mode) activations.
    pub const BROWNOUT_ENTERED: &str = "brownout_entered";
    /// Counter: brownout deactivations (pressure eased).
    pub const BROWNOUT_EXITED: &str = "brownout_exited";
    /// Gauge: 1 while the runtime is serving in degraded (brownout)
    /// mode, 0 otherwise.
    pub const BROWNOUT_ACTIVE: &str = "brownout_active";
}

/// Default decision-trace ring capacity (events, not bytes). A
/// ~200-byte event makes this a ≈13 MB worst-case ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Default span-ring capacity. A [`gswitch_obs::SpanRecord`] is 64
/// bytes, so the worst case is a ≈4 MB ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Shared observability state for one serving process.
pub struct RuntimeObs {
    /// The unified metrics registry every component reports into.
    pub metrics: Arc<MetricsRegistry>,
    /// The decision-trace ring engine iterations land in while tracing
    /// is enabled.
    pub trace: Arc<TraceRing>,
    /// The wall-clock span ring: request/queue-wait/execute spans from
    /// the scheduler plus nested super-step phases from the engine.
    /// Always collected (the ring is bounded; recording is one atomic
    /// push), and its clock is the runtime's only wall-time source.
    pub spans: Arc<SpanRing>,
    tracing: AtomicBool,
}

impl RuntimeObs {
    /// Fresh state with the default trace capacity; tracing off.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Fresh state with an explicit trace-ring capacity; tracing off.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        RuntimeObs {
            metrics: Arc::new(MetricsRegistry::new()),
            trace: Arc::new(TraceRing::new(capacity)),
            spans: Arc::new(SpanRing::new(DEFAULT_SPAN_CAPACITY)),
            tracing: AtomicBool::new(false),
        }
    }

    /// An always-enabled collector over the shared span ring.
    pub fn span_collector(&self) -> SpanCollector {
        self.spans.collector()
    }

    /// The monotonic clock every runtime component times against (the
    /// span ring's clock, so spans and metrics agree on "now").
    pub fn clock(&self) -> Clock {
        self.spans.clock().clone()
    }

    /// Turn decision tracing on or off. Takes effect for jobs whose
    /// execution starts after the call.
    ///
    /// Release pairs with the Acquire load in
    /// [`RuntimeObs::tracing`]: a worker that observes the enable also
    /// observes any trace-sink setup done before it.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Release);
    }

    /// Whether decision tracing is currently on.
    pub fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Acquire)
    }

    /// A recorder handle for one job: enabled (stamping `job`/`graph`/
    /// `algo` onto every event) while tracing is on, free otherwise.
    pub fn recorder_for(&self, job: u64, graph: &str, algo: &str) -> RecorderHandle {
        if self.tracing() {
            RecorderHandle::new(self.trace.recorder(job, graph, algo))
        } else {
            RecorderHandle::none()
        }
    }
}

impl Default for RuntimeObs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for RuntimeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeObs")
            .field("tracing", &self.tracing())
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_follows_tracing_flag() {
        let obs = RuntimeObs::new();
        assert!(!obs.recorder_for(1, "g", "bfs").is_enabled());
        obs.set_tracing(true);
        assert!(obs.tracing());
        assert!(obs.recorder_for(1, "g", "bfs").is_enabled());
        obs.set_tracing(false);
        assert!(!obs.recorder_for(1, "g", "bfs").is_enabled());
    }

    #[test]
    fn events_recorded_through_handle_land_in_the_ring() {
        let obs = RuntimeObs::with_trace_capacity(8);
        obs.set_tracing(true);
        let handle = obs.recorder_for(3, "kron", "cc");
        let ev = gswitch_obs::TraceEvent {
            iteration: 0,
            config: gswitch_kernels::KernelConfig::push_baseline(),
            provenance: gswitch_obs::Provenance::Decided,
            predicted_ms: 0.0,
            measured_ms: 1.0,
            filter_ms: 0.2,
            overhead_ms: 0.01,
            v_active: 1,
            e_active: 2,
            edges_touched: 2,
            activations: 1,
            duplicates: 0,
            task_total_cycles: 10.0,
            task_max_cycles: 10.0,
            task_count: 1,
            features: [0.0; gswitch_ml::FEATURE_COUNT],
            shard: None,
        };
        handle.active().unwrap().record(&ev);
        let events = obs.trace.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].job, 3);
        assert_eq!(events[0].algo, "cc");
    }
}
