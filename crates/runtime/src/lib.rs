//! Long-lived serving runtime over the gswitch engine.
//!
//! The paper's engine answers one query per process: build a graph, run
//! an algorithm, exit. This crate turns it into a resident service, the
//! deployment shape an autotuner actually pays off in — the tuning work
//! done for one query is remembered and re-applied to the next:
//!
//! - [`registry`] — loads and fingerprints each graph **once**, then
//!   shares it across all queries via `Arc` (plus a lazily built
//!   weighted twin for SSSP).
//! - [`scheduler`] — a bounded-queue worker pool executing typed
//!   queries ([`Query`]) with admission control, per-job timeouts and
//!   cancellation, returning structured [`JobOutcome`]s with
//!   per-iteration traces.
//! - [`cache`] — the tuned-config cache: keyed by (graph fingerprint,
//!   algorithm, feature bucket), it persists the dominant
//!   [`KernelConfig`](gswitch_kernels::KernelConfig) of a completed run
//!   to disk as JSON and warm-starts later runs through
//!   [`run_with_seed_config`](gswitch_core::run_with_seed_config).
//! - [`faults`] — deterministic fault injection at named sites
//!   (panics, slow iterations, corrupt cache text), compiled to no-ops
//!   unless the `fault-injection` cargo feature is on; the lever the
//!   fault-tolerance integration suite uses to prove the pool survives
//!   panicking jobs, poisoned locks and corrupt cache files.
//! - [`shards`] — partitioned serving: resident K-shard plans
//!   ([`gswitch_shard::ShardStore`]), concurrent query batches over
//!   them, and per-tenant admission quotas, behind the `batch` verb
//!   and the `--shards` flag.
//! - [`bench_load`] — the synthetic mixed workload behind
//!   `gswitch-serve --bench-load`, reporting QPS and latency
//!   percentiles cold (empty cache) versus warm.
//! - [`breaker`] / [`brownout`] / [`health`] — overload resilience:
//!   per-(graph, algorithm) circuit breakers that fail fast after
//!   repeated worker failures, degraded-mode serving under sustained
//!   queue pressure, and the `health` verb's per-component report.
//!   Priority-aware load shedding lives in [`scheduler`]; see
//!   DESIGN.md §4.14.
//!
//! The `gswitch-serve` binary speaks line-delimited JSON over
//! stdin/stdout; see `protocol` and the README's "Serving" section.

#![warn(missing_docs)]

pub mod bench_load;
pub mod breaker;
pub mod brownout;
pub mod cache;
pub mod executor;
pub mod faults;
pub mod health;
pub mod obs;
pub mod protocol;
pub mod query;
pub mod registry;
pub mod scheduler;
pub mod shards;

pub use breaker::{BreakerConfig, BreakerSet, BreakerState};
pub use brownout::{Brownout, BrownoutConfig};
pub use cache::{CacheCounters, CacheKey, ConfigCache};
pub use executor::execute;
pub use health::HealthReport;
pub use obs::RuntimeObs;
pub use query::{IterStat, JobOutcome, JobSpec, JobStatus, Metric, Payload, Priority, Query};
pub use registry::{GraphEntry, GraphRegistry};
pub use scheduler::{JobHandle, Scheduler, SchedulerConfig, SubmitError};
pub use shards::ShardService;
