//! The `health` verb: a per-component liveness and degradation report.
//!
//! [`HealthReport::gather`] is cheap and lock-light by construction —
//! it reads atomics, counter handles, and short snapshots, never an
//! engine run — so health answers even while every worker is busy and
//! the queue is full. That property is asserted by the chaos-soak
//! suite: health must respond throughout sustained overload and fault
//! injection.
//!
//! The overall `status` is `"ok"` or `"degraded"`; it degrades when
//! brownout is active or any circuit breaker is open. Both conditions
//! self-heal (brownout exits on low occupancy, breakers close after a
//! successful cooldown probe), so a degraded report is a statement
//! about *now*, not a latched alarm.

use crate::breaker::BreakerView;
use crate::cache::ConfigCache;
use crate::scheduler::Scheduler;
use crate::shards::ShardService;

/// One component's row in the health report.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ComponentHealth {
    /// Component name (`scheduler`, `breakers`, `brownout`, `cache`,
    /// `shards`).
    pub component: String,
    /// `"ok"`, `"degraded"`, or `"open"` (breakers only).
    pub status: String,
    /// Human-readable state summary.
    pub detail: String,
}

/// The aggregate report behind the `health` verb.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct HealthReport {
    /// `"ok"` or `"degraded"`.
    pub status: String,
    /// Whether brownout (degraded-mode serving) is active.
    pub brownout: bool,
    /// Circuit breakers currently open or half-open.
    pub breakers_open: u64,
    /// Per-component rows.
    pub components: Vec<ComponentHealth>,
    /// Every non-closed breaker, by (graph fingerprint, algorithm).
    pub breakers: Vec<BreakerView>,
}

impl HealthReport {
    /// Assemble the report from live component state.
    pub fn gather(
        scheduler: &Scheduler,
        cache: &ConfigCache,
        shards: Option<&ShardService>,
    ) -> Self {
        let queued = scheduler.queued();
        let capacity = scheduler.capacity();
        let occupancy = queued as f64 / capacity.max(1) as f64;
        let wait = scheduler
            .queue_wait_p95_ms()
            .map(|p95| format!("{p95:.1}"))
            .unwrap_or_else(|| "n/a".to_string());

        let brownout = scheduler.brownout();
        let degraded = brownout.active();
        let breakers = scheduler.breakers();
        let open = breakers.open_count();

        let mut components = vec![
            ComponentHealth {
                component: "scheduler".to_string(),
                status: if occupancy >= 1.0 { "degraded" } else { "ok" }.to_string(),
                detail: format!(
                    "queued {queued}/{capacity} (occupancy {occupancy:.2}), p95 wait {wait} ms"
                ),
            },
            ComponentHealth {
                component: "breakers".to_string(),
                status: if open > 0 { "open" } else { "ok" }.to_string(),
                detail: format!(
                    "{open} open (threshold {}, cooldown {} ms)",
                    breakers.failure_threshold(),
                    breakers.cooldown_ms()
                ),
            },
            ComponentHealth {
                component: "brownout".to_string(),
                status: if degraded { "degraded" } else { "ok" }.to_string(),
                detail: format!(
                    "entered {} / exited {} times",
                    brownout.entered(),
                    brownout.exited()
                ),
            },
            {
                let c = cache.counters();
                ComponentHealth {
                    component: "cache".to_string(),
                    status: if c.load_failed > 0 { "degraded" } else { "ok" }.to_string(),
                    detail: format!(
                        "{} entries, hit rate {:.2}, {} failed loads",
                        c.entries,
                        c.hit_rate(),
                        c.load_failed
                    ),
                }
            },
        ];
        if let Some(svc) = shards {
            components.push(ComponentHealth {
                component: "shards".to_string(),
                status: "ok".to_string(),
                detail: format!(
                    "{} resident plans, {} admissions / {} rejections",
                    svc.store().len(),
                    svc.quotas().admissions(),
                    svc.quotas().rejections()
                ),
            });
        }
        HealthReport {
            status: if degraded || open > 0 { "degraded" } else { "ok" }.to_string(),
            brownout: degraded,
            breakers_open: open as u64,
            components,
            breakers: breakers.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::registry::GraphRegistry;
    use crate::scheduler::{BreakerConfig, SchedulerConfig};
    use gswitch_graph::gen;
    use std::sync::Arc;

    #[test]
    fn healthy_runtime_reports_ok_everywhere() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let s = Scheduler::new(registry, Arc::clone(&cache), SchedulerConfig::default());
        let report = HealthReport::gather(&s, &cache, None);
        assert_eq!(report.status, "ok");
        assert!(!report.brownout);
        assert_eq!(report.breakers_open, 0);
        assert!(report.breakers.is_empty());
        let names: Vec<&str> = report.components.iter().map(|c| c.component.as_str()).collect();
        assert_eq!(names, ["scheduler", "breakers", "brownout", "cache"]);
        assert!(report.components.iter().all(|c| c.status == "ok"), "{report:?}");
        s.shutdown();
    }

    #[test]
    fn open_breaker_degrades_the_report() {
        use crate::breaker::BreakerKey;
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let fp = registry.get("kron").unwrap().fingerprint().0;
        let cache = Arc::new(ConfigCache::new());
        let config = SchedulerConfig {
            breaker: BreakerConfig { failure_threshold: 1, cooldown_ms: 600_000 },
            ..Default::default()
        };
        let s = Scheduler::new(registry, Arc::clone(&cache), config);
        s.breakers().record_failure(BreakerKey { fingerprint: fp, algo: "bfs" }, false);
        let report = HealthReport::gather(&s, &cache, None);
        assert_eq!(report.status, "degraded");
        assert_eq!(report.breakers_open, 1);
        assert_eq!(report.breakers.len(), 1);
        assert_eq!(report.breakers[0].algo, "bfs");
        // The report round-trips through the wire format.
        let json = serde_json::to_string(&report).unwrap();
        let back: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.status, "degraded");
        assert_eq!(back.breakers_open, 1);
        s.shutdown();
    }

    #[test]
    fn health_answers_with_shards_attached() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let s = Scheduler::new(registry, Arc::clone(&cache), SchedulerConfig::default());
        let svc = ShardService::new(Arc::clone(s.obs()), 4, 2);
        let g = Arc::new(gen::erdos_renyi(100, 400, 5).with_name("er-h"));
        let _ = svc.batch(&g, 0, None, None, &[Query::Cc], 1, "er-h").expect("batch");
        let report = HealthReport::gather(&s, &cache, Some(&svc));
        let shard_row = report.components.iter().find(|c| c.component == "shards").unwrap();
        assert!(shard_row.detail.contains("1 resident plans"), "{}", shard_row.detail);
        s.shutdown();
    }
}
