//! Typed queries and structured results.

/// A query against a registered graph — one of the paper's five
/// benchmarks, with its per-algorithm parameter.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Query {
    /// Breadth-first search from `src`.
    Bfs {
        /// Source vertex.
        src: u32,
    },
    /// Single-source shortest paths from `src` (runs on the entry's
    /// weighted twin when the graph is unweighted).
    Sssp {
        /// Source vertex.
        src: u32,
    },
    /// Delta-PageRank to tolerance `eps`.
    Pr {
        /// Convergence tolerance.
        eps: f64,
    },
    /// Connected components.
    Cc,
    /// Single-source betweenness centrality (Brandes dependencies).
    Bc {
        /// Source vertex.
        src: u32,
    },
}

impl Query {
    /// Algorithm tag used in cache keys and reports.
    pub fn algo(&self) -> &'static str {
        match self {
            Query::Bfs { .. } => "bfs",
            Query::Sssp { .. } => "sssp",
            Query::Pr { .. } => "pr",
            Query::Cc => "cc",
            Query::Bc { .. } => "bc",
        }
    }

    /// The source vertex, for queries that have one.
    pub fn source(&self) -> Option<u32> {
        match *self {
            Query::Bfs { src } | Query::Sssp { src } | Query::Bc { src } => Some(src),
            Query::Pr { .. } | Query::Cc => None,
        }
    }
}

/// Priority class of a submission, used by the scheduler's shed policy
/// when the queue crosses its occupancy watermark: under pressure,
/// lower classes are dropped to admit higher ones. Within a class the
/// queue stays FIFO.
#[derive(
    Clone,
    Copy,
    Debug,
    Default,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    serde::Serialize,
    serde::Deserialize,
)]
pub enum Priority {
    /// Background work: first to be shed.
    BestEffort,
    /// Bulk/offline work: the default class.
    #[default]
    Batch,
    /// Latency-sensitive user traffic: shed last, served first.
    Interactive,
}

impl Priority {
    /// Shedding rank: higher values survive overload longer and are
    /// picked up first. (`Ord` derives from variant order, which is
    /// arranged lowest-to-highest; this makes the intent explicit.)
    pub fn rank(self) -> u8 {
        match self {
            Priority::BestEffort => 0,
            Priority::Batch => 1,
            Priority::Interactive => 2,
        }
    }

    /// Wire/display tag.
    pub fn tag(self) -> &'static str {
        match self {
            Priority::BestEffort => "best-effort",
            Priority::Batch => "batch",
            Priority::Interactive => "interactive",
        }
    }
}

/// A job submission: which graph, what query, how long it may take.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// Registry name of the graph.
    pub graph: String,
    /// The query to run.
    pub query: Query,
    /// Per-job deadline in milliseconds, measured from admission
    /// (queue wait included). `None` uses the scheduler default.
    pub timeout_ms: Option<u64>,
    /// Priority class for overload shedding. `None` (an absent field on
    /// the wire — older clients keep working) means [`Priority::Batch`].
    pub priority: Option<Priority>,
}

impl JobSpec {
    /// The effective priority class ([`Priority::Batch`] when unset).
    pub fn priority(&self) -> Priority {
        self.priority.unwrap_or_default()
    }
}

/// Terminal state of a job.
///
/// The full taxonomy (see DESIGN.md §"Failure model" and §4.14):
/// `Ok` / `Error` / `Failed` / `Cancelled` / `DeadlineExceeded` /
/// `Shed` / `BreakerOpen`.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum JobStatus {
    /// Completed within its deadline.
    Ok,
    /// Exceeded its deadline — while queued, mid-run (the engine was
    /// stopped cooperatively), or discovered at completion. The result
    /// is withheld in every case.
    DeadlineExceeded,
    /// Cancelled by the caller — before execution started, or mid-run
    /// at a super-step boundary.
    Cancelled,
    /// The job itself was invalid (unknown graph, bad parameter,
    /// non-convergence). Retrying the same request fails the same way.
    Error,
    /// The runtime failed the job (worker panic, worker death). The
    /// request may be fine — retrying can succeed.
    Failed,
    /// Dropped from the queue by the overload shed policy to make room
    /// for higher-priority work. The request was fine — retrying (with
    /// backoff) can succeed once pressure eases.
    Shed,
    /// Failed fast because the circuit breaker for this
    /// (graph, algorithm) is open after repeated infrastructure
    /// failures. Retry only after the breaker's cooldown; hammering an
    /// open breaker is pointless by construction.
    BreakerOpen,
}

impl JobStatus {
    /// Whether an immediate retry of the identical request could
    /// plausibly succeed: true for infrastructure failures and shed
    /// jobs. `BreakerOpen` is deliberately *not* here — see
    /// [`JobStatus::retry_after_cooldown`].
    pub fn is_retryable(self) -> bool {
        matches!(self, JobStatus::Failed | JobStatus::Shed)
    }

    /// Whether a retry could succeed *after the breaker cooldown* —
    /// the statuses a client should back off on rather than hammer.
    pub fn retry_after_cooldown(self) -> bool {
        matches!(self, JobStatus::BreakerOpen)
    }
}

/// One engine super-step, trimmed for the wire.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct IterStat {
    /// Super-step index.
    pub iteration: u32,
    /// The kernel configuration that ran, in display form
    /// (e.g. `push/queue/twc/remain/standalone`).
    pub config: String,
    /// Whether the selector actually decided this step.
    pub decided: bool,
    /// Active vertices.
    pub v_active: u64,
    /// Active edges.
    pub e_active: u64,
    /// Simulated filter time (ms).
    pub filter_ms: f64,
    /// Simulated expand time (ms).
    pub expand_ms: f64,
    /// Tuning overhead (ms).
    pub overhead_ms: f64,
}

/// A named scalar result (e.g. `reached`, `components`).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Metric {
    /// Metric name.
    pub name: String,
    /// Metric value.
    pub value: f64,
}

impl Metric {
    /// Shorthand constructor.
    pub fn new(name: &str, value: f64) -> Self {
        Metric { name: name.to_string(), value }
    }
}

/// Full per-vertex result vectors, for callers that want more than the
/// summary metrics (tests compare these against reference
/// implementations; the serve binary strips them unless asked).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Payload {
    /// BFS levels (`u32::MAX` = unreachable).
    Levels {
        /// Per-vertex values.
        values: Vec<u32>,
    },
    /// SSSP distances (`u32::MAX` = unreachable).
    Distances {
        /// Per-vertex values.
        values: Vec<u32>,
    },
    /// CC labels (minimum vertex id per component).
    Labels {
        /// Per-vertex values.
        values: Vec<u32>,
    },
    /// PageRank scores.
    Ranks {
        /// Per-vertex values.
        values: Vec<f64>,
    },
    /// BC dependency scores.
    Scores {
        /// Per-vertex values.
        values: Vec<f64>,
    },
}

/// Everything the scheduler reports back about one job.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct JobOutcome {
    /// Job id assigned at admission.
    pub id: u64,
    /// Graph the job ran against.
    pub graph: String,
    /// Algorithm tag.
    pub algo: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Error description when `status` is `Error` (what was wrong with
    /// the request) or `Failed` (the worker's panic payload).
    pub error: Option<String>,
    /// `"hit"` or `"miss"` when the tuned-config cache was consulted.
    pub cache: Option<String>,
    /// Dominant kernel configuration of the run, display form.
    pub config: Option<String>,
    /// Wall-clock time from admission to completion (ms).
    pub wall_ms: f64,
    /// Total simulated device time (ms).
    pub sim_ms: f64,
    /// Whether the engine converged.
    pub converged: bool,
    /// Summary metrics.
    pub metrics: Vec<Metric>,
    /// Per-iteration engine trace.
    pub iterations: Vec<IterStat>,
    /// Full result vectors (stripped on the wire by default).
    pub payload: Option<Payload>,
}

impl JobOutcome {
    /// A copy without the bulky per-vertex payload, for the wire.
    pub fn without_payload(mut self) -> Self {
        self.payload = None;
        self
    }

    /// Fetch a summary metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.name == name).map(|m| m.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_json_shapes() {
        let q = Query::Bfs { src: 3 };
        let j = serde_json::to_string(&q).unwrap();
        assert_eq!(j, r#"{"Bfs":{"src":3}}"#);
        let back: Query = serde_json::from_str(&j).unwrap();
        assert_eq!(back, q);

        let cc: Query = serde_json::from_str("\"Cc\"").unwrap();
        assert_eq!(cc, Query::Cc);

        let pr: Query = serde_json::from_str(r#"{"Pr":{"eps":0.001}}"#).unwrap();
        assert_eq!(pr, Query::Pr { eps: 0.001 });
    }

    #[test]
    fn algo_tags() {
        assert_eq!(Query::Bfs { src: 0 }.algo(), "bfs");
        assert_eq!(Query::Sssp { src: 0 }.algo(), "sssp");
        assert_eq!(Query::Pr { eps: 1e-3 }.algo(), "pr");
        assert_eq!(Query::Cc.algo(), "cc");
        assert_eq!(Query::Bc { src: 0 }.algo(), "bc");
        assert_eq!(Query::Cc.source(), None);
        assert_eq!(Query::Bc { src: 9 }.source(), Some(9));
    }

    #[test]
    fn job_status_wire_shapes_and_retryability() {
        for (status, wire) in [
            (JobStatus::Ok, "\"Ok\""),
            (JobStatus::DeadlineExceeded, "\"DeadlineExceeded\""),
            (JobStatus::Cancelled, "\"Cancelled\""),
            (JobStatus::Error, "\"Error\""),
            (JobStatus::Failed, "\"Failed\""),
            (JobStatus::Shed, "\"Shed\""),
            (JobStatus::BreakerOpen, "\"BreakerOpen\""),
        ] {
            assert_eq!(serde_json::to_string(&status).unwrap(), wire);
            let back: JobStatus = serde_json::from_str(wire).unwrap();
            assert_eq!(back, status);
        }
        // Immediately retryable: infrastructure failures and shed work.
        assert!(JobStatus::Failed.is_retryable());
        assert!(JobStatus::Shed.is_retryable());
        for s in [
            JobStatus::Ok,
            JobStatus::Error,
            JobStatus::Cancelled,
            JobStatus::DeadlineExceeded,
            JobStatus::BreakerOpen,
        ] {
            assert!(!s.is_retryable(), "{s:?} must not be immediately retryable");
        }
        // Retry-after-cooldown: only an open breaker.
        assert!(JobStatus::BreakerOpen.retry_after_cooldown());
        for s in [JobStatus::Ok, JobStatus::Failed, JobStatus::Shed, JobStatus::Error] {
            assert!(!s.retry_after_cooldown(), "{s:?} must not ask for a cooldown retry");
        }
    }

    #[test]
    fn jobspec_roundtrip_with_missing_timeout() {
        let text = r#"{"graph":"g1","query":{"Sssp":{"src":5}},"timeout_ms":null}"#;
        let spec: JobSpec = serde_json::from_str(text).unwrap();
        assert_eq!(spec.graph, "g1");
        assert_eq!(spec.query, Query::Sssp { src: 5 });
        assert_eq!(spec.timeout_ms, None);
        // `priority` absent on the wire (pre-shedding clients): Batch.
        assert_eq!(spec.priority, None);
        assert_eq!(spec.priority(), Priority::Batch);
    }

    #[test]
    fn priority_wire_shapes_and_ordering() {
        for (p, wire) in [
            (Priority::BestEffort, "\"BestEffort\""),
            (Priority::Batch, "\"Batch\""),
            (Priority::Interactive, "\"Interactive\""),
        ] {
            assert_eq!(serde_json::to_string(&p).unwrap(), wire);
            let back: Priority = serde_json::from_str(wire).unwrap();
            assert_eq!(back, p);
        }
        assert!(Priority::BestEffort < Priority::Batch);
        assert!(Priority::Batch < Priority::Interactive);
        assert_eq!(Priority::default(), Priority::Batch);
        assert_eq!(Priority::Interactive.rank(), 2);
        assert_eq!(Priority::Interactive.tag(), "interactive");
    }
}
