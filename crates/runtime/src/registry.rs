//! The graph registry: load once, fingerprint once, share everywhere.
//!
//! Every query names its graph; the registry owns the only copy. A
//! graph is fingerprinted (content hash over its CSR arrays, see
//! [`gswitch_graph::fingerprint`]) exactly once at registration, and
//! all queries against it share the same `Arc` — a thousand concurrent
//! BFS jobs on the same social graph cost one graph's worth of memory.

use gswitch_graph::{gen, io, validate, CsrValidator, Fingerprint, Graph};
use gswitch_obs::sync::RwLock;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Weight attachment parameters for the SSSP twin — the same the bench
/// harness uses, so tuned configs transfer between the two.
const WEIGHT_MAX: u32 = 64;
const WEIGHT_SEED: u64 = 0xC0FFEE;

/// One registered graph: the shared topology, its content fingerprint,
/// and a lazily built weighted twin for weight-demanding queries.
#[derive(Debug)]
pub struct GraphEntry {
    name: String,
    graph: Arc<Graph>,
    fingerprint: Fingerprint,
    weighted: OnceLock<Arc<Graph>>,
}

impl GraphEntry {
    fn new(name: String, graph: Graph) -> Self {
        let fingerprint = graph.fingerprint();
        GraphEntry { name, graph: Arc::new(graph), fingerprint, weighted: OnceLock::new() }
    }

    /// Registry name of this entry.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Content fingerprint, computed once at registration.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The graph with edge weights: the graph itself when already
    /// weighted, otherwise a deterministic weighted twin built on first
    /// use and shared afterwards (SSSP on an unweighted graph).
    pub fn weighted(&self) -> Arc<Graph> {
        if self.graph.is_weighted() {
            return Arc::clone(&self.graph);
        }
        Arc::clone(self.weighted.get_or_init(|| {
            Arc::new(gen::with_random_weights(&self.graph, WEIGHT_MAX, WEIGHT_SEED))
        }))
    }
}

/// Thread-safe name → [`GraphEntry`] map.
#[derive(Default, Debug)]
pub struct GraphRegistry {
    entries: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
}

impl GraphRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `graph` under `name`, replacing any previous entry of
    /// that name. Fingerprinting happens here, once.
    pub fn insert(&self, name: impl Into<String>, graph: Graph) -> Arc<GraphEntry> {
        let name = name.into();
        let entry = Arc::new(GraphEntry::new(name.clone(), graph));
        self.entries.write().insert(name, Arc::clone(&entry));
        entry
    }

    /// Register `graph` under `name` after structural validation —
    /// the untrusted-input front door. A graph whose CSR invariants or
    /// weight alignment fail is refused with the joined issue list, is
    /// never inserted, and is counted in
    /// [`gswitch_graph::validate::graphs_rejected`].
    pub fn insert_validated(
        &self,
        name: impl Into<String>,
        graph: Graph,
    ) -> Result<Arc<GraphEntry>, String> {
        let name = name.into();
        let report = CsrValidator::new().validate_graph(&graph);
        if !report.is_valid() {
            validate::note_graph_rejected();
            return Err(format!("graph `{name}` rejected: {report}"));
        }
        Ok(self.insert(name, graph))
    }

    /// Load a graph file (MatrixMarket, edge list, or DIMACS — whatever
    /// [`gswitch_graph::io::load_path`] accepts) and register it.
    pub fn load_path(
        &self,
        name: impl Into<String>,
        path: &str,
    ) -> Result<Arc<GraphEntry>, io::LoadError> {
        let graph = io::load_path(path)?;
        Ok(self.insert(name, graph))
    }

    /// [`GraphRegistry::load_path`] with explicit [`io::LoadOptions`]
    /// (size limits, strict-vs-repair mode) and post-load structural
    /// validation. Returns the entry plus the loader's repair report so
    /// callers can surface what repair-mode loading had to fix.
    pub fn load_path_validated(
        &self,
        name: impl Into<String>,
        path: &str,
        opts: &io::LoadOptions,
    ) -> Result<(Arc<GraphEntry>, gswitch_graph::BuildReport), String> {
        let loaded = io::load_path_opts(path, opts).map_err(|e| e.to_string())?;
        let entry = self.insert_validated(name, loaded.graph)?;
        Ok((entry, loaded.report))
    }

    /// Look up a registered graph.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.entries.read().get(name).cloned()
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.entries.read().keys().cloned().collect()
    }

    /// One [`GraphSummary`] per entry, for the serve protocol's
    /// `stats` command.
    pub fn summaries(&self) -> Vec<GraphSummary> {
        self.entries
            .read()
            .values()
            .map(|e| GraphSummary {
                name: e.name.clone(),
                fingerprint: e.fingerprint.to_hex(),
                vertices: e.graph.num_vertices(),
                edges: e.graph.num_edges(),
            })
            .collect()
    }
}

/// A registry entry as reported by the serve protocol's `stats`
/// command.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct GraphSummary {
    /// Registry name.
    pub name: String,
    /// Content fingerprint, hex form.
    pub fingerprint: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_share_one_graph() {
        let reg = GraphRegistry::new();
        let e = reg.insert("k", gen::kronecker(7, 8, 1));
        let g1 = reg.get("k").unwrap();
        assert!(Arc::ptr_eq(e.graph(), g1.graph()));
        assert_eq!(reg.len(), 1);
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn fingerprint_computed_once_and_stable() {
        let reg = GraphRegistry::new();
        let a = reg.insert("a", gen::erdos_renyi(64, 256, 3));
        let b = reg.insert("b", gen::erdos_renyi(64, 256, 3));
        // Same content under different names → same fingerprint.
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.graph().fingerprint());
    }

    #[test]
    fn weighted_twin_is_lazy_and_shared() {
        let reg = GraphRegistry::new();
        let e = reg.insert("g", gen::grid2d(6, 6, 0.0, 1));
        assert!(!e.graph().is_weighted());
        let w1 = e.weighted();
        let w2 = e.weighted();
        assert!(Arc::ptr_eq(&w1, &w2));
        assert!(w1.is_weighted());
        // Topology is unchanged by weighting.
        assert_eq!(w1.out_csr(), e.graph().out_csr());
    }

    #[test]
    fn already_weighted_graph_is_its_own_twin() {
        let reg = GraphRegistry::new();
        let g = gen::with_random_weights(&gen::grid2d(5, 5, 0.0, 2), 16, 9);
        let e = reg.insert("w", g);
        assert!(Arc::ptr_eq(&e.weighted(), e.graph()));
    }

    #[test]
    fn insert_validated_accepts_sound_graphs() {
        let reg = GraphRegistry::new();
        let e = reg.insert_validated("ok", gen::grid2d(4, 4, 0.0, 1)).unwrap();
        assert_eq!(e.name(), "ok");
        assert!(reg.get("ok").is_some());
    }

    #[test]
    fn insert_validated_rejects_and_counts_bad_graphs() {
        use gswitch_graph::Csr;
        // Sound topology, corrupt weights: zero weight + misaligned
        // length — exactly what a hostile pre-built graph could smuggle
        // past the builder.
        let csr = Csr::new(vec![0, 1, 2], vec![1, 0]);
        let bad = Graph::from_parts(csr, None, Some(vec![0]), None, "bad");
        let reg = GraphRegistry::new();
        let before = validate::graphs_rejected();
        let err = reg.insert_validated("bad", bad).map(|_| ()).unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        assert!(reg.is_empty(), "rejected graph must not be registered");
        assert!(validate::graphs_rejected() > before);
    }

    #[test]
    fn replace_under_same_name() {
        let reg = GraphRegistry::new();
        reg.insert("g", gen::kronecker(6, 4, 1));
        let fp1 = reg.get("g").unwrap().fingerprint();
        reg.insert("g", gen::kronecker(6, 4, 2));
        let fp2 = reg.get("g").unwrap().fingerprint();
        assert_ne!(fp1, fp2);
        assert_eq!(reg.len(), 1);
    }
}
