//! The tuned-config cache.
//!
//! GSWITCH's tuning happens per super-step, but its *output* — the
//! configuration that dominated a converged run — is a durable fact
//! about (graph, algorithm, workload shape). The cache keys that fact
//! by `(graph fingerprint, algorithm, feature bucket)` so a warm
//! process can seed the engine and skip the cold-start decisions. The
//! feature bucket quantizes the Table 1 graph attributes that drive the
//! selector's graph-level choices (size, density, skew), so two graphs
//! with the same fingerprint always bucket identically, and re-tuning
//! is reserved for genuinely different workload shapes.
//!
//! The cache persists to disk as a single JSON document and keeps
//! hit/miss/store counters for observability (`--bench-load` reports
//! the hit rate; the serve protocol exposes it via `stats`).

use gswitch_graph::{Fingerprint, GraphStats};
use gswitch_kernels::KernelConfig;
use gswitch_obs::sync::RwLock;
use gswitch_obs::{Counter, MetricsRegistry};
use std::collections::HashMap;
use std::path::Path;

/// Cache key: which graph, which algorithm, which workload shape.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content fingerprint of the graph.
    pub fingerprint: Fingerprint,
    /// Algorithm tag (`"bfs"`, `"sssp"`, `"pr"`, `"cc"`, `"bc"`).
    pub algo: String,
    /// Quantized graph-feature bucket (see [`feature_bucket`]).
    pub bucket: String,
}

impl CacheKey {
    /// Build a key; `bucket` normally comes from [`feature_bucket`].
    pub fn new(fingerprint: Fingerprint, algo: &str, bucket: &str) -> Self {
        CacheKey { fingerprint, algo: algo.to_string(), bucket: bucket.to_string() }
    }

    /// Flat string form used for persistence:
    /// `<fingerprint-hex>/<algo>/<bucket>`.
    pub fn flat(&self) -> String {
        format!("{}/{}/{}", self.fingerprint.to_hex(), self.algo, self.bucket)
    }

    /// Parse the flat form back; `None` if malformed.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.splitn(3, '/');
        let fp = u64::from_str_radix(parts.next()?, 16).ok()?;
        let algo = parts.next()?;
        let bucket = parts.next()?;
        Some(CacheKey::new(Fingerprint(fp), algo, bucket))
    }
}

/// Quantize the selector-relevant graph attributes into a coarse bucket
/// string: log₂|V|, log₂ of the average degree, and the Gini quintile
/// of the degree distribution (quintiles, not deciles, so graphs of the
/// same family and size land together across generator seeds).
/// Identical graphs always agree; graphs that would drive the selector
/// differently usually disagree.
pub fn feature_bucket(stats: &GraphStats) -> String {
    let lv = (stats.num_vertices.max(1) as f64).log2().round() as i64;
    let ld = stats.avg_degree.max(0.0625).log2().round() as i64;
    let gini = (stats.gini.clamp(0.0, 0.999) * 5.0).floor() as i64;
    format!("v{lv}d{ld}g{gini}")
}

/// Counter snapshot (see [`ConfigCache::counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheCounters {
    /// Lookups that found a config.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Configs written.
    pub stores: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Persisted-cache loads that failed to parse and degraded to an
    /// empty cache (see [`ConfigCache::load_or_empty`]).
    pub load_failed: u64,
}

impl CacheCounters {
    /// Hits over lookups, 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One persisted cache line (flat key → config).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct CacheRecord {
    key: String,
    config: KernelConfig,
}

/// The persisted document.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct CacheFile {
    version: u32,
    entries: Vec<CacheRecord>,
}

/// Thread-safe tuned-config store with hit/miss accounting.
///
/// The counters are `gswitch_obs` handles so a serving process can
/// share them with its unified [`MetricsRegistry`] (see
/// [`ConfigCache::bind_metrics`]); standalone use needs no registry.
#[derive(Default, Debug)]
pub struct ConfigCache {
    entries: RwLock<HashMap<String, KernelConfig>>,
    hits: Counter,
    misses: Counter,
    stores: Counter,
    load_failed: Counter,
}

impl ConfigCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register this cache's counters into `registry` under the
    /// canonical names, sharing state: increments show up in both the
    /// legacy [`ConfigCache::counters`] shape and the registry snapshot.
    pub fn bind_metrics(&self, registry: &MetricsRegistry) {
        registry.adopt_counter(crate::obs::metric::CACHE_HITS, &self.hits);
        registry.adopt_counter(crate::obs::metric::CACHE_MISSES, &self.misses);
        registry.adopt_counter(crate::obs::metric::CACHE_STORES, &self.stores);
        registry.adopt_counter(crate::obs::metric::CACHE_LOAD_FAILED, &self.load_failed);
    }

    /// Look up a tuned config, counting the hit or miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<KernelConfig> {
        let got = self.entries.read().get(&key.flat()).copied();
        match got {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        got
    }

    /// Look without touching the counters (diagnostics).
    pub fn peek(&self, key: &CacheKey) -> Option<KernelConfig> {
        self.entries.read().get(&key.flat()).copied()
    }

    /// Remember `config` as the tuned choice for `key`.
    pub fn store(&self, key: &CacheKey, config: KernelConfig) {
        self.stores.inc();
        let mut entries = self.entries.write();
        // Fault site fired *inside* the write lock on purpose: an
        // injected panic here poisons the lock, which the poison-safe
        // wrapper must survive (tests/faults.rs).
        crate::faults::fire(crate::faults::site::CACHE_STORE);
        entries.insert(key.flat(), config);
    }

    /// Current counter values.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.get(),
            misses: self.misses.get(),
            stores: self.stores.get(),
            entries: self.entries.read().len() as u64,
            load_failed: self.load_failed.get(),
        }
    }

    /// Zero the hit/miss/store counters (entries are kept) — used
    /// between the cold and warm phases of `--bench-load`.
    pub fn reset_counters(&self) {
        self.hits.reset();
        self.misses.reset();
        self.stores.reset();
    }

    /// Serialize the whole cache as a JSON document.
    pub fn to_json(&self) -> String {
        let map = self.entries.read();
        let mut entries: Vec<CacheRecord> =
            map.iter().map(|(k, v)| CacheRecord { key: k.clone(), config: *v }).collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        // Serializing owned records cannot fail in practice; if it ever
        // does, persisting an empty (loadable) document loses cached
        // configs but never takes the server down with it.
        serde_json::to_string_pretty(&CacheFile { version: 1, entries })
            .unwrap_or_else(|_| "{\"version\":1,\"entries\":[]}".to_string())
    }

    /// Rebuild a cache from [`ConfigCache::to_json`] output. Counters
    /// start at zero.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        let file: CacheFile = serde_json::from_str(text)?;
        let cache = ConfigCache::new();
        {
            let mut map = cache.entries.write();
            for rec in file.entries {
                map.insert(rec.key, rec.config);
            }
        }
        Ok(cache)
    }

    /// Merge every entry of `other` into this cache (other wins on
    /// conflicts); counters are untouched. Lets a long-lived server
    /// absorb a persisted cache without replacing what it has learned
    /// since startup.
    pub fn absorb(&self, other: &ConfigCache) {
        let theirs = other.entries.read();
        let mut mine = self.entries.write();
        for (k, v) in theirs.iter() {
            mine.insert(k.clone(), *v);
        }
    }

    /// Persist to `path` as JSON, crash-safely: the document is written
    /// to a temp file in the same directory, fsynced, and renamed over
    /// the target. A crash at any point leaves either the old file or
    /// the new one — never a truncated hybrid that would cost every
    /// tuned config on the next [`ConfigCache::load_or_empty`].
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        use std::io::Write as _;
        let path = path.as_ref();
        // Sibling temp path (same directory, so the rename cannot cross
        // filesystems).
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.to_json().as_bytes())?;
            file.sync_all()?;
            drop(file);
            // The crash window the fault suite exercises: temp written
            // and durable, target still untouched.
            crate::faults::fire(crate::faults::site::CACHE_SAVE);
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Load a cache persisted by [`ConfigCache::save`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Load a persisted cache, degrading instead of failing: a missing
    /// file yields a fresh empty cache (normal first run), and a
    /// truncated/corrupt file yields an empty cache with `load_failed`
    /// counted — a serving process must start either way, because the
    /// cache is an optimization, never a correctness dependency.
    pub fn load_or_empty(path: impl AsRef<Path>) -> Self {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(_) => return Self::new(),
        };
        let text = crate::faults::transform_text(crate::faults::site::CACHE_LOAD, text);
        match Self::from_json(&text) {
            Ok(cache) => cache,
            Err(_) => {
                let cache = Self::new();
                cache.load_failed.inc();
                cache
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_graph::gen;
    use gswitch_kernels::KernelConfig;

    fn key(n: u64) -> CacheKey {
        CacheKey::new(Fingerprint(n), "bfs", "v10d3g7")
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ConfigCache::new();
        assert_eq!(cache.lookup(&key(1)), None);
        assert_eq!(cache.counters().misses, 1);
        assert_eq!(cache.counters().hits, 0);

        cache.store(&key(1), KernelConfig::push_baseline());
        assert_eq!(cache.lookup(&key(1)), Some(KernelConfig::push_baseline()));
        assert_eq!(cache.lookup(&key(2)), None);

        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.stores, c.entries), (1, 2, 1, 1));
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);

        cache.reset_counters();
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.stores), (0, 0, 0));
        assert_eq!(c.entries, 1, "entries survive a counter reset");
    }

    #[test]
    fn bind_metrics_shares_counter_state() {
        let cache = ConfigCache::new();
        let registry = MetricsRegistry::new();
        cache.bind_metrics(&registry);
        cache.lookup(&key(1)); // miss
        cache.store(&key(1), KernelConfig::push_baseline());
        cache.lookup(&key(1)); // hit
        let snap = registry.snapshot();
        assert_eq!(snap.counter(crate::obs::metric::CACHE_HITS), 1);
        assert_eq!(snap.counter(crate::obs::metric::CACHE_MISSES), 1);
        assert_eq!(snap.counter(crate::obs::metric::CACHE_STORES), 1);
        // The legacy shape still reports the same numbers.
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.stores), (1, 1, 1));
    }

    #[test]
    fn peek_does_not_count() {
        let cache = ConfigCache::new();
        cache.store(&key(5), KernelConfig::gunrock_like());
        assert!(cache.peek(&key(5)).is_some());
        assert!(cache.peek(&key(6)).is_none());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (0, 0));
    }

    #[test]
    fn json_roundtrip() {
        let cache = ConfigCache::new();
        for (i, cfg) in KernelConfig::all_shapes().into_iter().enumerate().take(6) {
            cache.store(&CacheKey::new(Fingerprint(i as u64), "pr", "v8d2g3"), cfg);
        }
        let restored = ConfigCache::from_json(&cache.to_json()).unwrap();
        for (i, cfg) in KernelConfig::all_shapes().into_iter().enumerate().take(6) {
            let k = CacheKey::new(Fingerprint(i as u64), "pr", "v8d2g3");
            assert_eq!(restored.peek(&k), Some(cfg), "shape {i}");
        }
        assert_eq!(restored.counters().entries, 6);
    }

    #[test]
    fn save_load_disk_roundtrip() {
        let cache = ConfigCache::new();
        cache.store(&key(7), KernelConfig::gunrock_like());
        let path = std::env::temp_dir().join("gswitch-cache-test.json");
        cache.save(&path).unwrap();
        let back = ConfigCache::load(&path).unwrap();
        assert_eq!(back.peek(&key(7)), Some(KernelConfig::gunrock_like()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_residue() {
        let cache = ConfigCache::new();
        cache.store(&key(3), KernelConfig::push_baseline());
        let path = std::env::temp_dir().join("gswitch-cache-atomic-test.json");
        // Pre-existing content survives until the rename lands.
        std::fs::write(&path, "old-not-json").unwrap();
        cache.save(&path).unwrap();
        let back = ConfigCache::load(&path).unwrap();
        assert_eq!(back.peek(&key(3)), Some(KernelConfig::push_baseline()));
        let tmp = {
            let mut t = path.as_os_str().to_os_string();
            t.push(".tmp");
            std::path::PathBuf::from(t)
        };
        assert!(!tmp.exists(), "successful save must not leave its temp file behind");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_or_empty_degrades_on_corruption() {
        let dir = std::env::temp_dir();

        // Missing file: a fresh cache, not a load failure.
        let cache = ConfigCache::load_or_empty(dir.join("gswitch-no-such-cache.json"));
        assert_eq!(cache.counters().entries, 0);
        assert_eq!(cache.counters().load_failed, 0);

        // Truncated JSON: empty cache, load_failed counted.
        let path = dir.join("gswitch-corrupt-cache-test.json");
        let full = {
            let c = ConfigCache::new();
            c.store(&key(1), KernelConfig::push_baseline());
            c.to_json()
        };
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let cache = ConfigCache::load_or_empty(&path);
        assert_eq!(cache.counters().entries, 0, "corrupt file must yield an empty cache");
        assert_eq!(cache.counters().load_failed, 1);
        // The degraded cache is fully usable.
        cache.store(&key(2), KernelConfig::gunrock_like());
        assert_eq!(cache.lookup(&key(2)), Some(KernelConfig::gunrock_like()));

        // A valid file still round-trips through the degrading loader.
        std::fs::write(&path, &full).unwrap();
        let cache = ConfigCache::load_or_empty(&path);
        assert_eq!(cache.counters().entries, 1);
        assert_eq!(cache.counters().load_failed, 0);
        assert_eq!(cache.peek(&key(1)), Some(KernelConfig::push_baseline()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flat_key_roundtrip() {
        let k = CacheKey::new(Fingerprint(0xDEAD_BEEF), "sssp", "v12d4g8");
        let parsed = CacheKey::parse(&k.flat()).unwrap();
        assert_eq!(parsed, k);
        assert!(CacheKey::parse("nonsense").is_none());
    }

    #[test]
    fn bucket_is_stable_and_discriminating() {
        let a = gen::kronecker(9, 8, 1);
        let b = gen::kronecker(9, 8, 2);
        // Same family and size → same bucket even across seeds.
        assert_eq!(feature_bucket(a.stats()), feature_bucket(b.stats()));
        // A regular mesh buckets differently from a scale-free graph.
        let road = gen::grid2d(23, 23, 0.0, 1);
        assert_ne!(feature_bucket(a.stats()), feature_bucket(road.stats()));
    }
}
