//! Executing one query: cache lookup → (possibly seeded) engine run →
//! structured result + cache fill.

use crate::cache::{feature_bucket, CacheKey, ConfigCache};
use crate::query::{IterStat, Metric, Payload, Query};
use crate::registry::GraphEntry;
use gswitch_algos::bc::{BcBackward, BcForward};
use gswitch_algos::{Bfs, Cc, PageRank, Sssp};
use gswitch_core::{
    run, run_with_seed_config, EngineOptions, Policy, ProbeHandle, RunReport, StopReason,
};
use gswitch_obs::{RecorderHandle, SpanCtx};
use gswitch_simt::DeviceSpec;

/// What [`execute`] hands back to the scheduler.
#[derive(Debug)]
pub struct Execution {
    /// `Some` when the run probe stopped the engine early (deadline or
    /// cancellation); partial results are present but untrustworthy —
    /// the scheduler withholds them.
    pub stopped: Option<StopReason>,
    /// Whether the tuned-config cache had a seed (`"hit"`/`"miss"`).
    pub cache_hit: bool,
    /// Dominant configuration of the run, display form.
    pub config: Option<String>,
    /// Total simulated device time (ms).
    pub sim_ms: f64,
    /// Whether every engine run converged.
    pub converged: bool,
    /// Summary metrics.
    pub metrics: Vec<Metric>,
    /// Per-iteration trace.
    pub iterations: Vec<IterStat>,
    /// Full result vectors.
    pub payload: Payload,
}

fn iter_stats(report: &RunReport) -> Vec<IterStat> {
    report
        .iterations
        .iter()
        .map(|t| IterStat {
            iteration: t.iteration,
            config: t.config.to_string(),
            decided: t.decided,
            v_active: t.stats.v_active,
            e_active: t.stats.e_active,
            filter_ms: t.filter_ms,
            expand_ms: t.expand_ms,
            overhead_ms: t.overhead_ms,
        })
        .collect()
}

/// Run `query` against `entry`, warm-starting from `cache` and filling
/// it on a miss. Errors (bad source vertex) are returned as strings so
/// the scheduler can report them without dying. An enabled `recorder`
/// receives one decision-trace event per engine iteration (for BC that
/// covers both the forward and backward phases). `probe` is polled at
/// every super-step so a deadline or cancellation stops the run
/// cooperatively; the stop reason comes back in
/// [`Execution::stopped`]. `verify_every` forwards the divergence
/// sentinel's cadence to the engine (0 = off): every N standalone
/// super-steps the chosen variant's frontier is cross-checked against a
/// serial reference derivation, and on mismatch the run repairs and
/// pins to the reference variant. `spans` is the wall-clock span
/// context the engine's super-step/phase spans nest under (typically
/// the scheduler's `Execute` span).
#[allow(clippy::too_many_arguments)]
pub fn execute(
    entry: &GraphEntry,
    query: &Query,
    cache: &ConfigCache,
    policy: &dyn Policy,
    device: &DeviceSpec,
    recorder: RecorderHandle,
    probe: ProbeHandle,
    verify_every: u32,
    spans: SpanCtx,
) -> Result<Execution, String> {
    crate::faults::fire(crate::faults::site::EXECUTOR_START);
    let g = entry.graph();
    let n = g.num_vertices();
    if let Some(src) = query.source() {
        if (src as usize) >= n {
            return Err(format!("source vertex {src} out of range (graph has {n} vertices)"));
        }
    }

    let key = CacheKey::new(entry.fingerprint(), query.algo(), &feature_bucket(g.stats()));
    let seed = cache.lookup(&key);
    let cache_hit = seed.is_some();
    let opts = EngineOptions { recorder, probe, spans, ..EngineOptions::on(device.clone()) }
        .verify_every(verify_every);

    // Run the algorithm; each arm produces (reports, metrics, payload).
    let (reports, metrics, payload) = match *query {
        Query::Bfs { src } => {
            let app = Bfs::new(n, src);
            let report = run_with_seed_config(g, &app, policy, &opts, seed);
            let levels = app.levels();
            let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
            let depth = levels.iter().filter(|&&l| l != u32::MAX).max().copied().unwrap_or(0);
            (
                vec![report],
                vec![Metric::new("reached", reached as f64), Metric::new("depth", depth as f64)],
                Payload::Levels { values: levels },
            )
        }
        Query::Sssp { src } => {
            let wg = entry.weighted();
            let app = Sssp::new(&wg, src);
            let report = run_with_seed_config(&wg, &app, policy, &opts, seed);
            let dist = app.distances();
            let reached = dist.iter().filter(|&&d| d != u32::MAX).count();
            let max_dist = dist.iter().filter(|&&d| d != u32::MAX).max().copied().unwrap_or(0);
            (
                vec![report],
                vec![
                    Metric::new("reached", reached as f64),
                    Metric::new("max_distance", max_dist as f64),
                ],
                Payload::Distances { values: dist },
            )
        }
        Query::Pr { eps } => {
            if !(eps.is_finite() && eps > 0.0) {
                return Err(format!("pr tolerance must be positive and finite, got {eps}"));
            }
            let app = PageRank::new(g, eps);
            let report = run_with_seed_config(g, &app, policy, &opts, seed);
            let ranks = app.ranks();
            let sum: f64 = ranks.iter().sum();
            let max = ranks.iter().cloned().fold(0.0f64, f64::max);
            (
                vec![report],
                vec![Metric::new("rank_sum", sum), Metric::new("rank_max", max)],
                Payload::Ranks { values: ranks },
            )
        }
        Query::Cc => {
            let app = Cc::new(n);
            let report = run_with_seed_config(g, &app, policy, &opts, seed);
            let labels = app.labels();
            let components = labels.iter().enumerate().filter(|&(v, &l)| l == v as u32).count();
            (
                vec![report],
                vec![Metric::new("components", components as f64)],
                Payload::Labels { values: labels },
            )
        }
        Query::Bc { src } => {
            // Mirrors gswitch_algos::bc, but the forward phase (a BFS-like
            // traversal, the part worth seeding) warm-starts from the
            // cache; the backward sweep has its own access pattern and
            // always consults the policy.
            let fwd = BcForward::new(n, src);
            let forward = run_with_seed_config(g, &fwd, policy, &opts, seed);
            let bwd = BcBackward::new(&fwd);
            let backward = run(g, &bwd, policy, &opts);
            let mut scores = bwd.deltas();
            if let Some(s) = scores.get_mut(src as usize) {
                *s = 0.0;
            }
            let nonzero = scores.iter().filter(|&&s| s > 0.0).count();
            let max = scores.iter().cloned().fold(0.0f64, f64::max);
            (
                vec![forward, backward],
                vec![Metric::new("nonzero_scores", nonzero as f64), Metric::new("score_max", max)],
                Payload::Scores { values: scores },
            )
        }
    };

    let converged = reports.iter().all(|r| r.converged);
    let stopped = reports.iter().find_map(|r| r.stopped);
    let sim_ms: f64 = reports.iter().map(|r| r.total_ms()).sum();
    // The first report is the seeded phase; its dominant config is what
    // the cache should remember. A stopped run never converged, so it
    // can never pollute the cache.
    let tuned = reports[0].dominant_config();
    if !cache_hit && converged {
        if let Some(cfg) = tuned {
            cache.store(&key, cfg);
        }
    }
    let iterations = reports.iter().flat_map(iter_stats).collect();

    Ok(Execution {
        stopped,
        cache_hit,
        config: tuned.map(|c| c.to_string()),
        sim_ms,
        converged,
        metrics,
        iterations,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::GraphRegistry;
    use gswitch_algos::reference;
    use gswitch_core::AutoPolicy;
    use gswitch_graph::gen;

    fn setup() -> (GraphRegistry, ConfigCache, DeviceSpec) {
        let reg = GraphRegistry::new();
        reg.insert("kron", gen::kronecker(8, 8, 3));
        (reg, ConfigCache::new(), DeviceSpec::k40m())
    }

    #[test]
    fn bfs_matches_reference_and_fills_cache() {
        let (reg, cache, dev) = setup();
        let e = reg.get("kron").unwrap();
        let r = execute(
            &e,
            &Query::Bfs { src: 0 },
            &cache,
            &AutoPolicy,
            &dev,
            RecorderHandle::none(),
            ProbeHandle::none(),
            0,
            SpanCtx::default(),
        )
        .unwrap();
        assert!(!r.cache_hit);
        assert!(r.converged);
        let Payload::Levels { values } = &r.payload else { panic!("wrong payload") };
        assert_eq!(values, &reference::bfs(e.graph(), 0));
        assert_eq!(cache.counters().stores, 1);

        // Second identical query hits and still matches.
        let r2 = execute(
            &e,
            &Query::Bfs { src: 0 },
            &cache,
            &AutoPolicy,
            &dev,
            RecorderHandle::none(),
            ProbeHandle::none(),
            0,
            SpanCtx::default(),
        )
        .unwrap();
        assert!(r2.cache_hit);
        let Payload::Levels { values } = &r2.payload else { panic!("wrong payload") };
        assert_eq!(values, &reference::bfs(e.graph(), 0));
    }

    #[test]
    fn source_out_of_range_is_an_error() {
        let (reg, cache, dev) = setup();
        let e = reg.get("kron").unwrap();
        let err = execute(
            &e,
            &Query::Bfs { src: 1 << 20 },
            &cache,
            &AutoPolicy,
            &dev,
            RecorderHandle::none(),
            ProbeHandle::none(),
            0,
            SpanCtx::default(),
        );
        assert!(err.is_err());
        // The failed lookup still counted as a... nothing: we error out
        // before consulting the cache.
        assert_eq!(cache.counters().misses, 0);
    }

    #[test]
    fn cc_counts_components() {
        let (reg, cache, dev) = setup();
        reg.insert("two", {
            use gswitch_graph::GraphBuilder;
            GraphBuilder::new(6).edges([(0, 1), (1, 2), (4, 5)]).build()
        });
        let e = reg.get("two").unwrap();
        let r = execute(
            &e,
            &Query::Cc,
            &cache,
            &AutoPolicy,
            &dev,
            RecorderHandle::none(),
            ProbeHandle::none(),
            0,
            SpanCtx::default(),
        )
        .unwrap();
        // Components: {0,1,2}, {3}, {4,5}.
        assert_eq!(r.metrics.iter().find(|m| m.name == "components").unwrap().value, 3.0);
        let Payload::Labels { values } = &r.payload else { panic!("wrong payload") };
        assert_eq!(values, &reference::cc(e.graph()));
    }

    #[test]
    fn sssp_runs_on_weighted_twin() {
        let (reg, cache, dev) = setup();
        let e = reg.get("kron").unwrap();
        let r = execute(
            &e,
            &Query::Sssp { src: 0 },
            &cache,
            &AutoPolicy,
            &dev,
            RecorderHandle::none(),
            ProbeHandle::none(),
            0,
            SpanCtx::default(),
        )
        .unwrap();
        let Payload::Distances { values } = &r.payload else { panic!("wrong payload") };
        assert_eq!(values, &reference::sssp(&e.weighted(), 0));
    }

    #[test]
    fn verify_every_passes_healthy_runs_through_unchanged() {
        let (reg, cache, dev) = setup();
        let e = reg.get("kron").unwrap();
        let r = execute(
            &e,
            &Query::Bfs { src: 0 },
            &cache,
            &AutoPolicy,
            &dev,
            RecorderHandle::none(),
            ProbeHandle::none(),
            1,
            SpanCtx::default(),
        )
        .unwrap();
        assert!(r.converged);
        let Payload::Levels { values } = &r.payload else { panic!("wrong payload") };
        assert_eq!(values, &reference::bfs(e.graph(), 0), "sentinel must not perturb results");
    }

    #[test]
    fn stopped_run_reports_reason_and_skips_cache_fill() {
        use gswitch_core::CancelToken;
        use std::sync::Arc;

        let (reg, cache, dev) = setup();
        let e = reg.get("kron").unwrap();
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let r = execute(
            &e,
            &Query::Bfs { src: 0 },
            &cache,
            &AutoPolicy,
            &dev,
            RecorderHandle::none(),
            ProbeHandle::new(token),
            0,
            SpanCtx::default(),
        )
        .unwrap();
        assert_eq!(r.stopped, Some(StopReason::Cancelled));
        assert!(!r.converged);
        // A stopped run must never be remembered as "the tuned config".
        assert_eq!(cache.counters().stores, 0);
    }

    #[test]
    fn pr_rejects_bad_tolerance() {
        let (reg, cache, dev) = setup();
        let e = reg.get("kron").unwrap();
        assert!(execute(
            &e,
            &Query::Pr { eps: 0.0 },
            &cache,
            &AutoPolicy,
            &dev,
            RecorderHandle::none(),
            ProbeHandle::none(),
            0,
            SpanCtx::default()
        )
        .is_err());
        assert!(execute(
            &e,
            &Query::Pr { eps: f64::NAN },
            &cache,
            &AutoPolicy,
            &dev,
            RecorderHandle::none(),
            ProbeHandle::none(),
            0,
            SpanCtx::default()
        )
        .is_err());
    }
}
