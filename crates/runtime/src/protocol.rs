//! The line-delimited JSON protocol `gswitch-serve` speaks.
//!
//! One request per line on stdin, one JSON response per line on stdout.
//! Requests are a flat object with a `cmd` discriminator:
//!
//! ```json
//! {"cmd":"load","name":"kron","gen":{"kind":"rmat","scale":10,"ef":8,"seed":1}}
//! {"cmd":"load","name":"wiki","path":"graphs/wiki.mtx"}
//! {"cmd":"query","graph":"kron","query":{"Bfs":{"src":0}}}
//! {"cmd":"query","graph":"kron","query":"Cc","timeout_ms":5000,"payload":true}
//! {"cmd":"query","graph":"kron","query":"Cc","priority":"Interactive"}
//! {"cmd":"batch","graph":"kron","queries":[{"Bfs":{"src":0}},"Cc"],"shards":4,"tenant":"t1"}
//! {"cmd":"stats"}
//! {"cmd":"health"}
//! {"cmd":"save_cache","path":"tuned.json"}
//! {"cmd":"load_cache","path":"tuned.json"}
//! {"cmd":"trace","enable":true}
//! {"cmd":"trace","path":"decisions.jsonl","clear":true}
//! {"cmd":"quit"}
//! ```
//!
//! `batch` runs its queries *concurrently* against a resident K-shard
//! partitioning of the graph (built on first use, cached after), under
//! the tenant's admission quota; the response reports per-query
//! outcomes plus batch occupancy, exchange volume, and shard imbalance.
//! Only BFS/PR/CC are batchable — SSSP and BC stay on the single-shard
//! `query` path (priority-driven stepping and two-phase Brandes don't
//! shard).
//!
//! `query` responses are the full [`JobOutcome`](crate::JobOutcome)
//! (per-vertex payload stripped unless `"payload":true`); other
//! commands answer `{"ok":...}` or `{"error":"..."}`. A query's
//! `status` is one of `"Ok"`, `"Error"` (the request itself was bad —
//! not retryable), `"Failed"` (infrastructure fault such as a worker
//! panic — the server retries these transparently, see `--retries`),
//! `"Cancelled"`, `"DeadlineExceeded"` (the job ran past its
//! `timeout_ms`, whether queued, mid-run, or at completion; results
//! are withheld), `"Shed"` (dropped from a full queue to admit
//! higher-priority work — retryable), or `"BreakerOpen"` (the circuit
//! breaker for this graph/algorithm is open — retry after the cooldown
//! the `error` text names). See DESIGN.md's "Failure model" and §4.14
//! for the taxonomy.
//!
//! `priority` on `query` picks the admission class — `"Interactive"`,
//! `"Batch"` (the default), or `"BestEffort"`. Workers drain the queue
//! highest class first, and under overload a full queue sheds strictly
//! lower-priority queued work to admit the newcomer.
//!
//! `health` answers with a per-component report (scheduler occupancy,
//! open breakers, brownout state, cache, shards) and an overall
//! `"ok"`/`"degraded"` status; see [`crate::health::HealthReport`]. It
//! never blocks on workers, so it answers even under full overload.
//!
//! `stats` returns the legacy cache/queue fields plus a `metrics`
//! object — the unified registry snapshot (queue depth, stage latency
//! histograms, job outcome counters including deadline/cancel drops).
//! `trace` controls decision tracing: `enable` toggles it, `path`
//! writes the buffered trace as JSONL (readable by `gswitch-trace`),
//! `clear` empties the buffer; any combination works in one request.

use crate::query::{Priority, Query};
use gswitch_graph::{gen, Graph};

/// A parsed request line.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Request {
    /// Command discriminator: `load`, `query`, `batch`, `stats`,
    /// `health`, `save_cache`, `load_cache`, `trace`, or `quit`.
    pub cmd: String,
    /// Graph name (`load`).
    pub name: Option<String>,
    /// File path (`load` from disk, `save_cache`, `load_cache`).
    pub path: Option<String>,
    /// Synthetic generator spec (`load` without a path).
    pub gen: Option<GenSpec>,
    /// Target graph (`query`).
    pub graph: Option<String>,
    /// The query itself (`query`).
    pub query: Option<Query>,
    /// Per-job deadline override (`query`).
    pub timeout_ms: Option<u64>,
    /// Admission class (`query`): `"Interactive"`, `"Batch"` (the
    /// default when absent), or `"BestEffort"`.
    pub priority: Option<Priority>,
    /// Include per-vertex result vectors in the response (`query`).
    pub payload: Option<bool>,
    /// Turn decision tracing on or off (`trace`).
    pub enable: Option<bool>,
    /// Empty the trace buffer, after any `path` dump (`trace`).
    pub clear: Option<bool>,
    /// Queries to run concurrently against the sharded form (`batch`).
    pub queries: Option<Vec<Query>>,
    /// Shard count override for this batch (`batch`); defaults to the
    /// server's `--shards` setting.
    pub shards: Option<u32>,
    /// Tenant the batch is accounted to for quota admission (`batch`);
    /// defaults to `"default"`.
    pub tenant: Option<String>,
}

/// A synthetic graph recipe, mirroring `gswitch_graph::gen`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct GenSpec {
    /// Family: `rmat`, `er`, `ba`, `grid`, `banded`.
    pub kind: String,
    /// R-MAT scale (`rmat`).
    pub scale: Option<u32>,
    /// R-MAT edge factor (`rmat`).
    pub ef: Option<usize>,
    /// Vertex count (`er`, `ba`, `banded`).
    pub n: Option<usize>,
    /// Edge count (`er`).
    pub m: Option<usize>,
    /// Attachment degree (`ba`) / half band width (`banded`).
    pub d: Option<usize>,
    /// Grid width (`grid`).
    pub w: Option<usize>,
    /// Grid height (`grid`).
    pub h: Option<usize>,
    /// RNG seed (all families).
    pub seed: Option<u64>,
}

impl GenSpec {
    /// Materialize the graph, or explain what is wrong with the spec.
    pub fn build(&self) -> Result<Graph, String> {
        let seed = self.seed.unwrap_or(1);
        match self.kind.as_str() {
            "rmat" => {
                let scale = self.scale.ok_or("rmat needs `scale`")?;
                let ef = self.ef.unwrap_or(8);
                if !(1..=24).contains(&scale) {
                    return Err(format!("rmat scale {scale} out of range 1..=24"));
                }
                Ok(gen::kronecker(scale, ef, seed))
            }
            "er" => {
                let n = self.n.ok_or("er needs `n`")?;
                let m = self.m.unwrap_or(n * 8);
                Ok(gen::erdos_renyi(n, m, seed))
            }
            "ba" => {
                let n = self.n.ok_or("ba needs `n`")?;
                let d = self.d.unwrap_or(4);
                Ok(gen::barabasi_albert(n, d, seed))
            }
            "grid" => {
                let w = self.w.ok_or("grid needs `w`")?;
                let h = self.h.unwrap_or(w);
                Ok(gen::grid2d(w, h, 0.0, seed))
            }
            "banded" => {
                let n = self.n.ok_or("banded needs `n`")?;
                let d = self.d.unwrap_or(8);
                Ok(gen::banded(n, d, 0.0, seed))
            }
            other => Err(format!("unknown generator `{other}` (expected rmat|er|ba|grid|banded)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_query_request() {
        let line = r#"{"cmd":"query","graph":"g","query":{"Bfs":{"src":4}}}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        assert_eq!(req.cmd, "query");
        assert_eq!(req.graph.as_deref(), Some("g"));
        assert_eq!(req.query, Some(Query::Bfs { src: 4 }));
        assert_eq!(req.timeout_ms, None);
        assert_eq!(req.payload, None);
    }

    #[test]
    fn parse_query_with_priority() {
        let line = r#"{"cmd":"query","graph":"g","query":"Cc","priority":"Interactive"}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        assert_eq!(req.priority, Some(Priority::Interactive));
        // Absent priority stays None (the scheduler defaults it to Batch).
        let bare: Request =
            serde_json::from_str(r#"{"cmd":"query","graph":"g","query":"Cc"}"#).unwrap();
        assert_eq!(bare.priority, None);
        // And the field round-trips through serialization.
        let back: Request = serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back.priority, Some(Priority::Interactive));
    }

    #[test]
    fn overload_statuses_round_trip_on_the_wire() {
        use crate::query::JobStatus;
        for (status, wire) in
            [(JobStatus::Shed, "\"Shed\""), (JobStatus::BreakerOpen, "\"BreakerOpen\"")]
        {
            assert_eq!(serde_json::to_string(&status).unwrap(), wire);
            let back: JobStatus = serde_json::from_str(wire).unwrap();
            assert_eq!(back, status);
        }
        // Retry semantics are part of the wire contract: shed work is
        // immediately retryable, breaker-open only after a cooldown.
        assert!(JobStatus::Shed.is_retryable());
        assert!(!JobStatus::BreakerOpen.is_retryable());
        assert!(JobStatus::BreakerOpen.retry_after_cooldown());
    }

    #[test]
    fn parse_load_with_gen() {
        let line = r#"{"cmd":"load","name":"k","gen":{"kind":"rmat","scale":9,"ef":8,"seed":3}}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        let spec = req.gen.unwrap();
        let g = spec.build().unwrap();
        assert_eq!(g.num_vertices(), 1 << 9);
    }

    #[test]
    fn genspec_errors_are_readable() {
        let bad: GenSpec = serde_json::from_str(r#"{"kind":"warp"}"#).unwrap();
        assert!(bad.build().unwrap_err().contains("unknown generator"));
        let no_scale: GenSpec = serde_json::from_str(r#"{"kind":"rmat"}"#).unwrap();
        assert!(no_scale.build().unwrap_err().contains("scale"));
    }

    #[test]
    fn every_family_builds() {
        for line in [
            r#"{"kind":"rmat","scale":6}"#,
            r#"{"kind":"er","n":50}"#,
            r#"{"kind":"ba","n":50,"d":3}"#,
            r#"{"kind":"grid","w":5}"#,
            r#"{"kind":"banded","n":40,"d":4}"#,
        ] {
            let spec: GenSpec = serde_json::from_str(line).unwrap();
            let g = spec.build().unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(g.num_vertices() > 0, "{line}");
        }
    }
}
