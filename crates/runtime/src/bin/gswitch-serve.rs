//! `gswitch-serve` — a line-delimited JSON query server over the
//! GSWITCH runtime, plus a synthetic load generator.
//!
//! Serve mode (default): one JSON request per stdin line, one JSON
//! response per stdout line; see `gswitch_runtime::protocol` for the
//! command set.
//!
//! `--bench-load` mode: replay a deterministic mixed workload twice —
//! cold (empty tuned-config cache) then warm (cache filled by the cold
//! pass) — and print QPS, latency percentiles, and hit rates.

use gswitch_runtime::bench_load::bench_load_with_obs;
use gswitch_runtime::protocol::Request;
use gswitch_runtime::{
    ConfigCache, GraphRegistry, JobSpec, RuntimeObs, Scheduler, SchedulerConfig, ShardService,
    SubmitError,
};
use std::io::{BufRead, Write};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: gswitch-serve [--bench-load] [--queries N] [--workers N] [--seed N] \
         [--trace FILE] [--spans FILE] [--cache FILE] [--retries N] [--strict-load] \
         [--verify-every N] [--shards K]\n\
         \n\
         --shards K (serve mode): default shard count for `batch` requests — each\n\
         batched graph is partitioned into K resident shards on first use (a request's\n\
         own \"shards\" field overrides); default 4.\n\
         --trace FILE (with --bench-load): record a decision trace of the whole run\n\
         as JSONL to FILE; inspect it with `gswitch-trace FILE`.\n\
         --spans FILE (with --bench-load): write the wall-clock span log (request →\n\
         queue-wait → execute → super-step phases) as JSONL to FILE; render it with\n\
         `gswitch-trace --timeline out.json FILE` or `gswitch-trace --profile FILE`.\n\
         --cache FILE (serve mode): warm the tuned-config cache from FILE at startup\n\
         (a missing or corrupt file degrades to an empty cache — the server always\n\
         starts) and persist it back on quit.\n\
         --retries N (serve mode): resubmit a query up to N times when it fails for\n\
         an infrastructure reason (status `failed`, e.g. a worker panic); default 2.\n\
         --strict-load (serve mode): refuse graph files that need repair (self loops,\n\
         parallel edges) instead of silently fixing them; loads are always validated\n\
         structurally and size-limited either way.\n\
         --verify-every N (serve mode): run the engine's divergence sentinel every N\n\
         super-steps — each check re-derives the frontier serially and, on mismatch,\n\
         repairs in place and pins the run to the reference variant; default 0 (off).\n\
         \n\
         Without flags, serves line-delimited JSON requests on stdin:\n\
           {{\"cmd\":\"load\",\"name\":\"kron\",\"gen\":{{\"kind\":\"rmat\",\"scale\":10}}}}\n\
           {{\"cmd\":\"query\",\"graph\":\"kron\",\"query\":{{\"Bfs\":{{\"src\":0}}}}}}\n\
           {{\"cmd\":\"batch\",\"graph\":\"kron\",\"queries\":[{{\"Bfs\":{{\"src\":0}}}},\"Cc\"],\"shards\":4}}\n\
           {{\"cmd\":\"query\",\"graph\":\"kron\",\"query\":\"Cc\",\"priority\":\"Interactive\"}}\n\
           {{\"cmd\":\"stats\"}} | {{\"cmd\":\"health\"}} | {{\"cmd\":\"trace\",\"enable\":true}} | \
         {{\"cmd\":\"trace\",\"path\":\"f.jsonl\",\"clear\":true}}\n\
           {{\"cmd\":\"save_cache\",\"path\":\"f\"}} | \
         {{\"cmd\":\"load_cache\",\"path\":\"f\"}} | {{\"cmd\":\"quit\"}}"
    );
    std::process::exit(2)
}

struct Args {
    bench: bool,
    queries: usize,
    workers: usize,
    seed: u64,
    trace: Option<String>,
    spans: Option<String>,
    cache: Option<String>,
    retries: u32,
    strict_load: bool,
    verify_every: u32,
    shards: u32,
}

fn parse_args() -> Args {
    let mut args = Args {
        bench: false,
        queries: 200,
        workers: 0,
        seed: 0x5EED,
        trace: None,
        spans: None,
        cache: None,
        retries: 2,
        strict_load: false,
        verify_every: 0,
        shards: 4,
    };
    fn num(it: &mut impl Iterator<Item = String>, name: &str) -> u64 {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric argument");
            std::process::exit(2)
        })
    }
    fn file(it: &mut impl Iterator<Item = String>, name: &str) -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{name} needs a file argument");
            std::process::exit(2)
        })
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench-load" => args.bench = true,
            "--queries" => args.queries = num(&mut it, "--queries") as usize,
            "--workers" => args.workers = num(&mut it, "--workers") as usize,
            "--seed" => args.seed = num(&mut it, "--seed"),
            "--retries" => args.retries = num(&mut it, "--retries") as u32,
            "--strict-load" => args.strict_load = true,
            "--verify-every" => args.verify_every = num(&mut it, "--verify-every") as u32,
            "--shards" => args.shards = (num(&mut it, "--shards") as u32).max(1),
            "--trace" => args.trace = Some(file(&mut it, "--trace")),
            "--spans" => args.spans = Some(file(&mut it, "--spans")),
            "--cache" => args.cache = Some(file(&mut it, "--cache")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    args
}

fn run_bench_load(args: &Args) -> i32 {
    let workers = if args.workers > 0 { args.workers } else { SchedulerConfig::default().workers };
    println!(
        "gswitch-serve --bench-load: {} queries, {} workers, seed {:#x}",
        args.queries, workers, args.seed
    );
    println!("graphs: rmat-mid (2^10, ef 8), road-grid (40x40), social-ba (1500, d 6)");
    println!("algorithms: bfs, pr, cc, sssp, bc (round-robin)\n");

    let obs = Arc::new(RuntimeObs::new());
    obs.set_tracing(args.trace.is_some());
    let (cold, warm) = bench_load_with_obs(args.queries, workers, args.seed, &obs);
    println!("{}", cold.render());
    println!("{}", warm.render());

    let speedup = if cold.qps > 0.0 { warm.qps / cold.qps } else { 0.0 };
    println!(
        "\nwarm/cold speedup: {speedup:.2}x  warm hit rate: {:.0}%  failures: {}",
        warm.hit_rate() * 100.0,
        cold.failed + warm.failed
    );

    let mut trace_ok = true;
    if let Some(path) = &args.trace {
        match std::fs::write(path, obs.trace.to_jsonl()) {
            Ok(()) => println!(
                "trace: {} events written to {path} ({} evicted from the ring)",
                obs.trace.len(),
                obs.trace.dropped()
            ),
            Err(e) => {
                eprintln!("trace: writing {path}: {e}");
                trace_ok = false;
            }
        }
    }
    if let Some(path) = &args.spans {
        match std::fs::write(path, obs.spans.to_jsonl()) {
            Ok(()) => println!(
                "spans: {} spans written to {path} ({} evicted from the ring)",
                obs.spans.len(),
                obs.spans.dropped()
            ),
            Err(e) => {
                eprintln!("spans: writing {path}: {e}");
                trace_ok = false;
            }
        }
    }

    let ok = cold.failed == 0
        && warm.failed == 0
        && warm.qps > cold.qps
        && warm.hit_rate() > 0.5
        && trace_ok;
    println!("verdict: {}", if ok { "PASS" } else { "FAIL" });
    i32::from(!ok)
}

fn jline(v: serde_json::Value) -> String {
    // A response the protocol layer cannot serialize must still answer
    // the client with *something* parseable, not kill the connection.
    serde_json::to_string(&v)
        .unwrap_or_else(|e| format!("{{\"error\":\"response serialization: {e}\"}}"))
}

fn err_line(msg: impl std::fmt::Display) -> String {
    jline(serde_json::json!({ "error": msg.to_string() }))
}

// The REPL dispatcher threads every service through one call; grouping
// them into a context struct would add a layer for no reader benefit.
#[allow(clippy::too_many_arguments)]
fn handle(
    req: Request,
    registry: &Arc<GraphRegistry>,
    cache: &Arc<ConfigCache>,
    scheduler: &Scheduler,
    obs: &Arc<RuntimeObs>,
    shards: &ShardService,
    batch_seq: &std::sync::atomic::AtomicU64,
    retries: u32,
    strict_load: bool,
) -> Result<Option<String>, String> {
    match req.cmd.as_str() {
        "load" => {
            let name = req.name.ok_or("load needs `name`")?;
            // Every load goes through the hardened path: size-limited,
            // overflow-checked parsing, then structural validation at
            // registration. --strict-load additionally turns any needed
            // repair (self loops, parallel edges) into an error.
            let (entry, repaired) = match (&req.path, &req.gen) {
                (Some(path), None) => {
                    let opts = if strict_load {
                        gswitch_graph::io::LoadOptions::strict()
                    } else {
                        gswitch_graph::io::LoadOptions::default()
                    };
                    let (entry, report) = registry
                        .load_path_validated(&name, path, &opts)
                        .map_err(|e| format!("loading `{path}`: {e}"))?;
                    (entry, report.self_loops_dropped + report.parallel_edges_deduped)
                }
                (None, Some(spec)) => (registry.insert_validated(&name, spec.build()?)?, 0),
                _ => return Err("load needs exactly one of `path` or `gen`".into()),
            };
            Ok(Some(jline(serde_json::json!({
                "ok": "loaded",
                "name": name,
                "vertices": entry.graph().num_vertices(),
                "edges": entry.graph().num_edges(),
                "fingerprint": entry.fingerprint().to_hex(),
                "repaired_edges": repaired,
            }))))
        }
        "query" => {
            let graph = req.graph.ok_or("query needs `graph`")?;
            let query = req.query.ok_or("query needs `query`")?;
            let spec = JobSpec { graph, query, timeout_ms: req.timeout_ms, priority: req.priority };
            // Transient worker failures (status `failed`) are retried
            // transparently up to --retries times; only the final
            // outcome reaches the client.
            let outcome = loop {
                match scheduler.submit_with_retry(
                    spec.clone(),
                    retries,
                    std::time::Duration::from_millis(5),
                ) {
                    Ok(out) => break out,
                    Err(SubmitError::QueueFull) => {
                        std::thread::sleep(std::time::Duration::from_millis(1))
                    }
                    Err(e) => return Err(e.to_string()),
                }
            };
            let outcome =
                if req.payload.unwrap_or(false) { outcome } else { outcome.without_payload() };
            serde_json::to_string(&outcome).map(Some).map_err(|e| e.to_string())
        }
        "batch" => {
            let graph_name = req.graph.ok_or("batch needs `graph`")?;
            let queries = req.queries.ok_or("batch needs `queries`")?;
            let entry =
                registry.get(&graph_name).ok_or_else(|| format!("unknown graph `{graph_name}`"))?;
            let job = batch_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let report = shards.batch(
                entry.graph(),
                entry.fingerprint().0,
                req.shards,
                req.tenant.as_deref(),
                &queries,
                job,
                &graph_name,
            )?;
            let outcomes: Vec<serde_json::Value> = report
                .outcomes
                .iter()
                .map(|o| {
                    serde_json::json!({
                        "index": o.index,
                        "algo": o.algo,
                        "status": o.status,
                        "error": o.error,
                        "converged": o.converged,
                        "supersteps": o.supersteps,
                        "sim_ms": o.sim_ms,
                        "wall_ms": o.wall_ms,
                        "exchange_records": o.exchange_records,
                        "exchange_bytes": o.exchange_bytes,
                        "imbalance": o.imbalance,
                    })
                })
                .collect();
            Ok(Some(jline(serde_json::json!({
                "ok": "batch",
                "graph": graph_name,
                "shards": req.shards.unwrap_or_else(|| shards.default_k()),
                "queries": report.outcomes.len(),
                "ok_count": report.ok_count(),
                "occupancy": report.occupancy(),
                "wall_ms": report.wall_ms,
                "sim_ms": report.sim_ms(),
                "exchange_records": report.exchange_records(),
                "exchange_bytes": report.exchange_bytes(),
                "max_imbalance": report.max_imbalance(),
                "outcomes": outcomes,
            }))))
        }
        "stats" => {
            let counters = cache.counters();
            // The unified registry snapshot (queue depth gauge, stage
            // latency histograms, job outcome counters including the
            // deadline/cancel drops, shared cache counters). gswitch-obs
            // renders its own JSON; re-parse it into a Value to embed.
            let metrics: serde_json::Value =
                serde_json::from_str(&obs.metrics.snapshot().to_json())
                    .map_err(|e| format!("metrics snapshot: {e}"))?;
            let h = gswitch_obs::hardening::snapshot();
            // Process-lifetime hardening counters: ingestion-side
            // rejections/repairs plus model-fallback and sentinel
            // interventions in the decision layer.
            let hardening = serde_json::json!({
                "load_rejected": gswitch_graph::validate::load_rejected(),
                "edges_repaired": gswitch_graph::validate::edges_repaired(),
                "graphs_rejected": gswitch_graph::validate::graphs_rejected(),
                "model_load_failed": h.model_load_failed,
                "model_fallback": h.model_fallback,
                "ood_feature_clamped": h.ood_feature_clamped,
                "sentinel_mismatch": h.sentinel_mismatch,
            });
            // Partitioned-serving surface: resident plan cache, quota
            // gate, and the batch telemetry counters (exchange volume,
            // occupancy and imbalance histograms live in `metrics`).
            use gswitch_runtime::obs::metric;
            let shard_stats = serde_json::json!({
                "default_k": shards.default_k(),
                "resident_plans": shards.store().len(),
                "plan_keys": shards.store().keys(),
                "plan_hits": shards.store().hits(),
                "plan_misses": shards.store().misses(),
                "plan_evictions": shards.store().evictions(),
                "quota_limit": shards.quotas().limit(),
                "quota_admissions": shards.quotas().admissions(),
                "quota_rejections": shards.quotas().rejections(),
                "batches": obs.metrics.counter(metric::BATCHES).get(),
                "batch_queries": obs.metrics.counter(metric::BATCH_QUERIES).get(),
                "exchange_records": obs.metrics.counter(metric::SHARD_EXCHANGE_RECORDS).get(),
                "exchange_bytes": obs.metrics.counter(metric::SHARD_EXCHANGE_BYTES).get(),
            });
            // Build/provenance block, so profiles and traces pulled off
            // a live server are attributable to an exact build. The
            // serve path decides with the heuristic AutoPolicy — no
            // model envelope is resident, hence the null checksum.
            let build = serde_json::json!({
                "version": env!("CARGO_PKG_VERSION"),
                "cost_model_version": gswitch_simt::COST_MODEL_VERSION,
                "device": SchedulerConfig::default().device.name,
                "model_schema_version": gswitch_core::MODEL_SCHEMA_VERSION,
                "model_checksum": serde_json::Value::Null,
                "uptime_s": obs.clock().now_ns() as f64 / 1e9,
            });
            // Self-time profile over the span ring: where request wall
            // time went, per span kind.
            let profile: serde_json::Value =
                serde_json::from_str(&gswitch_obs::profile(&obs.spans.snapshot()).to_json())
                    .map_err(|e| format!("span profile: {e}"))?;
            // Overload-resilience surface: shed/fast-fail counters,
            // breaker transitions, and brownout state. The raw counters
            // also appear inside `metrics`; this block is the curated
            // view clients and the soak harness key on.
            let breakers = scheduler.breakers();
            let brownout = scheduler.brownout();
            let resilience = serde_json::json!({
                "jobs_shed": obs.metrics.counter(metric::JOBS_SHED).get(),
                "jobs_deadline_unmeetable": obs.metrics.counter(metric::JOBS_UNMEETABLE).get(),
                "jobs_breaker_open": obs.metrics.counter(metric::JOBS_BREAKER_OPEN).get(),
                "breaker_opened": obs.metrics.counter(metric::BREAKER_OPENED).get(),
                "breaker_half_open": obs.metrics.counter(metric::BREAKER_HALF_OPEN).get(),
                "breaker_closed": obs.metrics.counter(metric::BREAKER_CLOSED).get(),
                "breakers_open_now": breakers.open_count(),
                "brownout_active": brownout.active(),
                "brownout_entered": brownout.entered(),
                "brownout_exited": brownout.exited(),
                "queue_capacity": scheduler.capacity(),
                "queue_wait_p95_ms": scheduler.queue_wait_p95_ms(),
            });
            Ok(Some(jline(serde_json::json!({
                "ok": "stats",
                "build": build,
                "graphs": registry.summaries(),
                "cache": counters,
                "hit_rate": counters.hit_rate(),
                "queued": scheduler.queued(),
                "metrics": metrics,
                "shards": shard_stats,
                "resilience": resilience,
                "trace_enabled": obs.tracing(),
                "trace_events": obs.trace.len(),
                "spans": obs.spans.len(),
                "profile": profile,
                "hardening": hardening,
            }))))
        }
        "health" => {
            // Per-component liveness/degradation. Deliberately cheap:
            // reads atomics and short snapshots only, so it answers even
            // when every worker is busy and the queue is full.
            let report = gswitch_runtime::HealthReport::gather(scheduler, cache, Some(shards));
            serde_json::to_string(&report).map(Some).map_err(|e| e.to_string())
        }
        "trace" => {
            if let Some(on) = req.enable {
                obs.set_tracing(on);
            }
            let mut written: Option<u64> = None;
            if let Some(path) = &req.path {
                let text = obs.trace.to_jsonl();
                std::fs::write(path, &text).map_err(|e| format!("writing `{path}`: {e}"))?;
                written = Some(obs.trace.len() as u64);
            }
            if req.clear.unwrap_or(false) {
                obs.trace.clear();
            }
            Ok(Some(jline(serde_json::json!({
                "ok": "trace",
                "enabled": obs.tracing(),
                "events": obs.trace.len(),
                "dropped": obs.trace.dropped(),
                "written": written,
            }))))
        }
        "save_cache" => {
            let path = req.path.ok_or("save_cache needs `path`")?;
            cache.save(std::path::Path::new(&path)).map_err(|e| e.to_string())?;
            Ok(Some(jline(
                serde_json::json!({ "ok": "saved", "entries": cache.counters().entries }),
            )))
        }
        "load_cache" => {
            let path = req.path.ok_or("load_cache needs `path`")?;
            let loaded =
                ConfigCache::load(std::path::Path::new(&path)).map_err(|e| e.to_string())?;
            cache.absorb(&loaded);
            Ok(Some(jline(
                serde_json::json!({ "ok": "loaded", "entries": cache.counters().entries }),
            )))
        }
        "quit" => Ok(None),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn serve(args: &Args) -> i32 {
    let registry = Arc::new(GraphRegistry::new());
    // --cache degrades, never blocks startup: a missing file is a
    // normal first run, a corrupt one comes up empty (and counted).
    let cache = Arc::new(match &args.cache {
        Some(path) => {
            let cache = ConfigCache::load_or_empty(path);
            let c = cache.counters();
            if c.load_failed > 0 {
                eprintln!("cache: `{path}` is corrupt; starting with an empty cache");
            } else {
                eprintln!("cache: {} tuned configs loaded from `{path}`", c.entries);
            }
            cache
        }
        None => ConfigCache::new(),
    });
    let obs = Arc::new(RuntimeObs::new());
    let scheduler = Scheduler::with_obs(
        Arc::clone(&registry),
        Arc::clone(&cache),
        SchedulerConfig { verify_every: args.verify_every, ..SchedulerConfig::default() },
        Arc::clone(&obs),
    );
    let workers = if args.workers > 0 { args.workers } else { SchedulerConfig::default().workers };
    // The batch path shares the scheduler's breakers and brownout
    // detector: query and batch traffic see one (graph, algorithm)
    // health picture, and brownout tightens batch quotas.
    let shards = ShardService::new(Arc::clone(&obs), args.shards, workers)
        .with_breakers(Arc::clone(scheduler.breakers()))
        .with_brownout(Arc::clone(scheduler.brownout()));
    let batch_seq = std::sync::atomic::AtomicU64::new(1);

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(req) => match handle(
                req,
                &registry,
                &cache,
                &scheduler,
                &obs,
                &shards,
                &batch_seq,
                args.retries,
                args.strict_load,
            ) {
                Ok(Some(resp)) => resp,
                Ok(None) => break, // quit
                Err(msg) => err_line(msg),
            },
            Err(e) => err_line(format!("bad request: {e}")),
        };
        let mut out = stdout.lock();
        if writeln!(out, "{response}").and_then(|()| out.flush()).is_err() {
            break; // reader went away
        }
    }
    scheduler.shutdown();
    if let Some(path) = &args.cache {
        match cache.save(path) {
            Ok(()) => {
                eprintln!("cache: {} tuned configs saved to `{path}`", cache.counters().entries)
            }
            Err(e) => eprintln!("cache: saving `{path}`: {e}"),
        }
    }
    0
}

fn main() {
    let args = parse_args();
    let code = if args.bench { run_bench_load(&args) } else { serve(&args) };
    std::process::exit(code);
}
