//! Partitioned-serving integration: resident shard plans, batched
//! queries, and per-tenant admission over the `gswitch-shard` layer.
//!
//! [`ShardService`] is the runtime's front door to partitioned
//! execution. It owns a bounded [`ShardStore`] (plans stay resident
//! across batches), a [`TenantQuotas`] gate (admission control at the
//! `batch` verb), and reports into the shared [`RuntimeObs`] metrics
//! registry so `gswitch-serve stats` exposes exchange volume, shard
//! imbalance and batch occupancy next to the scheduler's counters.

use crate::breaker::{BreakerDecision, BreakerKey, BreakerSet};
use crate::brownout::Brownout;
use crate::obs::{metric, RuntimeObs};
use crate::query::Query;
use gswitch_shard::{
    execute_batch, BatchOptions, BatchQuery, BatchReport, ShardStore, TenantQuotas,
};
use std::sync::Arc;

/// Default resident shard-plan capacity: a plan duplicates the graph's
/// CSR, so keep only a handful.
pub const DEFAULT_PLAN_CAPACITY: usize = 8;

/// Default per-tenant in-flight query cap.
pub const DEFAULT_TENANT_QUOTA: usize = 64;

/// Tenant name used when a batch request names none.
pub const DEFAULT_TENANT: &str = "default";

/// Map a runtime [`Query`] onto the partitioned driver's supported
/// subset. SSSP (priority-driven stepping) and BC (two-phase Brandes)
/// stay on the single-shard path by design — the error says so.
pub fn to_batch_query(q: &Query) -> Result<BatchQuery, String> {
    match *q {
        Query::Bfs { src } => Ok(BatchQuery::Bfs { src }),
        Query::Pr { eps } => Ok(BatchQuery::Pr { eps }),
        Query::Cc => Ok(BatchQuery::Cc),
        Query::Sssp { .. } => {
            Err("sssp is priority-driven and runs single-shard; use `query`".into())
        }
        Query::Bc { .. } => Err("bc is two-phase and runs single-shard; use `query`".into()),
    }
}

/// The serving runtime's partitioned-execution front door.
#[derive(Debug)]
pub struct ShardService {
    store: ShardStore,
    quotas: Arc<TenantQuotas>,
    obs: Arc<RuntimeObs>,
    /// Batch worker slots handed to [`execute_batch`].
    slots: usize,
    /// Default shard count for plans when a request names none
    /// (the `--shards` flag).
    default_k: u32,
    /// Circuit breakers shared with the scheduler's query path, so
    /// batch traffic both honours and feeds the same
    /// (graph, algorithm) health. `None` = breakers not wired (tests,
    /// standalone use).
    breakers: Option<Arc<BreakerSet>>,
    /// Shared brownout detector; while active, batch quota admission is
    /// tightened to half the per-tenant cap.
    brownout: Option<Arc<Brownout>>,
}

impl ShardService {
    /// A service with default capacity/quota bounds.
    pub fn new(obs: Arc<RuntimeObs>, default_k: u32, slots: usize) -> Self {
        ShardService {
            store: ShardStore::new(DEFAULT_PLAN_CAPACITY),
            quotas: TenantQuotas::new(DEFAULT_TENANT_QUOTA),
            obs,
            slots: slots.max(1),
            default_k: default_k.max(1),
            breakers: None,
            brownout: None,
        }
    }

    /// Share the scheduler's circuit breakers with the batch path.
    pub fn with_breakers(mut self, breakers: Arc<BreakerSet>) -> Self {
        self.breakers = Some(breakers);
        self
    }

    /// Share the scheduler's brownout detector with the batch path.
    pub fn with_brownout(mut self, brownout: Arc<Brownout>) -> Self {
        self.brownout = Some(brownout);
        self
    }

    /// The shard count used when a batch request does not name one.
    pub fn default_k(&self) -> u32 {
        self.default_k
    }

    /// The resident plan store (stats surface for `stats`).
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// The tenant quota gate (stats surface for `stats`).
    pub fn quotas(&self) -> &Arc<TenantQuotas> {
        &self.quotas
    }

    /// Admit and execute one batch of queries for `tenant` against the
    /// resident `(graph, k)` plan, partitioning it on first use.
    /// `fingerprint` identifies the graph to the shared circuit
    /// breakers (the batch path votes under the `"batch"` algorithm).
    ///
    /// Fails fast (before any partitioning) when the batch breaker is
    /// open, the tenant is over quota — a cap halved while brownout is
    /// active — or a query is outside the partitioned subset; quota is
    /// held for the whole batch and released on every path out.
    #[allow(clippy::too_many_arguments)]
    pub fn batch(
        &self,
        graph: &Arc<gswitch_graph::Graph>,
        fingerprint: u64,
        k: Option<u32>,
        tenant: Option<&str>,
        queries: &[Query],
        job: u64,
        graph_name: &str,
    ) -> Result<BatchReport, String> {
        if queries.is_empty() {
            return Err("batch needs at least one query".into());
        }
        let mapped: Vec<BatchQuery> =
            queries.iter().map(to_batch_query).collect::<Result<_, _>>()?;
        let key = BreakerKey { fingerprint, algo: "batch" };
        let probe = match self.breakers.as_deref().map(|b| b.admit(key)) {
            None | Some(BreakerDecision::Allow) => false,
            Some(BreakerDecision::AllowProbe) => true,
            Some(BreakerDecision::FailFast { retry_after_ms }) => {
                // Per-query accounting, mirroring the scheduler path:
                // each query in the refused batch counts as submitted
                // and terminally breaker-open, so the conservation
                // invariant (submitted == sum of terminal counters)
                // holds across query and batch traffic alike.
                let n = mapped.len() as u64;
                self.obs.metrics.counter(metric::JOBS_SUBMITTED).add(n);
                self.obs.metrics.counter(metric::JOBS_BREAKER_OPEN).add(n);
                return Err(format!(
                    "circuit breaker open for {graph_name}/batch: retry in ~{retry_after_ms} ms"
                ));
            }
        };
        let release_neutral = |reason: String| {
            if let Some(b) = self.breakers.as_deref() {
                b.record_neutral(key, probe);
            }
            reason
        };
        let tenant = tenant.unwrap_or(DEFAULT_TENANT);
        let degraded = self.brownout.as_deref().map(Brownout::active).unwrap_or(false);
        let quota = if degraded {
            // Brownout: halve the effective per-tenant cap so batch
            // bursts stop competing with interactive traffic.
            self.quotas.acquire_capped(tenant, mapped.len(), self.quotas.limit() / 2)
        } else {
            self.quotas.acquire(tenant, mapped.len())
        };
        let _permit = quota.map_err(|e| {
            self.obs.metrics.counter(metric::QUOTA_REJECTED).inc();
            release_neutral(e.to_string())
        })?;
        let k = k.unwrap_or(self.default_k);
        let plan = self.store.get_or_partition(graph, k).map_err(release_neutral)?;
        let opts = BatchOptions {
            slots: self.slots,
            recorder: if degraded {
                gswitch_obs::RecorderHandle::none()
            } else {
                self.obs.recorder_for(job, graph_name, "batch")
            },
            spans: gswitch_obs::SpanCtx::new(self.obs.span_collector(), 0, 0, job),
            ..BatchOptions::default()
        };
        let report = execute_batch(&plan, &mapped, &opts);
        self.record(&report);
        if let Some(b) = self.breakers.as_deref() {
            let any_failed =
                report.outcomes.iter().any(|o| o.status == gswitch_shard::QueryStatus::Failed);
            if any_failed {
                b.record_failure(key, probe);
            } else {
                b.record_success(key, probe);
            }
        }
        Ok(report)
    }

    /// Fold one batch's telemetry into the shared metrics registry.
    fn record(&self, report: &BatchReport) {
        let m = &self.obs.metrics;
        m.counter(metric::BATCHES).inc();
        m.counter(metric::BATCH_QUERIES).add(report.outcomes.len() as u64);
        m.counter(metric::SHARD_EXCHANGE_RECORDS).add(report.exchange_records());
        m.counter(metric::SHARD_EXCHANGE_BYTES).add(report.exchange_bytes());
        // Occupancy is a ratio; store percent so the size-class
        // histogram buckets resolve it.
        m.histogram(metric::BATCH_OCCUPANCY, &[10.0, 25.0, 50.0, 75.0, 90.0, 100.0])
            .observe(report.occupancy() * 100.0);
        m.histogram(metric::SHARD_IMBALANCE, &[1.1, 1.25, 1.5, 2.0, 4.0])
            .observe(report.max_imbalance());
        // Executed batch queries are "submitted" jobs for conservation
        // purposes: each lands in exactly one terminal bucket below.
        m.counter(metric::JOBS_SUBMITTED).add(report.outcomes.len() as u64);
        for out in &report.outcomes {
            match out.status {
                gswitch_shard::QueryStatus::Ok => m.counter(metric::JOBS_OK).inc(),
                gswitch_shard::QueryStatus::Error => m.counter(metric::JOBS_ERROR).inc(),
                gswitch_shard::QueryStatus::Failed => m.counter(metric::JOBS_FAILED).inc(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gswitch_graph::gen;

    fn service() -> (ShardService, Arc<gswitch_graph::Graph>) {
        let obs = Arc::new(RuntimeObs::new());
        let g = Arc::new(gen::erdos_renyi(250, 1_000, 23).with_name("er-svc"));
        (ShardService::new(obs, 4, 2), g)
    }

    #[test]
    fn batch_executes_and_records_metrics() {
        let (svc, g) = service();
        let queries = [Query::Bfs { src: 0 }, Query::Cc];
        let rep = svc.batch(&g, 0, None, None, &queries, 1, "er-svc").expect("batch");
        assert_eq!(rep.ok_count(), 2);
        assert!(rep.exchange_records() > 0);
        let snap = svc.obs.metrics.snapshot().to_json();
        assert!(snap.contains(metric::BATCHES), "missing batch counter: {snap}");
        assert!(snap.contains(metric::SHARD_EXCHANGE_BYTES));
        // Plan is resident now: a second batch hits the store.
        let _ = svc.batch(&g, 0, None, None, &queries, 2, "er-svc").expect("batch");
        assert_eq!(svc.store().hits(), 1);
        assert_eq!(svc.store().misses(), 1);
    }

    #[test]
    fn unsupported_queries_fail_fast_without_partitioning() {
        let (svc, g) = service();
        let err = svc
            .batch(&g, 0, None, None, &[Query::Sssp { src: 0 }], 1, "er-svc")
            .expect_err("sssp is single-shard only");
        assert!(err.contains("single-shard"));
        assert!(svc.store().is_empty(), "partitioned despite rejecting the batch");
    }

    #[test]
    fn quota_exhaustion_is_counted_and_released() {
        let (svc, g) = service();
        let too_many: Vec<Query> =
            (0..DEFAULT_TENANT_QUOTA as u32 + 1).map(|src| Query::Bfs { src }).collect();
        let err =
            svc.batch(&g, 0, None, Some("greedy"), &too_many, 1, "er-svc").expect_err("quota");
        assert!(err.contains("quota"));
        assert_eq!(svc.quotas().rejections(), 1);
        // The refusal admitted nothing: a normal batch still fits.
        let rep = svc
            .batch(&g, 0, None, Some("greedy"), &[Query::Cc], 2, "er-svc")
            .expect("quota released");
        assert_eq!(rep.ok_count(), 1);
        assert_eq!(svc.quotas().inflight("greedy"), 0);
    }

    #[test]
    fn open_batch_breaker_refuses_before_partitioning() {
        use crate::breaker::BreakerConfig;
        let obs = Arc::new(RuntimeObs::new());
        let g = Arc::new(gen::erdos_renyi(250, 1_000, 23).with_name("er-brk"));
        let breakers = Arc::new(crate::breaker::BreakerSet::new(
            BreakerConfig { failure_threshold: 2, cooldown_ms: 600_000 },
            obs.clock(),
            &obs.metrics,
        ));
        let svc = ShardService::new(Arc::clone(&obs), 4, 2).with_breakers(Arc::clone(&breakers));
        let key = BreakerKey { fingerprint: 7, algo: "batch" };
        breakers.record_failure(key, false);
        breakers.record_failure(key, false);
        let err = svc.batch(&g, 7, None, None, &[Query::Cc], 1, "er-brk").expect_err("open");
        assert!(err.contains("circuit breaker open"), "{err}");
        assert!(svc.store().is_empty(), "partitioned despite the open breaker");
        // A different fingerprint is a different key: it still runs,
        // and its success feeds back into the shared breaker set.
        let rep = svc.batch(&g, 8, None, None, &[Query::Cc], 2, "er-brk").expect("other key");
        assert_eq!(rep.ok_count(), 1);
    }

    #[test]
    fn brownout_halves_the_effective_batch_quota() {
        use crate::brownout::BrownoutConfig;
        let obs = Arc::new(RuntimeObs::new());
        let g = Arc::new(gen::erdos_renyi(250, 1_000, 23).with_name("er-deg"));
        let brownout = Arc::new(crate::brownout::Brownout::new(
            BrownoutConfig { enter_after: 1, exit_after: 1, ..Default::default() },
            &obs.metrics,
        ));
        let svc = ShardService::new(Arc::clone(&obs), 4, 2).with_brownout(Arc::clone(&brownout));
        brownout.on_sample(1.0);
        assert!(brownout.active());
        // More than half the cap but under the full cap: refused only
        // while browned out.
        let over_half: Vec<Query> =
            (0..DEFAULT_TENANT_QUOTA as u32 / 2 + 1).map(|src| Query::Bfs { src }).collect();
        let err = svc.batch(&g, 0, None, None, &over_half, 1, "er-deg").expect_err("tightened");
        assert!(err.contains("quota"), "{err}");
        brownout.on_sample(0.0);
        assert!(!brownout.active());
        let rep = svc.batch(&g, 0, None, None, &over_half, 2, "er-deg").expect("full cap back");
        assert_eq!(rep.ok_count(), over_half.len());
    }

    #[test]
    fn explicit_k_overrides_the_default() {
        let (svc, g) = service();
        let _ = svc.batch(&g, 0, Some(2), None, &[Query::Cc], 1, "er-svc").expect("k=2");
        let _ = svc.batch(&g, 0, None, None, &[Query::Cc], 2, "er-svc").expect("k=default");
        let keys = svc.store().keys();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&("er-svc".to_string(), 2)));
        assert!(keys.contains(&("er-svc".to_string(), 4)));
    }
}
