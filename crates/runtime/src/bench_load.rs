//! The `--bench-load` workload: a deterministic mixed stream of queries
//! over several graphs, replayed twice — once against an empty
//! tuned-config cache (cold) and once against the cache the first pass
//! filled (warm) — reporting throughput, latency percentiles, and the
//! cache hit rate for each phase.

use crate::cache::ConfigCache;
use crate::obs::RuntimeObs;
use crate::query::{JobStatus, Query};
use crate::registry::GraphRegistry;
use crate::scheduler::{Scheduler, SchedulerConfig, SubmitError};
use crate::JobSpec;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic stream mixer (SplitMix64).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Register the benchmark graph mix: a scale-free R-MAT, a road-like
/// grid, and a hub-heavy preferential-attachment graph. Returns their
/// registry names.
pub fn default_graphs(registry: &GraphRegistry) -> Vec<String> {
    use gswitch_graph::gen;
    registry.insert("rmat-mid", gen::kronecker(10, 8, 7));
    registry.insert("road-grid", gen::grid2d(40, 40, 0.02, 8));
    registry.insert("social-ba", gen::barabasi_albert(1_500, 6, 9));
    vec!["rmat-mid".into(), "road-grid".into(), "social-ba".into()]
}

/// Build a deterministic mixed workload of `count` queries over
/// `graphs`, cycling through all five algorithms with varied sources.
pub fn synthetic_workload(
    registry: &GraphRegistry,
    graphs: &[String],
    count: usize,
    seed: u64,
) -> Vec<JobSpec> {
    let mut state = seed;
    (0..count)
        .map(|i| {
            let graph = graphs[i % graphs.len()].clone();
            let n =
                registry.get(&graph).map(|e| e.graph().num_vertices() as u64).unwrap_or(1).max(1);
            let src = (mix(&mut state) % n) as u32;
            let query = match i % 5 {
                0 => Query::Bfs { src },
                1 => Query::Pr { eps: 1e-3 },
                2 => Query::Cc,
                3 => Query::Sssp { src },
                _ => Query::Bc { src },
            };
            JobSpec { graph, query, timeout_ms: None, priority: None }
        })
        .collect()
}

/// What one phase (cold or warm) of the load run measured.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// `"cold"` or `"warm"`.
    pub phase: &'static str,
    /// Jobs submitted.
    pub queries: usize,
    /// Jobs that did not finish `Ok`.
    pub failed: usize,
    /// End-to-end wall time for the whole phase (s).
    pub wall_s: f64,
    /// Completed queries per second.
    pub qps: f64,
    /// Median per-job latency (ms, admission to completion).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Tuned-config cache hits during the phase.
    pub cache_hits: u64,
    /// Tuned-config cache misses during the phase.
    pub cache_misses: u64,
}

impl PhaseReport {
    /// Cache hit rate in the phase.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Render the human-readable report block.
    pub fn render(&self) -> String {
        format!(
            "{:<5} {:>4} queries  {:>3} failed  {:>8.1} qps  p50 {:>7.2} ms  p95 {:>7.2} ms  \
             p99 {:>7.2} ms  cache {}/{} hits ({:.0}%)",
            self.phase,
            self.queries,
            self.failed,
            self.qps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.hit_rate() * 100.0
        )
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Replay `specs` through `scheduler`, waiting for every outcome.
/// Submission respects admission control: on `QueueFull` the driver
/// backs off and retries, so a bounded queue throttles rather than
/// fails the run.
pub fn run_phase(
    scheduler: &Scheduler,
    cache: &ConfigCache,
    specs: &[JobSpec],
    phase: &'static str,
) -> PhaseReport {
    cache.reset_counters();
    let clock = scheduler.obs().clock();
    let t0 = clock.now_ns();
    let mut handles = Vec::with_capacity(specs.len());
    for spec in specs {
        loop {
            match scheduler.submit(spec.clone()) {
                Ok(h) => {
                    handles.push(h);
                    break;
                }
                Err(SubmitError::QueueFull) => std::thread::sleep(Duration::from_micros(200)),
                Err(e) => panic!("bench-load submission failed: {e}"),
            }
        }
    }
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    let wall_s = clock.elapsed_ms(t0) / 1e3;

    let failed = outcomes.iter().filter(|o| o.status != JobStatus::Ok).count();
    let mut lat: Vec<f64> = outcomes.iter().map(|o| o.wall_ms).collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let counters = cache.counters();
    PhaseReport {
        phase,
        queries: specs.len(),
        failed,
        wall_s,
        qps: if wall_s > 0.0 { (specs.len() - failed) as f64 / wall_s } else { 0.0 },
        p50_ms: percentile(&lat, 0.50),
        p95_ms: percentile(&lat, 0.95),
        p99_ms: percentile(&lat, 0.99),
        cache_hits: counters.hits,
        cache_misses: counters.misses,
    }
}

/// The full cold/warm comparison behind `gswitch-serve --bench-load`.
/// Returns `(cold, warm)`.
pub fn bench_load(queries: usize, workers: usize, seed: u64) -> (PhaseReport, PhaseReport) {
    bench_load_with_obs(queries, workers, seed, &Arc::new(RuntimeObs::new()))
}

/// [`bench_load`] reporting into a caller-owned observability root.
/// With `obs` tracing enabled, every engine iteration of both phases
/// lands in `obs.trace` (sized for the run: pass a ring large enough or
/// accept eviction of the oldest events).
pub fn bench_load_with_obs(
    queries: usize,
    workers: usize,
    seed: u64,
    obs: &Arc<RuntimeObs>,
) -> (PhaseReport, PhaseReport) {
    let registry = Arc::new(GraphRegistry::new());
    let graphs = default_graphs(&registry);
    let cache = Arc::new(ConfigCache::new());
    let config = SchedulerConfig {
        workers,
        queue_capacity: 64,
        default_timeout_ms: 120_000,
        ..Default::default()
    };
    let scheduler =
        Scheduler::with_obs(Arc::clone(&registry), Arc::clone(&cache), config, Arc::clone(obs));

    let specs = synthetic_workload(&registry, &graphs, queries, seed);
    let cold = run_phase(&scheduler, &cache, &specs, "cold");
    let warm = run_phase(&scheduler, &cache, &specs, "warm");
    scheduler.shutdown();
    (cold, warm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_mixed() {
        let registry = GraphRegistry::new();
        let graphs = default_graphs(&registry);
        let a = synthetic_workload(&registry, &graphs, 40, 1);
        let b = synthetic_workload(&registry, &graphs, 40, 1);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.query, y.query);
        }
        // All five algorithms and all graphs appear.
        for algo in ["bfs", "pr", "cc", "sssp", "bc"] {
            assert!(a.iter().any(|s| s.query.algo() == algo), "missing {algo}");
        }
        for g in &graphs {
            assert!(a.iter().any(|s| &s.graph == g), "missing graph {g}");
        }
    }

    #[test]
    fn percentiles_are_sane() {
        let ms: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&ms, 0.50), 50.0);
        assert_eq!(percentile(&ms, 0.99), 99.0);
        assert_eq!(percentile(&ms, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn traced_bench_load_fills_the_ring_with_parseable_events() {
        let obs = Arc::new(RuntimeObs::new());
        obs.set_tracing(true);
        let (cold, warm) = bench_load_with_obs(5, 2, 7, &obs);
        assert_eq!(cold.failed + warm.failed, 0);
        assert!(!obs.trace.is_empty(), "tracing enabled but ring is empty");
        let parsed = gswitch_obs::parse_jsonl(&obs.trace.to_jsonl());
        assert!(parsed.errors.is_empty(), "unparseable trace lines: {:?}", parsed.errors);
        let summary = gswitch_obs::summarize(&parsed.events);
        assert!(summary.jobs >= 5, "expected at least one job per cold query");
    }

    #[test]
    fn small_bench_load_round_trips() {
        // A miniature run: enough to cross every code path without
        // making the test suite slow.
        let (cold, warm) = bench_load(10, 2, 42);
        assert_eq!(cold.failed, 0, "cold phase had failures");
        assert_eq!(warm.failed, 0, "warm phase had failures");
        assert!(warm.hit_rate() > 0.5, "warm hit rate {}", warm.hit_rate());
        assert_eq!(cold.cache_hits, 0, "cold phase should start empty");
    }
}
