//! Brownout: sustained-overload detection and degraded-mode serving.
//!
//! When queue occupancy stays above a high watermark, the runtime
//! *browns out* rather than falling over: it sheds optional work to
//! buy throughput — the divergence sentinel (`verify_every`) is
//! suspended, per-job decision tracing is suppressed, and batch quota
//! admission is tightened (see
//! [`ShardService`](crate::shards::ShardService)). The `health` verb
//! reports the degraded state; normal service resumes automatically
//! once occupancy stays below the low watermark.
//!
//! Detection uses consecutive-sample hysteresis on admission-time
//! occupancy samples: `enter_after` consecutive samples at or above
//! `enter_occupancy` engage the brownout, `exit_after` consecutive
//! samples at or below `exit_occupancy` disengage it. The asymmetric
//! watermarks (high in, low out) prevent flapping at the boundary.

use crate::obs::metric;
use gswitch_obs::{Counter, Gauge, MetricsRegistry};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Brownout detection thresholds.
#[derive(Clone, Debug)]
pub struct BrownoutConfig {
    /// Queue occupancy (0.0–1.0) at or above which a sample counts
    /// toward entering brownout.
    pub enter_occupancy: f64,
    /// Queue occupancy at or below which a sample counts toward
    /// exiting brownout. Must be below `enter_occupancy`.
    pub exit_occupancy: f64,
    /// Consecutive high samples required to engage (minimum 1).
    pub enter_after: u32,
    /// Consecutive low samples required to disengage (minimum 1).
    pub exit_after: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enter_occupancy: 0.90,
            exit_occupancy: 0.50,
            enter_after: 8,
            exit_after: 8,
        }
    }
}

/// The brownout state machine. Sampled on every admission; read
/// (lock-free) on every hot path that degrades under brownout.
#[derive(Debug)]
pub struct Brownout {
    config: BrownoutConfig,
    active: AtomicBool,
    high_streak: AtomicU32,
    low_streak: AtomicU32,
    entered: Counter,
    exited: Counter,
    active_gauge: Gauge,
}

impl Brownout {
    /// A brownout detector reporting into `registry` under the
    /// canonical metric names.
    pub fn new(config: BrownoutConfig, registry: &MetricsRegistry) -> Self {
        Brownout {
            config: BrownoutConfig {
                enter_occupancy: config.enter_occupancy.clamp(0.0, 1.0),
                exit_occupancy: config.exit_occupancy.clamp(0.0, 1.0),
                enter_after: config.enter_after.max(1),
                exit_after: config.exit_after.max(1),
            },
            active: AtomicBool::new(false),
            high_streak: AtomicU32::new(0),
            low_streak: AtomicU32::new(0),
            entered: registry.counter(metric::BROWNOUT_ENTERED),
            exited: registry.counter(metric::BROWNOUT_EXITED),
            active_gauge: registry.gauge(metric::BROWNOUT_ACTIVE),
        }
    }

    /// Whether degraded mode is currently engaged.
    ///
    /// Acquire pairs with the AcqRel swaps in
    /// [`Brownout::on_sample`]: an admission thread that sees the flag
    /// flip also sees the streak resets and gauge update that preceded
    /// the transition.
    #[inline]
    pub fn active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// The configured thresholds.
    pub fn config(&self) -> &BrownoutConfig {
        &self.config
    }

    /// Brownout activations so far.
    pub fn entered(&self) -> u64 {
        self.entered.get()
    }

    /// Brownout deactivations so far.
    pub fn exited(&self) -> u64 {
        self.exited.get()
    }

    /// Feed one occupancy sample (0.0–1.0) from an admission decision.
    ///
    /// Samples race harmlessly under concurrent submission: streak
    /// updates are per-counter atomics, and the worst interleaving only
    /// delays a transition by a sample or two — hysteresis exists
    /// precisely so single-sample precision does not matter.
    pub fn on_sample(&self, occupancy: f64) {
        if self.active() {
            if occupancy <= self.config.exit_occupancy {
                let low = self.low_streak.fetch_add(1, Ordering::Relaxed) + 1;
                if low >= self.config.exit_after && self.active.swap(false, Ordering::AcqRel) {
                    self.exited.inc();
                    self.active_gauge.set(0);
                    self.low_streak.store(0, Ordering::Relaxed);
                }
            } else {
                self.low_streak.store(0, Ordering::Relaxed);
            }
        } else if occupancy >= self.config.enter_occupancy {
            let high = self.high_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if high >= self.config.enter_after && !self.active.swap(true, Ordering::AcqRel) {
                self.entered.inc();
                self.active_gauge.set(1);
                self.high_streak.store(0, Ordering::Relaxed);
                self.low_streak.store(0, Ordering::Relaxed);
            }
        } else {
            self.high_streak.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(enter_after: u32, exit_after: u32) -> Brownout {
        Brownout::new(
            BrownoutConfig { enter_occupancy: 0.8, exit_occupancy: 0.3, enter_after, exit_after },
            &MetricsRegistry::new(),
        )
    }

    #[test]
    fn engages_after_sustained_high_occupancy_only() {
        let b = detector(3, 2);
        b.on_sample(0.9);
        b.on_sample(0.9);
        assert!(!b.active(), "two high samples must not engage a 3-sample brownout");
        // A dip resets the streak.
        b.on_sample(0.5);
        b.on_sample(0.9);
        b.on_sample(0.9);
        assert!(!b.active());
        b.on_sample(0.95);
        assert!(b.active());
        assert_eq!(b.entered(), 1);
    }

    #[test]
    fn disengages_after_sustained_low_occupancy_with_hysteresis() {
        let b = detector(1, 2);
        b.on_sample(1.0);
        assert!(b.active());
        // Mid-band samples (between the watermarks) keep brownout on.
        b.on_sample(0.6);
        b.on_sample(0.2);
        assert!(b.active(), "one low sample must not disengage a 2-sample exit");
        b.on_sample(0.6);
        b.on_sample(0.2);
        b.on_sample(0.1);
        assert!(!b.active());
        assert_eq!((b.entered(), b.exited()), (1, 1));
    }

    #[test]
    fn reengages_after_recovery() {
        let b = detector(1, 1);
        b.on_sample(0.9);
        b.on_sample(0.1);
        b.on_sample(0.9);
        assert!(b.active());
        assert_eq!(b.entered(), 2);
        assert_eq!(b.exited(), 1);
    }
}
