//! Deterministic fault injection for the serving runtime.
//!
//! Compiled to no-ops unless the `fault-injection` cargo feature is on,
//! so production builds pay nothing and cannot be armed. With the
//! feature on (CI runs `cargo test -p gswitch-runtime --features
//! fault-injection`), tests arm faults at **named sites** — fixed
//! strings listed in [`site`] — and the runtime fires them at exactly
//! those points:
//!
//! * [`Fault::Panic`] — panic at the site (one-shot under [`arm`] /
//!   [`arm_after`]: auto-disarms when it fires, so a retry of the same
//!   job can succeed).
//! * [`Fault::SlowMs`] — sleep at the site, every time it is reached
//!   (how tests make a fast simulated job overrun a real deadline).
//! * [`Fault::CorruptText`] — mangle text flowing through the site
//!   (how tests corrupt a cache file between disk and parser).
//!
//! A `skip` count delays a fault past the first `skip` firings, which
//! is what "panic mid-expand on iteration 3" means in the integration
//! suite.
//!
//! Beyond the legacy one-shot/persistent arms, [`arm_schedule`] attaches
//! a [`Schedule`] to a site: periodic firings (`every(n)`, optionally
//! `.after(skip)` / `.times(limit)`) or seeded pseudo-random firings
//! (`random(seed, one_in)`). Schedules apply to *every* fault kind —
//! including recurring panics, which the chaos-soak harness uses to keep
//! re-injuring the worker pool for thousands of jobs. All randomness is
//! a pure function of `(seed, arrival index)`, so chaos runs replay
//! bit-identically under a fixed seed.
//!
//! All state is process-global; tests that arm faults serialize
//! themselves behind a mutex (see `tests/faults.rs`).

/// Named injection sites. Arming any other string is legal but will
/// never fire.
pub mod site {
    /// Fired by [`execute`](crate::execute) before the engine starts.
    pub const EXECUTOR_START: &str = "executor::start";
    /// Fired once per engine super-step, from the scheduler's run
    /// probe (so `SlowMs` stretches iterations and `Panic` lands
    /// mid-run, between super-steps).
    pub const ENGINE_ITERATION: &str = "engine::iteration";
    /// Fired inside [`ConfigCache::store`](crate::ConfigCache::store)
    /// **while the write lock is held** — a panic here poisons the
    /// cache lock, which is exactly what the poison-recovery tests
    /// need to prove survivable.
    pub const CACHE_STORE: &str = "cache::store";
    /// Text-transform site on the bytes read by
    /// [`ConfigCache::load_or_empty`](crate::ConfigCache::load_or_empty).
    pub const CACHE_LOAD: &str = "cache::load";
    /// Fired by [`ConfigCache::save`](crate::ConfigCache::save) after
    /// the temp file is written and fsynced but **before** the rename —
    /// the crash window an atomic save must make harmless.
    pub const CACHE_SAVE: &str = "cache::save";
}

/// What an armed site does when reached.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Panic with this message. One-shot under [`arm`]/[`arm_after`]
    /// (disarms as it fires); recurring under a [`Schedule`].
    Panic(String),
    /// Sleep this many milliseconds. Persistent until disarmed.
    SlowMs(u64),
    /// Replace text passing through the site with unparseable garbage.
    /// Persistent until disarmed.
    CorruptText,
}

/// When a scheduled fault fires, as a pure function of the site's
/// arrival counter. Built with [`Schedule::every`] / [`Schedule::once`]
/// / [`Schedule::random`] plus the [`Schedule::after`] and
/// [`Schedule::times`] modifiers.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Arrivals to let pass before the schedule starts.
    skip: u64,
    /// Fire every `period` arrivals once started (periodic mode).
    period: u64,
    /// Stop after this many firings (`None` = unlimited).
    limit: Option<u64>,
    /// Random mode: `(seed, one_in)` — fire when
    /// `splitmix64(seed ^ arrival) % one_in == 0`.
    random: Option<(u64, u64)>,
}

impl Schedule {
    /// Fire on every `period`-th arrival (period 1 = every arrival).
    pub fn every(period: u64) -> Self {
        Schedule { skip: 0, period: period.max(1), limit: None, random: None }
    }

    /// Fire exactly once, on the first arrival (compose with
    /// [`Schedule::after`] to delay it).
    pub fn once() -> Self {
        Schedule::every(1).times(1)
    }

    /// Fire pseudo-randomly on roughly one in `one_in` arrivals.
    /// Deterministic: whether arrival `i` fires depends only on
    /// `(seed, i)`, so a fixed seed replays identically.
    pub fn random(seed: u64, one_in: u64) -> Self {
        Schedule { skip: 0, period: 1, limit: None, random: Some((seed, one_in.max(1))) }
    }

    /// Let the first `skip` arrivals pass before the schedule starts.
    pub fn after(mut self, skip: u64) -> Self {
        self.skip = skip;
        self
    }

    /// Disarm after `limit` firings.
    pub fn times(mut self, limit: u64) -> Self {
        self.limit = Some(limit.max(1));
        self
    }

    /// The firing limit, if any (`Schedule::times`).
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Whether arrival number `arrival` (0-based) fires. Pure — a
    /// function of the schedule and the index only — so tests can
    /// predict a chaos run and replays agree bit-for-bit.
    pub fn fires(&self, arrival: u64) -> bool {
        if arrival < self.skip {
            return false;
        }
        match self.random {
            Some((seed, one_in)) => splitmix64(seed ^ arrival).is_multiple_of(one_in),
            None => (arrival - self.skip).is_multiple_of(self.period),
        }
    }
}

/// SplitMix64: the standard 64-bit finalizer; a bijective scramble, so
/// distinct arrival indices give independent-looking draws from one
/// seed. Shared with the scheduler's retry jitter.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(feature = "fault-injection")]
mod armed {
    use super::{Fault, Schedule};
    use gswitch_obs::sync::Lock;
    use std::collections::HashMap;

    /// How an armed fault decides to act on each arrival.
    enum Cadence {
        /// `arm`/`arm_after` semantics: skip, then Panic is one-shot
        /// and Slow/Corrupt are persistent.
        Legacy { skip: u64 },
        /// `arm_schedule` semantics: the schedule decides; panics
        /// recur.
        Scheduled(Schedule),
    }

    struct ArmedFault {
        fault: Fault,
        cadence: Cadence,
        /// Arrivals seen so far (including non-firing ones).
        arrivals: u64,
        /// Firings so far (for `Schedule::times`).
        fired: u64,
    }

    static SITES: Lock<Option<HashMap<String, ArmedFault>>> = Lock::new(None);

    fn with_sites<R>(f: impl FnOnce(&mut HashMap<String, ArmedFault>) -> R) -> R {
        let mut guard = SITES.lock();
        f(guard.get_or_insert_with(HashMap::new))
    }

    /// Arm `fault` at `site`, firing on the first arrival.
    pub fn arm(site: &str, fault: Fault) {
        arm_after(site, 0, fault);
    }

    /// Arm `fault` at `site`, letting the first `skip` arrivals pass.
    pub fn arm_after(site: &str, skip: u64, fault: Fault) {
        with_sites(|s| {
            s.insert(
                site.to_string(),
                ArmedFault { fault, cadence: Cadence::Legacy { skip }, arrivals: 0, fired: 0 },
            )
        });
    }

    /// Arm `fault` at `site` on a deterministic [`Schedule`]. Unlike
    /// [`arm`], a scheduled `Panic` recurs until the schedule's limit
    /// (if any) is exhausted.
    pub fn arm_schedule(site: &str, schedule: Schedule, fault: Fault) {
        with_sites(|s| {
            s.insert(
                site.to_string(),
                ArmedFault { fault, cadence: Cadence::Scheduled(schedule), arrivals: 0, fired: 0 },
            )
        });
    }

    /// Disarm one site.
    pub fn disarm(site: &str) {
        with_sites(|s| s.remove(site));
    }

    /// Disarm everything (test teardown).
    pub fn reset() {
        with_sites(|s| s.clear());
    }

    /// Decide what to do at `site` without holding the lock while
    /// acting (a panic must not poison the fault table itself).
    fn take_action(site: &str) -> Option<Fault> {
        with_sites(|s| {
            let armed = s.get_mut(site)?;
            let arrival = armed.arrivals;
            armed.arrivals += 1;
            match &armed.cadence {
                Cadence::Legacy { skip } => {
                    if arrival < *skip {
                        return None;
                    }
                    match armed.fault {
                        // One-shot: remove before firing.
                        Fault::Panic(_) => s.remove(site).map(|a| a.fault),
                        ref f => Some(f.clone()),
                    }
                }
                Cadence::Scheduled(schedule) => {
                    if !schedule.fires(arrival) {
                        return None;
                    }
                    armed.fired += 1;
                    let exhausted = schedule.limit().is_some_and(|l| armed.fired >= l);
                    if exhausted {
                        s.remove(site).map(|a| a.fault)
                    } else {
                        Some(armed.fault.clone())
                    }
                }
            }
        })
    }

    /// Fire `site`: may panic or sleep.
    pub fn fire(site: &str) {
        match take_action(site) {
            Some(Fault::Panic(msg)) => panic!("injected fault at {site}: {msg}"),
            Some(Fault::SlowMs(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            Some(Fault::CorruptText) | None => {}
        }
    }

    /// Pass `text` through `site`, corrupting it if so armed. Panics
    /// and sleeps also apply here.
    pub fn transform_text(site: &str, text: String) -> String {
        match take_action(site) {
            Some(Fault::CorruptText) => {
                // Truncate mid-token and append garbage: defeats both
                // full and partial JSON parses.
                let mut cut = text.len() / 2;
                while cut > 0 && !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                format!("{}\u{0}garbage%%", &text[..cut])
            }
            Some(Fault::Panic(msg)) => panic!("injected fault at {site}: {msg}"),
            Some(Fault::SlowMs(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                text
            }
            None => text,
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{arm, arm_after, arm_schedule, disarm, fire, reset, transform_text};

/// No-op stubs compiled when the `fault-injection` feature is off:
/// sites cannot be armed and firing costs nothing.
#[cfg(not(feature = "fault-injection"))]
mod disarmed {
    use super::{Fault, Schedule};

    /// No-op (enable the `fault-injection` feature to arm faults).
    pub fn arm(_site: &str, _fault: Fault) {}
    /// No-op (enable the `fault-injection` feature to arm faults).
    pub fn arm_after(_site: &str, _skip: u64, _fault: Fault) {}
    /// No-op (enable the `fault-injection` feature to arm faults).
    pub fn arm_schedule(_site: &str, _schedule: Schedule, _fault: Fault) {}
    /// No-op.
    pub fn disarm(_site: &str) {}
    /// No-op.
    pub fn reset() {}
    /// No-op.
    #[inline(always)]
    pub fn fire(_site: &str) {}
    /// Identity.
    #[inline(always)]
    pub fn transform_text(_site: &str, text: String) -> String {
        text
    }
}

#[cfg(not(feature = "fault-injection"))]
pub use disarmed::{arm, arm_after, arm_schedule, disarm, fire, reset, transform_text};

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    // Module-level serialization: fault state is process-global, and
    // the integration suite (tests/faults.rs) runs in its own process,
    // so only these unit tests share it.
    static GUARD: gswitch_obs::sync::Lock<()> = gswitch_obs::sync::Lock::new(());

    #[test]
    fn panic_fault_is_one_shot_and_skippable() {
        let _g = GUARD.lock();
        reset();
        arm_after(site::EXECUTOR_START, 2, Fault::Panic("boom".into()));
        fire(site::EXECUTOR_START); // skip 1
        fire(site::EXECUTOR_START); // skip 2
        let err = std::panic::catch_unwind(|| fire(site::EXECUTOR_START)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom"), "panic message was `{msg}`");
        // One-shot: the site is clean again.
        fire(site::EXECUTOR_START);
        reset();
    }

    #[test]
    fn corrupt_text_mangles_until_disarmed() {
        let _g = GUARD.lock();
        reset();
        let clean = "{\"version\":1}".to_string();
        assert_eq!(transform_text(site::CACHE_LOAD, clean.clone()), clean);
        arm(site::CACHE_LOAD, Fault::CorruptText);
        let mangled = transform_text(site::CACHE_LOAD, clean.clone());
        assert_ne!(mangled, clean);
        assert!(serde_json::from_str::<serde_json::Value>(&mangled).is_err());
        disarm(site::CACHE_LOAD);
        assert_eq!(transform_text(site::CACHE_LOAD, clean.clone()), clean);
    }

    #[test]
    fn scheduled_panic_recurs_on_its_period() {
        let _g = GUARD.lock();
        reset();
        // Fire on arrivals 1 and 4 (skip 1, then every 3rd), twice only.
        arm_schedule(
            site::EXECUTOR_START,
            Schedule::every(3).after(1).times(2),
            Fault::Panic("recurring".into()),
        );
        let mut fired = Vec::new();
        for arrival in 0..10 {
            if std::panic::catch_unwind(|| fire(site::EXECUTOR_START)).is_err() {
                fired.push(arrival);
            }
        }
        assert_eq!(fired, vec![1, 4], "periodic panic must recur then hit its limit");
        reset();
    }

    #[test]
    fn random_schedule_is_deterministic_and_roughly_calibrated() {
        let _g = GUARD.lock();
        reset();
        let run = || {
            arm_schedule(site::ENGINE_ITERATION, Schedule::random(42, 5), Fault::SlowMs(0));
            let sched = Schedule::random(42, 5);
            let fired: Vec<u64> = (0..200).filter(|&i| sched.fires(i)).collect();
            disarm(site::ENGINE_ITERATION);
            fired
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must replay identically");
        // one-in-5 over 200 arrivals: expect ~40, accept a wide band.
        assert!(a.len() > 15 && a.len() < 80, "rate off: {} firings", a.len());
        reset();
    }

    #[test]
    fn once_schedule_fires_exactly_once() {
        let _g = GUARD.lock();
        reset();
        arm_schedule(site::CACHE_SAVE, Schedule::once(), Fault::Panic("one save".into()));
        assert!(std::panic::catch_unwind(|| fire(site::CACHE_SAVE)).is_err());
        fire(site::CACHE_SAVE); // disarmed after its single firing
        reset();
    }
}
