//! Deterministic fault injection for the serving runtime.
//!
//! Compiled to no-ops unless the `fault-injection` cargo feature is on,
//! so production builds pay nothing and cannot be armed. With the
//! feature on (CI runs `cargo test -p gswitch-runtime --features
//! fault-injection`), tests arm faults at **named sites** — fixed
//! strings listed in [`site`] — and the runtime fires them at exactly
//! those points:
//!
//! * [`Fault::Panic`] — panic at the site (one-shot: auto-disarms when
//!   it fires, so a retry of the same job can succeed).
//! * [`Fault::SlowMs`] — sleep at the site, every time it is reached
//!   (how tests make a fast simulated job overrun a real deadline).
//! * [`Fault::CorruptText`] — mangle text flowing through the site
//!   (how tests corrupt a cache file between disk and parser).
//!
//! A `skip` count delays a fault past the first `skip` firings, which
//! is what "panic mid-expand on iteration 3" means in the integration
//! suite. All state is process-global; tests that arm faults serialize
//! themselves behind a mutex (see `tests/faults.rs`).

/// Named injection sites. Arming any other string is legal but will
/// never fire.
pub mod site {
    /// Fired by [`execute`](crate::execute) before the engine starts.
    pub const EXECUTOR_START: &str = "executor::start";
    /// Fired once per engine super-step, from the scheduler's run
    /// probe (so `SlowMs` stretches iterations and `Panic` lands
    /// mid-run, between super-steps).
    pub const ENGINE_ITERATION: &str = "engine::iteration";
    /// Fired inside [`ConfigCache::store`](crate::ConfigCache::store)
    /// **while the write lock is held** — a panic here poisons the
    /// cache lock, which is exactly what the poison-recovery tests
    /// need to prove survivable.
    pub const CACHE_STORE: &str = "cache::store";
    /// Text-transform site on the bytes read by
    /// [`ConfigCache::load_or_empty`](crate::ConfigCache::load_or_empty).
    pub const CACHE_LOAD: &str = "cache::load";
}

/// What an armed site does when reached.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Panic with this message. One-shot: disarms as it fires.
    Panic(String),
    /// Sleep this many milliseconds. Persistent until disarmed.
    SlowMs(u64),
    /// Replace text passing through the site with unparseable garbage.
    /// Persistent until disarmed.
    CorruptText,
}

#[cfg(feature = "fault-injection")]
mod armed {
    use super::Fault;
    use gswitch_obs::sync::Lock;
    use std::collections::HashMap;

    struct ArmedFault {
        fault: Fault,
        /// Firings to let pass before acting.
        skip: u64,
    }

    static SITES: Lock<Option<HashMap<String, ArmedFault>>> = Lock::new(None);

    fn with_sites<R>(f: impl FnOnce(&mut HashMap<String, ArmedFault>) -> R) -> R {
        let mut guard = SITES.lock();
        f(guard.get_or_insert_with(HashMap::new))
    }

    /// Arm `fault` at `site`, firing on the first arrival.
    pub fn arm(site: &str, fault: Fault) {
        arm_after(site, 0, fault);
    }

    /// Arm `fault` at `site`, letting the first `skip` arrivals pass.
    pub fn arm_after(site: &str, skip: u64, fault: Fault) {
        with_sites(|s| s.insert(site.to_string(), ArmedFault { fault, skip }));
    }

    /// Disarm one site.
    pub fn disarm(site: &str) {
        with_sites(|s| s.remove(site));
    }

    /// Disarm everything (test teardown).
    pub fn reset() {
        with_sites(|s| s.clear());
    }

    /// Decide what to do at `site` without holding the lock while
    /// acting (a panic must not poison the fault table itself).
    fn take_action(site: &str) -> Option<Fault> {
        with_sites(|s| {
            let armed = s.get_mut(site)?;
            if armed.skip > 0 {
                armed.skip -= 1;
                return None;
            }
            match armed.fault {
                // One-shot: remove before firing.
                Fault::Panic(_) => s.remove(site).map(|a| a.fault),
                ref f => Some(f.clone()),
            }
        })
    }

    /// Fire `site`: may panic or sleep.
    pub fn fire(site: &str) {
        match take_action(site) {
            Some(Fault::Panic(msg)) => panic!("injected fault at {site}: {msg}"),
            Some(Fault::SlowMs(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            Some(Fault::CorruptText) | None => {}
        }
    }

    /// Pass `text` through `site`, corrupting it if so armed. Panics
    /// and sleeps also apply here.
    pub fn transform_text(site: &str, text: String) -> String {
        match take_action(site) {
            Some(Fault::CorruptText) => {
                // Truncate mid-token and append garbage: defeats both
                // full and partial JSON parses.
                let mut cut = text.len() / 2;
                while cut > 0 && !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                format!("{}\u{0}garbage%%", &text[..cut])
            }
            Some(Fault::Panic(msg)) => panic!("injected fault at {site}: {msg}"),
            Some(Fault::SlowMs(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                text
            }
            None => text,
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{arm, arm_after, disarm, fire, reset, transform_text};

/// No-op stubs compiled when the `fault-injection` feature is off:
/// sites cannot be armed and firing costs nothing.
#[cfg(not(feature = "fault-injection"))]
mod disarmed {
    use super::Fault;

    /// No-op (enable the `fault-injection` feature to arm faults).
    pub fn arm(_site: &str, _fault: Fault) {}
    /// No-op (enable the `fault-injection` feature to arm faults).
    pub fn arm_after(_site: &str, _skip: u64, _fault: Fault) {}
    /// No-op.
    pub fn disarm(_site: &str) {}
    /// No-op.
    pub fn reset() {}
    /// No-op.
    #[inline(always)]
    pub fn fire(_site: &str) {}
    /// Identity.
    #[inline(always)]
    pub fn transform_text(_site: &str, text: String) -> String {
        text
    }
}

#[cfg(not(feature = "fault-injection"))]
pub use disarmed::{arm, arm_after, disarm, fire, reset, transform_text};

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    // Module-level serialization: fault state is process-global, and
    // the integration suite (tests/faults.rs) runs in its own process,
    // so only these unit tests share it.
    static GUARD: gswitch_obs::sync::Lock<()> = gswitch_obs::sync::Lock::new(());

    #[test]
    fn panic_fault_is_one_shot_and_skippable() {
        let _g = GUARD.lock();
        reset();
        arm_after(site::EXECUTOR_START, 2, Fault::Panic("boom".into()));
        fire(site::EXECUTOR_START); // skip 1
        fire(site::EXECUTOR_START); // skip 2
        let err = std::panic::catch_unwind(|| fire(site::EXECUTOR_START)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom"), "panic message was `{msg}`");
        // One-shot: the site is clean again.
        fire(site::EXECUTOR_START);
        reset();
    }

    #[test]
    fn corrupt_text_mangles_until_disarmed() {
        let _g = GUARD.lock();
        reset();
        let clean = "{\"version\":1}".to_string();
        assert_eq!(transform_text(site::CACHE_LOAD, clean.clone()), clean);
        arm(site::CACHE_LOAD, Fault::CorruptText);
        let mangled = transform_text(site::CACHE_LOAD, clean.clone());
        assert_ne!(mangled, clean);
        assert!(serde_json::from_str::<serde_json::Value>(&mangled).is_err());
        disarm(site::CACHE_LOAD);
        assert_eq!(transform_text(site::CACHE_LOAD, clean.clone()), clean);
    }
}
