//! Circuit breakers keyed by (graph fingerprint, algorithm).
//!
//! A graph that keeps crashing workers should not be retried forever:
//! each failed run costs a worker slot, a queue slot, and (for the
//! client) a full timeout. [`BreakerSet`] tracks consecutive
//! infrastructure failures ([`JobStatus::Failed`](crate::JobStatus) /
//! worker panics) per (fingerprint, algorithm) key and applies the
//! classic three-state machine:
//!
//! ```text
//!          K consecutive failures
//! Closed ───────────────────────────▶ Open
//!    ▲                                  │ cooldown elapsed
//!    │ probe succeeds                   ▼
//!    └────────────────────────────── HalfOpen ──▶ Open (probe fails)
//! ```
//!
//! While a breaker is open, submissions against its key fail fast with
//! the typed [`JobStatus::BreakerOpen`](crate::JobStatus) status —
//! no queue slot, no worker time. After
//! [`BreakerConfig::cooldown_ms`] a single *probe* job is admitted
//! (half-open); its outcome decides whether the breaker closes or
//! re-opens. Only infrastructure outcomes move the state machine:
//! `Ok` and `Error` (the request was bad, the runtime was fine) count
//! as successes, `Failed` counts as a failure, and neutral outcomes
//! (cancelled / shed / deadline) release a held probe slot without
//! voting either way.
//!
//! All timing runs on the runtime's observability [`Clock`], so tests
//! with a manual clock can step breakers through cooldown
//! deterministically.

use crate::obs::metric;
use gswitch_obs::sync::Lock;
use gswitch_obs::{Clock, Counter, MetricsRegistry};
use std::collections::HashMap;

/// Breaker tuning knobs.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive infrastructure failures that open the breaker
    /// (minimum 1).
    pub failure_threshold: u32,
    /// How long an open breaker fails fast before admitting a half-open
    /// probe, in milliseconds.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 5, cooldown_ms: 1_000 }
    }
}

/// Breaker identity: which graph (by content fingerprint), which
/// algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BreakerKey {
    /// Content fingerprint of the graph (`Fingerprint.0`).
    pub fingerprint: u64,
    /// Algorithm tag (`"bfs"`, `"pr"`, …).
    pub algo: &'static str,
}

/// The three breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic admitted.
    Closed,
    /// Failing fast: all traffic refused until cooldown.
    Open,
    /// Cooldown elapsed: exactly one probe in flight decides.
    HalfOpen,
}

impl BreakerState {
    /// Display tag (`"closed"` / `"open"` / `"half-open"`).
    pub fn tag(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Admission decision for one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Breaker closed (or unknown key): admit normally.
    Allow,
    /// Breaker half-open and this submission won the probe slot: admit,
    /// and report the outcome back as a probe.
    AllowProbe,
    /// Breaker open: fail fast. Carries the remaining cooldown so the
    /// client knows when a retry becomes worthwhile.
    FailFast {
        /// Milliseconds until the breaker will admit a probe.
        retry_after_ms: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct Cell {
    state: BreakerState,
    consecutive_failures: u32,
    /// Clock timestamp of the transition into `Open`.
    opened_at_ns: u64,
    /// Whether the half-open probe slot is taken.
    probe_inflight: bool,
}

impl Cell {
    fn new() -> Self {
        Cell {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_ns: 0,
            probe_inflight: false,
        }
    }
}

/// One breaker's public snapshot (for `health`).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BreakerView {
    /// Graph fingerprint, hex.
    pub fingerprint: String,
    /// Algorithm tag.
    pub algo: String,
    /// State tag (`"closed"` / `"open"` / `"half-open"`).
    pub state: String,
    /// Consecutive failures recorded so far.
    pub consecutive_failures: u32,
}

/// All breakers of one scheduler/service, behind a single lock.
///
/// The map is keyed by (fingerprint, algo) and grows only with the
/// number of distinct graphs × 5 algorithms actually served; closed
/// breakers with zero failures are pruned on success, so steady-state
/// healthy serving keeps the map empty.
#[derive(Debug)]
pub struct BreakerSet {
    config: BreakerConfig,
    clock: Clock,
    cells: Lock<HashMap<BreakerKey, Cell>>,
    opened: Counter,
    half_open: Counter,
    closed: Counter,
}

impl BreakerSet {
    /// A breaker set reporting transitions into `registry` under the
    /// canonical metric names, timing cooldowns on `clock`.
    pub fn new(config: BreakerConfig, clock: Clock, registry: &MetricsRegistry) -> Self {
        BreakerSet {
            config: BreakerConfig {
                failure_threshold: config.failure_threshold.max(1),
                cooldown_ms: config.cooldown_ms,
            },
            clock,
            cells: Lock::new(HashMap::new()),
            opened: registry.counter(metric::BREAKER_OPENED),
            half_open: registry.counter(metric::BREAKER_HALF_OPEN),
            closed: registry.counter(metric::BREAKER_CLOSED),
        }
    }

    /// The configured failure threshold.
    pub fn failure_threshold(&self) -> u32 {
        self.config.failure_threshold
    }

    /// The configured cooldown, milliseconds.
    pub fn cooldown_ms(&self) -> u64 {
        self.config.cooldown_ms
    }

    /// Decide admission for one submission against `key`.
    pub fn admit(&self, key: BreakerKey) -> BreakerDecision {
        let mut cells = self.cells.lock();
        let cell = match cells.get_mut(&key) {
            Some(c) => c,
            None => return BreakerDecision::Allow,
        };
        match cell.state {
            BreakerState::Closed => BreakerDecision::Allow,
            BreakerState::Open => {
                let elapsed_ms = self.clock.now_ns().saturating_sub(cell.opened_at_ns) / 1_000_000;
                if elapsed_ms >= self.config.cooldown_ms {
                    cell.state = BreakerState::HalfOpen;
                    cell.probe_inflight = true;
                    self.half_open.inc();
                    BreakerDecision::AllowProbe
                } else {
                    BreakerDecision::FailFast {
                        retry_after_ms: self.config.cooldown_ms - elapsed_ms,
                    }
                }
            }
            BreakerState::HalfOpen => {
                if cell.probe_inflight {
                    // The probe decides; everyone else keeps waiting.
                    BreakerDecision::FailFast { retry_after_ms: self.config.cooldown_ms }
                } else {
                    cell.probe_inflight = true;
                    BreakerDecision::AllowProbe
                }
            }
        }
    }

    /// Record an infrastructure-healthy outcome (`Ok`, or `Error` — the
    /// request was bad but the runtime worked).
    pub fn record_success(&self, key: BreakerKey, probe: bool) {
        let mut cells = self.cells.lock();
        if let Some(cell) = cells.get_mut(&key) {
            if probe || cell.state == BreakerState::HalfOpen {
                self.closed.inc();
            }
            // Healthy again: drop the cell entirely so the map stays
            // bounded by currently-unhealthy keys.
            cells.remove(&key);
        }
    }

    /// Record an infrastructure failure (`Failed` / worker panic).
    pub fn record_failure(&self, key: BreakerKey, probe: bool) {
        let mut cells = self.cells.lock();
        let cell = cells.entry(key).or_insert_with(Cell::new);
        cell.consecutive_failures = cell.consecutive_failures.saturating_add(1);
        if probe {
            cell.probe_inflight = false;
        }
        let should_open = match cell.state {
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => cell.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if should_open {
            cell.state = BreakerState::Open;
            cell.opened_at_ns = self.clock.now_ns();
            self.opened.inc();
        }
    }

    /// Record a neutral outcome (cancelled / shed / deadline): releases
    /// a held probe slot without voting on health.
    pub fn record_neutral(&self, key: BreakerKey, probe: bool) {
        if !probe {
            return;
        }
        let mut cells = self.cells.lock();
        if let Some(cell) = cells.get_mut(&key) {
            if cell.state == BreakerState::HalfOpen {
                cell.probe_inflight = false;
            }
        }
    }

    /// Current state for `key` (`Closed` for unknown keys).
    pub fn state(&self, key: BreakerKey) -> BreakerState {
        self.cells.lock().get(&key).map(|c| c.state).unwrap_or(BreakerState::Closed)
    }

    /// Number of breakers currently open.
    pub fn open_count(&self) -> usize {
        self.cells.lock().values().filter(|c| c.state == BreakerState::Open).count()
    }

    /// Snapshot of every tracked (unhealthy or probing) breaker, for
    /// the `health` verb. Sorted for deterministic output.
    pub fn snapshot(&self) -> Vec<BreakerView> {
        let cells = self.cells.lock();
        let mut views: Vec<BreakerView> = cells
            .iter()
            .map(|(k, c)| BreakerView {
                fingerprint: format!("{:016x}", k.fingerprint),
                algo: k.algo.to_string(),
                state: c.state.tag().to_string(),
                consecutive_failures: c.consecutive_failures,
            })
            .collect();
        views.sort_by(|a, b| (&a.fingerprint, &a.algo).cmp(&(&b.fingerprint, &b.algo)));
        views
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(threshold: u32, cooldown_ms: u64) -> BreakerSet {
        BreakerSet::new(
            BreakerConfig { failure_threshold: threshold, cooldown_ms },
            Clock::manual(),
            &MetricsRegistry::new(),
        )
    }

    const KEY: BreakerKey = BreakerKey { fingerprint: 0xAB, algo: "bfs" };

    #[test]
    fn opens_after_k_consecutive_failures_and_fails_fast() {
        let b = set(3, 100);
        for _ in 0..2 {
            assert_eq!(b.admit(KEY), BreakerDecision::Allow);
            b.record_failure(KEY, false);
        }
        assert_eq!(b.state(KEY), BreakerState::Closed);
        b.record_failure(KEY, false);
        assert_eq!(b.state(KEY), BreakerState::Open);
        match b.admit(KEY) {
            BreakerDecision::FailFast { retry_after_ms } => assert!(retry_after_ms <= 100),
            d => panic!("open breaker admitted traffic: {d:?}"),
        }
        assert_eq!(b.open_count(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = set(3, 100);
        b.record_failure(KEY, false);
        b.record_failure(KEY, false);
        b.record_success(KEY, false);
        b.record_failure(KEY, false);
        b.record_failure(KEY, false);
        assert_eq!(b.state(KEY), BreakerState::Closed, "streak must reset on success");
        assert!(b.snapshot().iter().all(|v| v.consecutive_failures < 3));
    }

    #[test]
    fn cooldown_probe_closes_or_reopens() {
        let b = set(1, 100);
        let clock = b.clock.clone();
        b.record_failure(KEY, false);
        assert_eq!(b.state(KEY), BreakerState::Open);
        // Before cooldown: fail fast. After: exactly one probe.
        assert!(matches!(b.admit(KEY), BreakerDecision::FailFast { .. }));
        clock.advance_ns(150 * 1_000_000);
        assert_eq!(b.admit(KEY), BreakerDecision::AllowProbe);
        // Concurrent traffic during the probe still fails fast.
        assert!(matches!(b.admit(KEY), BreakerDecision::FailFast { .. }));
        // Failed probe → straight back to open.
        b.record_failure(KEY, true);
        assert_eq!(b.state(KEY), BreakerState::Open);
        // Next cooldown, successful probe → closed and pruned.
        clock.advance_ns(150 * 1_000_000);
        assert_eq!(b.admit(KEY), BreakerDecision::AllowProbe);
        b.record_success(KEY, true);
        assert_eq!(b.state(KEY), BreakerState::Closed);
        assert!(b.snapshot().is_empty(), "closed breakers must be pruned");
    }

    #[test]
    fn neutral_outcome_releases_the_probe_slot() {
        let b = set(1, 10);
        let clock = b.clock.clone();
        b.record_failure(KEY, false);
        clock.advance_ns(20 * 1_000_000);
        assert_eq!(b.admit(KEY), BreakerDecision::AllowProbe);
        // The probe was cancelled before it could vote: the slot frees
        // up so the next submission can probe instead of deadlocking
        // the half-open state.
        b.record_neutral(KEY, true);
        assert_eq!(b.admit(KEY), BreakerDecision::AllowProbe);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let b = set(1, 100);
        let other = BreakerKey { fingerprint: 0xCD, algo: "pr" };
        b.record_failure(KEY, false);
        assert_eq!(b.state(KEY), BreakerState::Open);
        assert_eq!(b.admit(other), BreakerDecision::Allow);
        assert_eq!(b.state(other), BreakerState::Closed);
    }
}
