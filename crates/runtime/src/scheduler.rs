//! The job scheduler: a bounded queue feeding a worker pool.
//!
//! Admission control is explicit — [`Scheduler::submit`] fails fast
//! with [`SubmitError::QueueFull`] instead of buffering unboundedly,
//! and with [`SubmitError::UnknownGraph`] before a bad job ever
//! occupies a queue slot. Each job carries a deadline measured from
//! admission (so queue wait counts); jobs whose deadline passes before
//! a worker picks them up are dropped unrun, running jobs are stopped
//! cooperatively at the next engine super-step, and jobs that finish
//! past it report [`JobStatus::DeadlineExceeded`] with the result
//! withheld.
//! Cancellation is cooperative at super-step granularity: a job
//! cancelled before execution starts never runs; one already executing
//! is stopped at its next engine super-step via the job's
//! [`CancelToken`] and reports [`JobStatus::Cancelled`].
//!
//! Workers are panic-isolated: each job body runs under
//! `catch_unwind`, so a panicking job becomes a structured
//! [`JobStatus::Failed`] outcome (panic payload in `error`) while the
//! worker thread — and every other queued or running job — carries on.
//! Shared state uses poison-recovering locks (`gswitch_obs::sync`), so
//! even a panic at an unlucky point cannot wedge the scheduler.
//!
//! Overload management (DESIGN.md §4.14) layers three mechanisms over
//! that base. **Shedding**: every job carries a [`Priority`] class;
//! when the queue is full, already-expired queued jobs are purged and,
//! failing that, the lowest-priority / most-expired queued job strictly
//! below the incoming class is dropped with the typed
//! [`JobStatus::Shed`] status to admit the newcomer — equal-priority
//! traffic still sees [`SubmitError::QueueFull`]. Above the occupancy
//! watermark, admissions whose deadline cannot be met given the
//! observed p95 queue wait are refused up front
//! ([`SubmitError::DeadlineUnmeetable`]). **Circuit breakers**
//! ([`BreakerSet`]): per (graph fingerprint, algorithm), repeated
//! worker failures open the breaker and subsequent submissions fail
//! fast with [`JobStatus::BreakerOpen`] until a cooldown probe
//! succeeds. **Brownout** ([`Brownout`]): sustained high occupancy
//! switches the pool to degraded mode — sentinel verification and
//! decision tracing off — until pressure eases.

use crate::breaker::{BreakerDecision, BreakerKey, BreakerSet};
use crate::brownout::Brownout;
use crate::cache::ConfigCache;
use crate::executor::execute;
use crate::obs::{metric, RuntimeObs};
use crate::query::{JobOutcome, JobSpec, JobStatus, Priority};
use crate::registry::GraphRegistry;
use gswitch_core::{AutoPolicy, CancelToken, ProbeHandle, RunProbe, StopReason};
use gswitch_obs::sync::{recover, Lock};
use gswitch_obs::{
    Clock, Counter, Gauge, Histogram, MetricsRegistry, RecorderHandle, SpanCtx, SpanKind,
    SpanRecord,
};
use gswitch_simt::DeviceSpec;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar};
use std::time::Duration;

pub use crate::breaker::BreakerConfig;
pub use crate::brownout::BrownoutConfig;

/// Queue-wait observations required before the p95 estimate is trusted
/// for deadline-unmeetable rejection (a cold histogram says nothing).
pub const MIN_WAIT_SAMPLES: u64 = 16;

/// Scheduler tuning knobs.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Worker threads.
    pub workers: usize,
    /// Admission bound: jobs queued (not yet picked up) beyond which
    /// submissions are rejected.
    pub queue_capacity: usize,
    /// Deadline for jobs that do not set one, in milliseconds.
    pub default_timeout_ms: u64,
    /// The simulated device every job runs on.
    pub device: DeviceSpec,
    /// Divergence-sentinel cadence forwarded to every engine run:
    /// cross-check the tuned variant against the serial reference
    /// derivation every N standalone super-steps (0 = off, the
    /// default). See [`gswitch_core::EngineOptions::verify_every`].
    /// Suspended while brownout is active.
    pub verify_every: u32,
    /// Queue occupancy (0.0–1.0) at or above which the overload
    /// machinery engages: unmeetable-deadline rejection applies, and
    /// brownout sampling counts the queue as pressured.
    pub shed_watermark: f64,
    /// Circuit-breaker thresholds (per graph fingerprint × algorithm).
    pub breaker: BreakerConfig,
    /// Brownout (degraded-mode) detection thresholds.
    pub brownout: BrownoutConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8),
            queue_capacity: 256,
            default_timeout_ms: 60_000,
            device: DeviceSpec::default(),
            verify_every: 0,
            shed_watermark: 0.75,
            breaker: BreakerConfig::default(),
            brownout: BrownoutConfig::default(),
        }
    }
}

/// Why a submission was refused at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity and no lower-priority victim
    /// could be shed; retry later.
    QueueFull,
    /// The named graph is not registered.
    UnknownGraph(String),
    /// The scheduler is shutting down.
    ShuttingDown,
    /// The queue is above its watermark and the observed p95 queue wait
    /// already exceeds this job's deadline: admitting it would only
    /// manufacture a `DeadlineExceeded`. Retry with a looser deadline
    /// or once pressure eases.
    DeadlineUnmeetable {
        /// Observed p95 admission-to-pickup wait, milliseconds.
        p95_wait_ms: u64,
        /// The deadline the job asked for, milliseconds.
        deadline_ms: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::UnknownGraph(g) => write!(f, "unknown graph `{g}`"),
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
            SubmitError::DeadlineUnmeetable { p95_wait_ms, deadline_ms } => write!(
                f,
                "deadline {deadline_ms} ms cannot be met: p95 queue wait is {p95_wait_ms} ms"
            ),
        }
    }
}

#[derive(Debug)]
struct Job {
    id: u64,
    spec: JobSpec,
    /// Admission timestamp on the obs clock.
    admitted_ns: u64,
    /// Pre-allocated id of this job's `Request` span, so queue-wait and
    /// execute spans can parent under it from any worker.
    span_id: u64,
    deadline: Duration,
    /// Resolved priority class (shed policy and pickup order).
    priority: Priority,
    /// Circuit-breaker identity, resolved at admission so the worker
    /// can vote the outcome even if the graph is replaced mid-flight.
    key: BreakerKey,
    /// Whether this job holds its breaker's half-open probe slot.
    probe: bool,
    tx: mpsc::Sender<JobOutcome>,
}

impl Job {
    fn deadline_ns(&self) -> u64 {
        u64::try_from(self.deadline.as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Pre-resolved metric handles, so the hot paths never touch the
/// registry's name map.
#[derive(Debug)]
struct SchedulerMetrics {
    queue_depth: Gauge,
    submitted: Counter,
    rejected: Counter,
    ok: Counter,
    error: Counter,
    failed: Counter,
    cancelled: Counter,
    timeout_queued: Counter,
    timeout_midrun: Counter,
    timeout_late: Counter,
    retried: Counter,
    shed: Counter,
    unmeetable: Counter,
    breaker_fastfail: Counter,
    queue_wait_ms: Histogram,
    execute_ms: Histogram,
    total_ms: Histogram,
}

impl SchedulerMetrics {
    fn bind(r: &MetricsRegistry) -> Self {
        SchedulerMetrics {
            queue_depth: r.gauge(metric::QUEUE_DEPTH),
            submitted: r.counter(metric::JOBS_SUBMITTED),
            rejected: r.counter(metric::JOBS_REJECTED),
            ok: r.counter(metric::JOBS_OK),
            error: r.counter(metric::JOBS_ERROR),
            failed: r.counter(metric::JOBS_FAILED),
            cancelled: r.counter(metric::JOBS_CANCELLED),
            timeout_queued: r.counter(metric::JOBS_TIMEOUT_QUEUED),
            timeout_midrun: r.counter(metric::JOBS_TIMEOUT_MIDRUN),
            timeout_late: r.counter(metric::JOBS_TIMEOUT_LATE),
            retried: r.counter(metric::JOBS_RETRIED),
            shed: r.counter(metric::JOBS_SHED),
            unmeetable: r.counter(metric::JOBS_UNMEETABLE),
            breaker_fastfail: r.counter(metric::JOBS_BREAKER_OPEN),
            queue_wait_ms: r.latency(metric::QUEUE_WAIT_MS),
            execute_ms: r.latency(metric::EXECUTE_MS),
            total_ms: r.latency(metric::JOB_TOTAL_MS),
        }
    }
}

#[derive(Debug)]
struct Shared {
    registry: Arc<GraphRegistry>,
    cache: Arc<ConfigCache>,
    obs: Arc<RuntimeObs>,
    m: SchedulerMetrics,
    device: DeviceSpec,
    verify_every: u32,
    queue: Lock<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    /// Ids cancelled while still queued; pruned at pickup, and only
    /// ever populated with ids actually present in the queue, so the
    /// set stays bounded by the queue capacity.
    cancelled: Lock<HashSet<u64>>,
    /// Cancel tokens of currently executing jobs, so [`Scheduler::cancel`]
    /// can reach a job mid-run.
    running: Lock<HashMap<u64, Arc<CancelToken>>>,
    /// Circuit breakers per (graph fingerprint, algorithm); shared with
    /// the batch path (see [`crate::shards::ShardService`]).
    breakers: Arc<BreakerSet>,
    /// Degraded-mode detector, sampled at every admission.
    brownout: Arc<Brownout>,
}

/// The engine-facing stop probe for one job: the job's cancel token
/// (which also carries the deadline), with a fault-injection site per
/// super-step so the test harness can stretch or kill iterations.
struct JobProbe {
    token: Arc<CancelToken>,
}

impl RunProbe for JobProbe {
    fn check(&self, iteration: u32) -> Option<StopReason> {
        crate::faults::fire(crate::faults::site::ENGINE_ITERATION);
        self.token.check(iteration)
    }
}

/// Handle to one admitted job; wait on it for the outcome.
#[derive(Debug)]
pub struct JobHandle {
    /// Id assigned at admission (use for [`Scheduler::cancel`]).
    pub id: u64,
    rx: mpsc::Receiver<JobOutcome>,
    graph: String,
    algo: String,
    clock: Clock,
    admitted_ns: u64,
}

impl JobHandle {
    /// Block until the job reaches a terminal state.
    ///
    /// Never panics: if the worker died without reporting (its thread
    /// was killed, or the scheduler was torn down mid-job), the outcome
    /// is a synthesized [`JobStatus::Failed`] instead.
    pub fn wait(self) -> JobOutcome {
        match self.rx.recv() {
            Ok(out) => out,
            Err(_) => JobOutcome {
                id: self.id,
                graph: self.graph,
                algo: self.algo,
                status: JobStatus::Failed,
                error: Some(
                    "worker dropped without reporting (worker thread died or the scheduler \
                     was torn down mid-job)"
                        .to_string(),
                ),
                cache: None,
                config: None,
                wall_ms: self.clock.elapsed_ms(self.admitted_ns),
                sim_ms: 0.0,
                converged: false,
                metrics: Vec::new(),
                iterations: Vec::new(),
                payload: None,
            },
        }
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<JobOutcome> {
        self.rx.try_recv().ok()
    }
}

/// The worker pool.
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    capacity: usize,
    default_timeout_ms: u64,
    /// Occupancy fraction at which overload handling engages.
    shed_watermark: f64,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Start `config.workers` workers over `registry` and `cache`, with
    /// a private [`RuntimeObs`] (metrics still work; nobody reads them).
    pub fn new(
        registry: Arc<GraphRegistry>,
        cache: Arc<ConfigCache>,
        config: SchedulerConfig,
    ) -> Self {
        Self::with_obs(registry, cache, config, Arc::new(RuntimeObs::new()))
    }

    /// Start workers reporting into a caller-owned observability root:
    /// scheduler gauges/counters/latency histograms land in
    /// `obs.metrics`, the cache counters are bound into the same
    /// registry, and decision traces (when `obs` has tracing on) land
    /// in `obs.trace`.
    pub fn with_obs(
        registry: Arc<GraphRegistry>,
        cache: Arc<ConfigCache>,
        config: SchedulerConfig,
        obs: Arc<RuntimeObs>,
    ) -> Self {
        cache.bind_metrics(&obs.metrics);
        let breakers = Arc::new(BreakerSet::new(config.breaker.clone(), obs.clock(), &obs.metrics));
        let brownout = Arc::new(Brownout::new(config.brownout.clone(), &obs.metrics));
        let shared = Arc::new(Shared {
            registry,
            cache,
            m: SchedulerMetrics::bind(&obs.metrics),
            obs,
            device: config.device.clone(),
            verify_every: config.verify_every,
            queue: Lock::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cancelled: Lock::new(HashSet::new()),
            running: Lock::new(HashMap::new()),
            breakers,
            brownout,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gswitch-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i as u32))
                    .expect("spawn worker")
            })
            .collect();
        Scheduler {
            shared,
            next_id: AtomicU64::new(1),
            capacity: config.queue_capacity.max(1),
            default_timeout_ms: config.default_timeout_ms,
            shed_watermark: config.shed_watermark.clamp(0.0, 1.0),
            workers,
        }
    }

    /// Submit a job; fails fast on admission problems.
    ///
    /// Under overload this is where the shed policy runs: a full queue
    /// first purges already-expired jobs, then evicts the
    /// lowest-priority / most-expired queued job strictly below the
    /// incoming class (its handle resolves to [`JobStatus::Shed`]).
    /// Only when neither frees a slot does the submission see
    /// [`SubmitError::QueueFull`]. An open circuit breaker for the
    /// (graph, algorithm) short-circuits everything: the returned
    /// handle resolves immediately to [`JobStatus::BreakerOpen`].
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared.m.rejected.inc();
            return Err(SubmitError::ShuttingDown);
        }
        let entry = match self.shared.registry.get(&spec.graph) {
            Some(e) => e,
            None => {
                self.shared.m.rejected.inc();
                return Err(SubmitError::UnknownGraph(spec.graph.clone()));
            }
        };
        let key = BreakerKey { fingerprint: entry.fingerprint().0, algo: spec.query.algo() };
        drop(entry);
        let deadline = Duration::from_millis(spec.timeout_ms.unwrap_or(self.default_timeout_ms));
        let (tx, rx) = mpsc::channel();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let graph = spec.graph.clone();
        let algo = spec.query.algo().to_string();
        let priority = spec.priority();
        let clock = self.shared.obs.clock();

        // Circuit breaker: an open breaker answers before the queue is
        // touched. The job still counts as submitted and resolves
        // through its handle like any other terminal outcome, so the
        // conservation invariant (submitted == sum of terminal states)
        // holds with breakers in play.
        let probe = match self.shared.breakers.admit(key) {
            BreakerDecision::Allow => false,
            BreakerDecision::AllowProbe => true,
            BreakerDecision::FailFast { retry_after_ms } => {
                self.shared.m.submitted.inc();
                self.shared.m.breaker_fastfail.inc();
                let admitted_ns = clock.now_ns();
                let out = JobOutcome {
                    id,
                    graph: graph.clone(),
                    algo: algo.clone(),
                    status: JobStatus::BreakerOpen,
                    error: Some(format!(
                        "circuit breaker open for {graph}/{algo}: retry in ~{retry_after_ms} ms"
                    )),
                    cache: None,
                    config: None,
                    wall_ms: 0.0,
                    sim_ms: 0.0,
                    converged: false,
                    metrics: Vec::new(),
                    iterations: Vec::new(),
                    payload: None,
                };
                let _ = tx.send(out);
                return Ok(JobHandle { id, rx, graph, algo, clock, admitted_ns });
            }
        };

        let admitted_ns = clock.now_ns();
        let span_id = self.shared.obs.span_collector().alloc_id();
        let occupancy;
        {
            let mut q = self.shared.queue.lock();
            if q.len() >= self.capacity {
                // Shed stage 1: purge queued jobs whose deadline has
                // already passed — they could only ever report
                // DeadlineExceeded, so resolve them now and free slots.
                let now = clock.now_ns();
                let mut i = 0;
                while i < q.len() {
                    let expired = q
                        .get(i)
                        .map(|j| now.saturating_sub(j.admitted_ns) > j.deadline_ns())
                        .unwrap_or(false);
                    if !expired {
                        i += 1;
                        continue;
                    }
                    if let Some(victim) = q.remove(i) {
                        self.shared.m.timeout_queued.inc();
                        self.resolve_dropped(&victim, JobStatus::DeadlineExceeded, &clock);
                    }
                }
                // Shed stage 2: evict the lowest-priority, most-expired
                // queued job strictly below the incoming class. Equal
                // priorities never shed each other — FIFO fairness
                // within a class survives overload.
                if q.len() >= self.capacity {
                    let now = clock.now_ns();
                    let victim_idx = q
                        .iter()
                        .enumerate()
                        .filter(|(_, j)| j.priority < priority)
                        .min_by_key(|(_, j)| {
                            let age = now.saturating_sub(j.admitted_ns);
                            (j.priority, j.deadline_ns().saturating_sub(age))
                        })
                        .map(|(i, _)| i);
                    match victim_idx.and_then(|i| q.remove(i)) {
                        Some(victim) => {
                            self.shared.m.shed.inc();
                            self.resolve_dropped(&victim, JobStatus::Shed, &clock);
                        }
                        None => {
                            self.shared.m.rejected.inc();
                            self.shared.breakers.record_neutral(key, probe);
                            self.shared.brownout.on_sample(1.0);
                            return Err(SubmitError::QueueFull);
                        }
                    }
                }
            }
            // Queue-wait-aware rejection: above the watermark, refuse
            // work whose deadline the observed p95 wait already blows —
            // admitting it would only manufacture a DeadlineExceeded
            // after burning a queue slot for the full wait.
            let occ_now = q.len() as f64 / self.capacity as f64;
            if occ_now >= self.shed_watermark {
                let wait = self.shared.m.queue_wait_ms.snapshot();
                let deadline_ms = deadline.as_millis().min(u128::from(u64::MAX)) as u64;
                if wait.count >= MIN_WAIT_SAMPLES {
                    let p95 = wait.quantile(0.95);
                    if p95 > deadline_ms as f64 {
                        self.shared.m.rejected.inc();
                        self.shared.m.unmeetable.inc();
                        self.shared.breakers.record_neutral(key, probe);
                        self.shared.brownout.on_sample(occ_now);
                        return Err(SubmitError::DeadlineUnmeetable {
                            p95_wait_ms: p95 as u64,
                            deadline_ms,
                        });
                    }
                }
            }
            q.push_back(Job { id, spec, admitted_ns, span_id, deadline, priority, key, probe, tx });
            self.shared.m.queue_depth.set(q.len() as i64);
            occupancy = q.len() as f64 / self.capacity as f64;
        }
        self.shared.brownout.on_sample(occupancy);
        self.shared.m.submitted.inc();
        self.shared.work_ready.notify_one();
        Ok(JobHandle { id, rx, graph, algo, clock, admitted_ns })
    }

    /// Resolve a job dropped from the queue at admission time (purged
    /// past-deadline or shed for priority): send its terminal outcome,
    /// settle the aggregates, and release any breaker probe slot. The
    /// caller has already bumped the status-specific counter.
    fn resolve_dropped(&self, victim: &Job, status: JobStatus, clock: &Clock) {
        self.shared.cancelled.lock().remove(&victim.id);
        self.shared.breakers.record_neutral(victim.key, victim.probe);
        let mut out = outcome_skeleton(victim, status, clock);
        if status == JobStatus::Shed {
            out.error = Some(format!(
                "shed at admission: queue full and a {} submission outranked this {} job",
                "higher-priority",
                victim.priority.tag()
            ));
        }
        self.shared.m.total_ms.observe(out.wall_ms);
        let _ = victim.tx.send(out);
    }

    /// Submit `spec`, wait for the outcome, and transparently resubmit
    /// when the outcome is retryable (a worker [`JobStatus::Failed`] or
    /// an overload [`JobStatus::Shed`], never a user error) — up to
    /// `retries` extra attempts, sleeping a jittered `backoff` before
    /// the first retry and doubling the base each time. The jitter is
    /// deterministic per (job id, attempt) and bounded in
    /// `[base, 2·base)` (see [`retry_jitter`]), so synchronized clients
    /// spread out instead of retrying in lockstep. Admission errors
    /// propagate immediately; each retry is counted in the
    /// `jobs_retried` metric.
    pub fn submit_with_retry(
        &self,
        spec: JobSpec,
        retries: u32,
        backoff: Duration,
    ) -> Result<JobOutcome, SubmitError> {
        let mut delay = backoff;
        for attempt in 0..=retries {
            let out = self.submit(spec.clone())?.wait();
            if !out.status.is_retryable() || attempt == retries {
                return Ok(out);
            }
            self.shared.m.retried.inc();
            std::thread::sleep(retry_jitter(delay, out.id ^ u64::from(attempt)));
            delay = delay.saturating_mul(2);
        }
        unreachable!("the final attempt returns above")
    }

    /// Request cancellation of job `id`, wherever it is:
    ///
    /// * still queued — it never runs and reports
    ///   [`JobStatus::Cancelled`];
    /// * currently executing — its engine run is stopped at the next
    ///   super-step and reports [`JobStatus::Cancelled`];
    /// * already finished (or unknown) — no-op, and nothing is
    ///   remembered, so cancelling completed ids cannot grow any state.
    pub fn cancel(&self, id: u64) {
        // Order matters: a job moves queue → running, never backwards,
        // so checking the queue first narrows the race window to the
        // instant between pickup and token registration (where a cancel
        // is a benign no-op).
        {
            let q = self.shared.queue.lock();
            if q.iter().any(|j| j.id == id) {
                self.shared.cancelled.lock().insert(id);
                return;
            }
        }
        if let Some(token) = self.shared.running.lock().get(&id) {
            token.cancel();
        }
    }

    /// Jobs currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// The admission bound this scheduler was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The circuit-breaker set, shared with the batch path so query and
    /// batch traffic see the same (graph, algorithm) health.
    pub fn breakers(&self) -> &Arc<BreakerSet> {
        &self.shared.breakers
    }

    /// The brownout (degraded-mode) detector.
    pub fn brownout(&self) -> &Arc<Brownout> {
        &self.shared.brownout
    }

    /// Observed p95 admission-to-pickup queue wait in milliseconds, or
    /// `None` until [`MIN_WAIT_SAMPLES`] observations exist.
    pub fn queue_wait_p95_ms(&self) -> Option<f64> {
        let snap = self.shared.m.queue_wait_ms.snapshot();
        (snap.count >= MIN_WAIT_SAMPLES).then(|| snap.quantile(0.95))
    }

    /// The observability root this scheduler reports into.
    pub fn obs(&self) -> &Arc<RuntimeObs> {
        &self.shared.obs
    }

    /// Stop accepting jobs, drain the queue, and join the workers.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn outcome_skeleton(job: &Job, status: JobStatus, clock: &Clock) -> JobOutcome {
    JobOutcome {
        id: job.id,
        graph: job.spec.graph.clone(),
        algo: job.spec.query.algo().to_string(),
        status,
        error: None,
        cache: None,
        config: None,
        wall_ms: clock.elapsed_ms(job.admitted_ns),
        sim_ms: 0.0,
        converged: false,
        metrics: Vec::new(),
        iterations: Vec::new(),
        payload: None,
    }
}

/// Deterministic retry jitter: a delay in `[base, 2·base)` derived from
/// `seed` through the splitmix64 finalizer. Synchronized clients retry
/// spread out instead of in lockstep, yet any (job id, attempt) pair
/// replays to the identical delay — no shared RNG, no global state.
pub fn retry_jitter(base: Duration, seed: u64) -> Duration {
    let z = crate::faults::splitmix64(seed);
    // 53 high-quality bits → a uniform float in [0, 1).
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    base + base.mul_f64(unit)
}

/// Pop the highest-priority queued job, FIFO within a class. An O(n)
/// scan under the queue lock; the queue is bounded by `queue_capacity`,
/// so the scan is capped and trivial next to an engine run.
fn pop_highest_priority(q: &mut VecDeque<Job>) -> Option<Job> {
    let mut best: Option<(usize, Priority)> = None;
    for (i, j) in q.iter().enumerate() {
        match best {
            Some((_, p)) if j.priority <= p => {}
            _ => best = Some((i, j.priority)),
        }
        if j.priority == Priority::Interactive {
            break; // nothing outranks the earliest interactive job
        }
    }
    best.and_then(|(i, _)| q.remove(i))
}

/// Render a `catch_unwind` payload for the outcome's `error` field.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn worker_loop(shared: &Shared, worker: u32) {
    let collector = shared.obs.span_collector();
    let clock = shared.obs.clock();
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(job) = pop_highest_priority(&mut q) {
                    shared.m.queue_depth.set(q.len() as i64);
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = recover(shared.work_ready.wait(q));
            }
        };
        let spans = collector.local(worker, job.id);
        // The Request span is closed on every path out of this job,
        // covering admission → terminal state (queue wait included).
        let finish_request = |job: &Job| {
            let now = clock.now_ns();
            spans.record(SpanRecord {
                id: job.span_id,
                parent: 0,
                kind: SpanKind::Request,
                job: job.id,
                worker,
                shard: None,
                iter: 0,
                start_ns: job.admitted_ns,
                dur_ns: now.saturating_sub(job.admitted_ns),
            });
        };
        let picked_ns = clock.now_ns();
        spans.record_interval(
            SpanKind::QueueWait,
            job.span_id,
            job.admitted_ns,
            picked_ns,
            None,
            0,
        );
        shared.m.queue_wait_ms.observe(picked_ns.saturating_sub(job.admitted_ns) as f64 / 1e6);

        // Cancelled while queued? Previously this outcome vanished from
        // every aggregate — the counter is the only server-side record.
        // The `remove` also prunes the id, keeping the set bounded.
        if shared.cancelled.lock().remove(&job.id) {
            shared.m.cancelled.inc();
            shared.breakers.record_neutral(job.key, job.probe);
            let out = outcome_skeleton(&job, JobStatus::Cancelled, &clock);
            shared.m.total_ms.observe(out.wall_ms);
            finish_request(&job);
            let _ = job.tx.send(out);
            continue;
        }
        // Deadline passed while queued? Same silent-loss fix as above.
        if picked_ns.saturating_sub(job.admitted_ns) > job.deadline_ns() {
            shared.m.timeout_queued.inc();
            shared.breakers.record_neutral(job.key, job.probe);
            let out = outcome_skeleton(&job, JobStatus::DeadlineExceeded, &clock);
            shared.m.total_ms.observe(out.wall_ms);
            finish_request(&job);
            let _ = job.tx.send(out);
            continue;
        }

        let entry = match shared.registry.get(&job.spec.graph) {
            Some(e) => e,
            None => {
                // Registered at admission but replaced/removed since.
                // Neutral for the breaker: this says nothing about the
                // engine's health on the fingerprint the key names.
                shared.m.error.inc();
                shared.breakers.record_neutral(job.key, job.probe);
                let mut out = outcome_skeleton(&job, JobStatus::Error, &clock);
                out.error = Some(format!("graph `{}` disappeared", job.spec.graph));
                finish_request(&job);
                let _ = job.tx.send(out);
                continue;
            }
        };

        // Brownout sheds optional work: no decision tracing, and the
        // divergence sentinel (a full serial re-derivation every N
        // super-steps) is suspended until pressure eases.
        let degraded = shared.brownout.active();
        let recorder = if degraded {
            RecorderHandle::none()
        } else {
            shared.obs.recorder_for(job.id, &job.spec.graph, job.spec.query.algo())
        };
        let verify_every = if degraded { 0 } else { shared.verify_every };
        // The job's cancel token doubles as its deadline probe: the
        // engine polls it each super-step, and `Scheduler::cancel` can
        // reach it through the `running` map while the job executes.
        // A manual (test) clock has no `Instant` anchor; such jobs run
        // without a mid-run deadline and are still caught at completion.
        let token = Arc::new(
            match clock.instant_at_ns(job.admitted_ns.saturating_add(job.deadline_ns())) {
                Some(at) => CancelToken::with_deadline(at),
                None => CancelToken::new(),
            },
        );
        shared.running.lock().insert(job.id, Arc::clone(&token));
        let exec_guard = spans.start(SpanKind::Execute, job.span_id);
        let exec_spans = SpanCtx::new(collector.clone(), exec_guard.id(), worker, job.id);
        let exec_start = clock.now_ns();
        // Panic isolation: a panicking job must not take the worker —
        // or any lock-holding bystander — down with it. The shared
        // state is poison-recovering, so unwinding through it is safe.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(
                &entry,
                &job.spec.query,
                &shared.cache,
                &AutoPolicy,
                &shared.device,
                recorder,
                ProbeHandle::new(Arc::new(JobProbe { token: Arc::clone(&token) })),
                verify_every,
                exec_spans,
            )
        }));
        drop(exec_guard);
        shared.running.lock().remove(&job.id);
        shared.m.execute_ms.observe(clock.elapsed_ms(exec_start));

        let mut midrun_deadline = false;
        let mut out = match result {
            Ok(Ok(exec)) => match exec.stopped {
                Some(StopReason::Cancelled) => outcome_skeleton(&job, JobStatus::Cancelled, &clock),
                Some(StopReason::DeadlineExceeded) => {
                    midrun_deadline = true;
                    outcome_skeleton(&job, JobStatus::DeadlineExceeded, &clock)
                }
                None => {
                    let mut out = outcome_skeleton(&job, JobStatus::Ok, &clock);
                    out.cache = Some(if exec.cache_hit { "hit" } else { "miss" }.to_string());
                    out.config = exec.config;
                    out.sim_ms = exec.sim_ms;
                    out.converged = exec.converged;
                    out.metrics = exec.metrics;
                    out.iterations = exec.iterations;
                    out.payload = Some(exec.payload);
                    out
                }
            },
            Ok(Err(msg)) => {
                let mut out = outcome_skeleton(&job, JobStatus::Error, &clock);
                out.error = Some(msg);
                out
            }
            Err(payload) => {
                let mut out = outcome_skeleton(&job, JobStatus::Failed, &clock);
                out.error = Some(format!("worker panic: {}", panic_message(payload)));
                out
            }
        };
        // Deadline also enforced at completion: late results are
        // withheld even when the run finished.
        if out.status == JobStatus::Ok
            && clock.now_ns().saturating_sub(job.admitted_ns) > job.deadline_ns()
        {
            out.status = JobStatus::DeadlineExceeded;
            out.metrics.clear();
            out.iterations.clear();
            out.payload = None;
        }
        match out.status {
            JobStatus::Ok => shared.m.ok.inc(),
            JobStatus::Error => shared.m.error.inc(),
            JobStatus::Failed => shared.m.failed.inc(),
            JobStatus::Cancelled => shared.m.cancelled.inc(),
            JobStatus::DeadlineExceeded => {
                if midrun_deadline {
                    shared.m.timeout_midrun.inc()
                } else {
                    shared.m.timeout_late.inc()
                }
            }
            // Terminal at admission time, never inside a worker.
            JobStatus::Shed | JobStatus::BreakerOpen => {}
        }
        // Breaker vote. `Ok` and `Error` are successes: an engine-level
        // error (bad source vertex, unsupported query) means the
        // infrastructure answered correctly. Only `Failed` (a panic)
        // votes to open; cancel/deadline outcomes say nothing either
        // way and just release any probe slot.
        match out.status {
            JobStatus::Ok | JobStatus::Error => shared.breakers.record_success(job.key, job.probe),
            JobStatus::Failed => shared.breakers.record_failure(job.key, job.probe),
            _ => shared.breakers.record_neutral(job.key, job.probe),
        }
        out.wall_ms = clock.elapsed_ms(job.admitted_ns);
        shared.m.total_ms.observe(out.wall_ms);
        finish_request(&job);
        let _ = job.tx.send(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use gswitch_graph::gen;

    fn make_scheduler(workers: usize) -> (Scheduler, Arc<GraphRegistry>, Arc<ConfigCache>) {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let config = SchedulerConfig { workers, ..Default::default() };
        let s = Scheduler::new(Arc::clone(&registry), Arc::clone(&cache), config);
        (s, registry, cache)
    }

    fn bfs_spec(src: u32) -> JobSpec {
        JobSpec {
            graph: "kron".into(),
            query: Query::Bfs { src },
            timeout_ms: None,
            priority: None,
        }
    }

    #[test]
    fn unknown_graph_is_rejected_at_admission() {
        let (s, _r, _c) = make_scheduler(1);
        let err = s
            .submit(JobSpec {
                graph: "nope".into(),
                query: Query::Cc,
                timeout_ms: None,
                priority: None,
            })
            .err()
            .unwrap();
        assert_eq!(err, SubmitError::UnknownGraph("nope".into()));
        s.shutdown();
    }

    #[test]
    fn queue_overflow_fails_fast() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        // Zero workers are clamped to one, so stuff the queue faster than
        // a single worker drains it by using a tiny capacity.
        let config = SchedulerConfig { workers: 1, queue_capacity: 2, ..Default::default() };
        let s = Scheduler::new(registry, cache, config);
        let mut handles = Vec::new();
        let mut saw_full = false;
        for src in 0..64 {
            match s.submit(bfs_spec(src)) {
                Ok(h) => handles.push(h),
                Err(SubmitError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(saw_full, "a capacity-2 queue never filled under burst submission");
        for h in handles {
            assert_eq!(h.wait().status, JobStatus::Ok);
        }
        s.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let (s, _r, _c) = make_scheduler(1);
        s.shared.shutdown.store(true, Ordering::SeqCst);
        s.shared.work_ready.notify_all();
        match s.submit(bfs_spec(0)) {
            Err(SubmitError::ShuttingDown) => {}
            Err(e) => panic!("wrong admission error: {e}"),
            Ok(_) => panic!("job accepted after shutdown"),
        }
    }

    #[test]
    fn zero_deadline_times_out_without_running() {
        let (s, _r, _c) = make_scheduler(1);
        let spec =
            JobSpec { graph: "kron".into(), query: Query::Cc, timeout_ms: Some(0), priority: None };
        let out = s.submit(spec).unwrap().wait();
        assert_eq!(out.status, JobStatus::DeadlineExceeded);
        assert!(out.iterations.is_empty(), "timed-out job must not leak results");
        assert!(out.payload.is_none());
        s.shutdown();
    }

    #[test]
    fn cancel_while_queued_prevents_execution() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let config = SchedulerConfig { workers: 1, ..Default::default() };
        let s = Scheduler::new(registry, cache, config);
        // One long-ish job occupies the single worker while we cancel
        // the jobs stacked behind it.
        let busy = s.submit(JobSpec {
            graph: "kron".into(),
            query: Query::Pr { eps: 1e-6 },
            timeout_ms: None,
            priority: None,
        });
        let mut cancelled = 0;
        let mut handles = Vec::new();
        for src in 0..8 {
            let h = s.submit(bfs_spec(src)).unwrap();
            s.cancel(h.id);
            handles.push(h);
        }
        for h in handles {
            let out = h.wait();
            if out.status == JobStatus::Cancelled {
                cancelled += 1;
                assert!(out.iterations.is_empty());
            }
        }
        assert!(cancelled > 0, "no queued job observed its cancellation");
        assert_eq!(busy.unwrap().wait().status, JobStatus::Ok);
        s.shutdown();
    }

    #[test]
    fn lost_outcomes_surface_as_counters() {
        // Deadline-exceeded-while-queued and cancelled-while-queued jobs
        // used to leave no server-side record at all; both must show up
        // in the unified registry now.
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let obs = Arc::new(RuntimeObs::new());
        let config = SchedulerConfig { workers: 1, ..Default::default() };
        let s = Scheduler::with_obs(registry, cache, config, Arc::clone(&obs));

        // A busy job pins the single worker so queued jobs age.
        let busy = s.submit(JobSpec {
            graph: "kron".into(),
            query: Query::Pr { eps: 1e-6 },
            timeout_ms: None,
            priority: None,
        });
        let dead = s
            .submit(JobSpec {
                graph: "kron".into(),
                query: Query::Cc,
                timeout_ms: Some(0),
                priority: None,
            })
            .unwrap();
        let doomed = s.submit(bfs_spec(0)).unwrap();
        s.cancel(doomed.id);
        let _ = s.submit(JobSpec {
            graph: "nope".into(),
            query: Query::Cc,
            timeout_ms: None,
            priority: None,
        });

        assert_eq!(dead.wait().status, JobStatus::DeadlineExceeded);
        let doomed_status = doomed.wait().status;
        assert_eq!(busy.unwrap().wait().status, JobStatus::Ok);

        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter(metric::JOBS_TIMEOUT_QUEUED), 1);
        if doomed_status == JobStatus::Cancelled {
            assert_eq!(snap.counter(metric::JOBS_CANCELLED), 1);
        }
        assert_eq!(snap.counter(metric::JOBS_REJECTED), 1);
        assert!(snap.counter(metric::JOBS_SUBMITTED) >= 3);
        assert!(snap.counter(metric::JOBS_OK) >= 1);
        // Stage histograms saw every terminal job.
        let waits = snap.histograms.get(metric::QUEUE_WAIT_MS).expect("wait histogram");
        assert!(waits.count >= 3);
        let totals = snap.histograms.get(metric::JOB_TOTAL_MS).expect("total histogram");
        assert!(totals.count >= 3);
        // Cache counters live in the same registry (shared state).
        assert!(snap.counter(metric::CACHE_MISSES) >= 1);
        s.shutdown();
    }

    #[test]
    fn tracing_produces_events_for_scheduled_jobs() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let obs = Arc::new(RuntimeObs::new());
        obs.set_tracing(true);
        let s = Scheduler::with_obs(
            registry,
            cache,
            SchedulerConfig { workers: 2, ..Default::default() },
            Arc::clone(&obs),
        );
        let out = s.submit(bfs_spec(0)).unwrap().wait();
        assert_eq!(out.status, JobStatus::Ok);
        let events = obs.trace.snapshot();
        assert!(!events.is_empty(), "traced job produced no events");
        assert!(events.iter().all(|e| e.algo == "bfs" && e.graph == "kron"));
        assert_eq!(events.len(), out.iterations.len());
        s.shutdown();
    }

    /// Every scheduled job leaves a causal span tree: a root `Request`
    /// span with `QueueWait` and `Execute` children, and the engine's
    /// super-steps nested under `Execute`.
    #[test]
    fn jobs_emit_request_queue_execute_spans() {
        use gswitch_obs::SpanKind;
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let obs = Arc::new(RuntimeObs::new());
        let s = Scheduler::with_obs(
            registry,
            cache,
            SchedulerConfig { workers: 2, ..Default::default() },
            Arc::clone(&obs),
        );
        let out = s.submit(bfs_spec(0)).unwrap().wait();
        assert_eq!(out.status, JobStatus::Ok);
        // Worker-local span buffers flush when the workers wind down.
        s.shutdown();

        let spans = obs.spans.snapshot();
        let requests: Vec<_> = spans.iter().filter(|r| r.kind == SpanKind::Request).collect();
        assert_eq!(requests.len(), 1, "one job, one request span");
        let req = requests[0];
        assert_eq!(req.parent, 0, "request spans are roots");
        let qw = spans.iter().find(|r| r.kind == SpanKind::QueueWait).expect("queue-wait span");
        assert_eq!(qw.parent, req.id);
        let ex = spans.iter().find(|r| r.kind == SpanKind::Execute).expect("execute span");
        assert_eq!(ex.parent, req.id);
        assert!(ex.dur_ns <= req.dur_ns, "execute cannot outlast its request");
        // The engine's super-steps nest under this job's execute span.
        let steps: Vec<_> = spans.iter().filter(|r| r.kind == SpanKind::SuperStep).collect();
        assert!(!steps.is_empty(), "engine emitted no super-step spans");
        assert!(steps.iter().all(|st| st.parent == ex.id && st.job == req.job));
        // Self-time accounting holds over the whole tree.
        let p = gswitch_obs::profile(&spans);
        assert!(p.excl_total_ms() <= p.total_ms + 1e-9);
    }

    /// The satellite concurrency test: a mixed batch through a real
    /// worker pool, every answer checked against the sequential
    /// reference implementations.
    #[test]
    fn concurrent_mixed_queries_match_references() {
        use crate::query::Payload;
        use gswitch_algos::reference;

        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        registry.insert("grid", gen::grid2d(16, 16, 0.0, 5));
        let cache = Arc::new(ConfigCache::new());
        let s = Scheduler::new(
            Arc::clone(&registry),
            cache,
            SchedulerConfig { workers: 4, ..Default::default() },
        );

        let mut handles = Vec::new();
        for graph in ["kron", "grid"] {
            for src in [0u32, 7, 99] {
                for query in [Query::Bfs { src }, Query::Sssp { src }, Query::Cc] {
                    let spec =
                        JobSpec { graph: graph.into(), query, timeout_ms: None, priority: None };
                    handles.push((graph, spec.clone(), s.submit(spec).unwrap()));
                }
            }
        }

        for (graph, spec, h) in handles {
            let out = h.wait();
            assert_eq!(out.status, JobStatus::Ok, "{graph}/{}: {:?}", out.algo, out.error);
            let entry = registry.get(graph).unwrap();
            match (spec.query, out.payload.expect("payload")) {
                (Query::Bfs { src }, Payload::Levels { values }) => {
                    assert_eq!(values, reference::bfs(entry.graph(), src), "{graph} bfs {src}");
                }
                (Query::Sssp { src }, Payload::Distances { values }) => {
                    assert_eq!(
                        values,
                        reference::sssp(&entry.weighted(), src),
                        "{graph} sssp {src}"
                    );
                }
                (Query::Cc, Payload::Labels { values }) => {
                    assert_eq!(values, reference::cc(entry.graph()), "{graph} cc");
                }
                (q, p) => panic!("mismatched payload for {q:?}: {p:?}"),
            }
        }
        s.shutdown();
    }

    /// Regression: `wait()` used to panic with "worker dropped without
    /// reporting" when the sender side vanished. It must synthesize a
    /// structured `Failed` outcome instead.
    #[test]
    fn wait_on_dropped_worker_reports_failed_not_panic() {
        let (tx, rx) = mpsc::channel::<JobOutcome>();
        let clock = Clock::monotonic();
        let admitted_ns = clock.now_ns();
        let handle =
            JobHandle { id: 42, rx, graph: "kron".into(), algo: "bfs".into(), clock, admitted_ns };
        drop(tx); // the "worker died" case
        let out = handle.wait();
        assert_eq!(out.status, JobStatus::Failed);
        assert_eq!(out.id, 42);
        assert_eq!(out.graph, "kron");
        assert!(out.error.as_deref().unwrap_or("").contains("worker dropped"));
    }

    /// Regression: cancelling ids of completed (or never-admitted) jobs
    /// used to accumulate forever in the `cancelled` set. Now only ids
    /// actually found in the queue are remembered, so the set stays
    /// bounded and arbitrary cancels leave no residue.
    #[test]
    fn cancel_of_completed_ids_leaves_no_residue() {
        let (s, _r, _c) = make_scheduler(2);
        let h = s.submit(bfs_spec(0)).unwrap();
        let finished = h.id;
        assert_eq!(h.wait().status, JobStatus::Ok);

        // Cancel the finished job plus a pile of ids that never existed.
        s.cancel(finished);
        for bogus in 1_000..1_100 {
            s.cancel(bogus);
        }
        assert_eq!(
            s.shared.cancelled.lock().len(),
            0,
            "cancelled set must not retain ids that were not queued"
        );

        // The scheduler still works afterwards.
        assert_eq!(s.submit(bfs_spec(1)).unwrap().wait().status, JobStatus::Ok);
        s.shutdown();
    }

    /// A scheduler with the divergence sentinel on still produces
    /// reference-exact answers on healthy runs (the sentinel only
    /// intervenes on divergence, which a correct engine never shows).
    #[test]
    fn sentinel_enabled_scheduler_matches_references() {
        use crate::query::Payload;
        use gswitch_algos::reference;

        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let config = SchedulerConfig { workers: 2, verify_every: 2, ..Default::default() };
        let s = Scheduler::new(Arc::clone(&registry), cache, config);
        let out = s.submit(bfs_spec(0)).unwrap().wait();
        assert_eq!(out.status, JobStatus::Ok);
        let entry = registry.get("kron").unwrap();
        match out.payload.expect("payload") {
            Payload::Levels { values } => {
                assert_eq!(values, reference::bfs(entry.graph(), 0));
            }
            p => panic!("wrong payload: {p:?}"),
        }
        s.shutdown();
    }

    /// `submit_with_retry` with zero budget behaves exactly like
    /// `submit().wait()` for healthy jobs, and never sleeps.
    #[test]
    fn submit_with_retry_passes_healthy_jobs_through() {
        let (s, _r, _c) = make_scheduler(2);
        let out = s.submit_with_retry(bfs_spec(0), 2, Duration::from_millis(1)).unwrap();
        assert_eq!(out.status, JobStatus::Ok);
        let snap = s.obs().metrics.snapshot();
        assert_eq!(snap.counter(metric::JOBS_RETRIED), 0);
        s.shutdown();
    }

    /// Retry backoff jitter is deterministic per seed, bounded in
    /// `[base, 2·base)`, and actually varies across seeds.
    #[test]
    fn retry_jitter_is_bounded_and_deterministic() {
        let base = Duration::from_millis(8);
        for seed in 0..512u64 {
            let d = retry_jitter(base, seed);
            assert!(d >= base, "seed {seed}: {d:?} below base");
            assert!(d < base * 2, "seed {seed}: {d:?} at or above 2x base");
            assert_eq!(d, retry_jitter(base, seed), "seed {seed} not deterministic");
        }
        let d0 = retry_jitter(base, 0);
        assert!(
            (1..512u64).any(|s| retry_jitter(base, s) != d0),
            "jitter is constant across 512 seeds"
        );
    }

    /// Workers drain the queue by priority class (interactive > batch >
    /// best-effort) and FIFO within a class.
    #[test]
    fn pop_highest_priority_orders_by_class_then_fifo() {
        let clock = Clock::manual();
        let mk = |id: u64, priority: Priority| {
            let (tx, _rx) = mpsc::channel();
            // The receiver is gone; these jobs are only popped, never run.
            std::mem::forget(_rx);
            Job {
                id,
                spec: bfs_spec(0),
                admitted_ns: clock.now_ns(),
                span_id: id,
                deadline: Duration::from_secs(60),
                priority,
                key: BreakerKey { fingerprint: 0, algo: "bfs" },
                probe: false,
                tx,
            }
        };
        let mut q = VecDeque::new();
        q.push_back(mk(1, Priority::BestEffort));
        q.push_back(mk(2, Priority::Batch));
        q.push_back(mk(3, Priority::Interactive));
        q.push_back(mk(4, Priority::Batch));
        q.push_back(mk(5, Priority::Interactive));
        let order: Vec<u64> =
            std::iter::from_fn(|| pop_highest_priority(&mut q).map(|j| j.id)).collect();
        assert_eq!(order, vec![3, 5, 2, 4, 1]);
    }

    /// A full queue sheds the lowest-priority queued job to admit a
    /// higher-priority submission; the victim's handle resolves to the
    /// typed `Shed` status and the shed counter records it.
    #[test]
    fn higher_priority_submission_sheds_queued_best_effort() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        // A heavier graph keeps the single worker busy long enough for
        // the queue to stay full while we submit.
        registry.insert("big", gen::kronecker(12, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let config = SchedulerConfig { workers: 1, queue_capacity: 2, ..Default::default() };
        let s = Scheduler::new(registry, cache, config);

        let busy = s
            .submit(JobSpec {
                graph: "big".into(),
                query: Query::Pr { eps: 1e-10 },
                timeout_ms: None,
                priority: Some(Priority::Batch),
            })
            .unwrap();
        // Wait for the worker to pick the busy job up, then fill the
        // queue with best-effort work.
        while s.queued() > 0 {
            std::thread::yield_now();
        }
        let mut spec = bfs_spec(0);
        spec.priority = Some(Priority::BestEffort);
        let low_a = s.submit(spec.clone()).unwrap();
        let low_b = s.submit(spec).unwrap();
        assert_eq!(s.queued(), 2, "queue should be at capacity");

        let mut hi = bfs_spec(1);
        hi.priority = Some(Priority::Interactive);
        let hi = s.submit(hi).unwrap();

        let (a, b) = (low_a.wait(), low_b.wait());
        let shed: Vec<_> =
            [&a, &b].iter().filter(|o| o.status == JobStatus::Shed).cloned().collect();
        assert_eq!(shed.len(), 1, "exactly one best-effort job shed: {a:?} / {b:?}");
        assert!(shed[0].error.as_deref().unwrap_or("").contains("shed at admission"));
        assert_eq!(hi.wait().status, JobStatus::Ok);
        assert_eq!(busy.wait().status, JobStatus::Ok);
        let snap = s.obs().metrics.snapshot();
        assert_eq!(snap.counter(metric::JOBS_SHED), 1);
        // Conservation: both terminal paths (run and shed) reported.
        assert_eq!(snap.counter(metric::JOBS_SUBMITTED), 4);
        s.shutdown();
    }

    /// An open breaker answers submissions immediately with the typed
    /// `BreakerOpen` status — no queue slot burned — while other
    /// (graph, algorithm) keys are unaffected.
    #[test]
    fn open_breaker_fails_fast_without_touching_the_queue() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let config = SchedulerConfig {
            workers: 1,
            breaker: BreakerConfig { failure_threshold: 3, cooldown_ms: 600_000 },
            ..Default::default()
        };
        let s = Scheduler::new(Arc::clone(&registry), cache, config);
        let key =
            BreakerKey { fingerprint: registry.get("kron").unwrap().fingerprint().0, algo: "bfs" };
        for _ in 0..3 {
            s.breakers().record_failure(key, false);
        }

        let out = s.submit(bfs_spec(0)).unwrap().wait();
        assert_eq!(out.status, JobStatus::BreakerOpen);
        assert!(out.error.as_deref().unwrap_or("").contains("circuit breaker open"));
        // A different algorithm on the same graph is its own key.
        let ok = s
            .submit(JobSpec {
                graph: "kron".into(),
                query: Query::Cc,
                timeout_ms: None,
                priority: None,
            })
            .unwrap()
            .wait();
        assert_eq!(ok.status, JobStatus::Ok);
        let snap = s.obs().metrics.snapshot();
        assert_eq!(snap.counter(metric::JOBS_BREAKER_OPEN), 1);
        assert_eq!(snap.counter(metric::JOBS_SUBMITTED), 2);
        s.shutdown();
    }

    /// Above the watermark, a deadline the observed p95 queue wait
    /// already exceeds is refused at admission instead of being queued
    /// to die.
    #[test]
    fn unmeetable_deadline_is_rejected_above_watermark() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        registry.insert("big", gen::kronecker(12, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let config = SchedulerConfig { workers: 1, queue_capacity: 4, ..Default::default() };
        let s = Scheduler::new(registry, cache, config);

        // Pin the worker, then hold three of four slots: occupancy 0.75
        // sits exactly at the default watermark.
        let busy = s
            .submit(JobSpec {
                graph: "big".into(),
                query: Query::Pr { eps: 1e-10 },
                timeout_ms: None,
                priority: None,
            })
            .unwrap();
        while s.queued() > 0 {
            std::thread::yield_now();
        }
        let mut held = Vec::new();
        for src in 0..3 {
            held.push(s.submit(bfs_spec(src)).unwrap());
        }
        // Seed the wait histogram past MIN_WAIT_SAMPLES with waits that
        // dwarf the incoming deadline.
        for _ in 0..MIN_WAIT_SAMPLES {
            s.shared.m.queue_wait_ms.observe(10_000.0);
        }
        let mut doomed = bfs_spec(9);
        doomed.timeout_ms = Some(1);
        match s.submit(doomed) {
            Err(SubmitError::DeadlineUnmeetable { p95_wait_ms, deadline_ms }) => {
                assert_eq!(deadline_ms, 1);
                assert!(p95_wait_ms >= 1_000, "p95 {p95_wait_ms} should reflect seeded waits");
            }
            other => panic!("expected DeadlineUnmeetable, got {other:?}"),
        }
        let snap = s.obs().metrics.snapshot();
        assert_eq!(snap.counter(metric::JOBS_UNMEETABLE), 1);
        for h in held {
            let _ = h.wait();
        }
        assert_eq!(busy.wait().status, JobStatus::Ok);
        s.shutdown();
    }
}
