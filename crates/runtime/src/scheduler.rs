//! The job scheduler: a bounded queue feeding a worker pool.
//!
//! Admission control is explicit — [`Scheduler::submit`] fails fast
//! with [`SubmitError::QueueFull`] instead of buffering unboundedly,
//! and with [`SubmitError::UnknownGraph`] before a bad job ever
//! occupies a queue slot. Each job carries a deadline measured from
//! admission (so queue wait counts); jobs whose deadline passes before
//! a worker picks them up are dropped unrun, running jobs are stopped
//! cooperatively at the next engine super-step, and jobs that finish
//! past it report [`JobStatus::DeadlineExceeded`] with the result
//! withheld.
//! Cancellation is cooperative at super-step granularity: a job
//! cancelled before execution starts never runs; one already executing
//! is stopped at its next engine super-step via the job's
//! [`CancelToken`] and reports [`JobStatus::Cancelled`].
//!
//! Workers are panic-isolated: each job body runs under
//! `catch_unwind`, so a panicking job becomes a structured
//! [`JobStatus::Failed`] outcome (panic payload in `error`) while the
//! worker thread — and every other queued or running job — carries on.
//! Shared state uses poison-recovering locks (`gswitch_obs::sync`), so
//! even a panic at an unlucky point cannot wedge the scheduler.

use crate::cache::ConfigCache;
use crate::executor::execute;
use crate::obs::{metric, RuntimeObs};
use crate::query::{JobOutcome, JobSpec, JobStatus};
use crate::registry::GraphRegistry;
use gswitch_core::{AutoPolicy, CancelToken, ProbeHandle, RunProbe, StopReason};
use gswitch_obs::sync::{recover, Lock};
use gswitch_obs::{
    Clock, Counter, Gauge, Histogram, MetricsRegistry, SpanCtx, SpanKind, SpanRecord,
};
use gswitch_simt::DeviceSpec;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar};
use std::time::Duration;

/// Scheduler tuning knobs.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Worker threads.
    pub workers: usize,
    /// Admission bound: jobs queued (not yet picked up) beyond which
    /// submissions are rejected.
    pub queue_capacity: usize,
    /// Deadline for jobs that do not set one, in milliseconds.
    pub default_timeout_ms: u64,
    /// The simulated device every job runs on.
    pub device: DeviceSpec,
    /// Divergence-sentinel cadence forwarded to every engine run:
    /// cross-check the tuned variant against the serial reference
    /// derivation every N standalone super-steps (0 = off, the
    /// default). See [`gswitch_core::EngineOptions::verify_every`].
    pub verify_every: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8),
            queue_capacity: 256,
            default_timeout_ms: 60_000,
            device: DeviceSpec::default(),
            verify_every: 0,
        }
    }
}

/// Why a submission was refused at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry later.
    QueueFull,
    /// The named graph is not registered.
    UnknownGraph(String),
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::UnknownGraph(g) => write!(f, "unknown graph `{g}`"),
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

#[derive(Debug)]
struct Job {
    id: u64,
    spec: JobSpec,
    /// Admission timestamp on the obs clock.
    admitted_ns: u64,
    /// Pre-allocated id of this job's `Request` span, so queue-wait and
    /// execute spans can parent under it from any worker.
    span_id: u64,
    deadline: Duration,
    tx: mpsc::Sender<JobOutcome>,
}

impl Job {
    fn deadline_ns(&self) -> u64 {
        u64::try_from(self.deadline.as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Pre-resolved metric handles, so the hot paths never touch the
/// registry's name map.
#[derive(Debug)]
struct SchedulerMetrics {
    queue_depth: Gauge,
    submitted: Counter,
    rejected: Counter,
    ok: Counter,
    error: Counter,
    failed: Counter,
    cancelled: Counter,
    timeout_queued: Counter,
    timeout_midrun: Counter,
    timeout_late: Counter,
    retried: Counter,
    queue_wait_ms: Histogram,
    execute_ms: Histogram,
    total_ms: Histogram,
}

impl SchedulerMetrics {
    fn bind(r: &MetricsRegistry) -> Self {
        SchedulerMetrics {
            queue_depth: r.gauge(metric::QUEUE_DEPTH),
            submitted: r.counter(metric::JOBS_SUBMITTED),
            rejected: r.counter(metric::JOBS_REJECTED),
            ok: r.counter(metric::JOBS_OK),
            error: r.counter(metric::JOBS_ERROR),
            failed: r.counter(metric::JOBS_FAILED),
            cancelled: r.counter(metric::JOBS_CANCELLED),
            timeout_queued: r.counter(metric::JOBS_TIMEOUT_QUEUED),
            timeout_midrun: r.counter(metric::JOBS_TIMEOUT_MIDRUN),
            timeout_late: r.counter(metric::JOBS_TIMEOUT_LATE),
            retried: r.counter(metric::JOBS_RETRIED),
            queue_wait_ms: r.latency(metric::QUEUE_WAIT_MS),
            execute_ms: r.latency(metric::EXECUTE_MS),
            total_ms: r.latency(metric::JOB_TOTAL_MS),
        }
    }
}

#[derive(Debug)]
struct Shared {
    registry: Arc<GraphRegistry>,
    cache: Arc<ConfigCache>,
    obs: Arc<RuntimeObs>,
    m: SchedulerMetrics,
    device: DeviceSpec,
    verify_every: u32,
    queue: Lock<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    /// Ids cancelled while still queued; pruned at pickup, and only
    /// ever populated with ids actually present in the queue, so the
    /// set stays bounded by the queue capacity.
    cancelled: Lock<HashSet<u64>>,
    /// Cancel tokens of currently executing jobs, so [`Scheduler::cancel`]
    /// can reach a job mid-run.
    running: Lock<HashMap<u64, Arc<CancelToken>>>,
}

/// The engine-facing stop probe for one job: the job's cancel token
/// (which also carries the deadline), with a fault-injection site per
/// super-step so the test harness can stretch or kill iterations.
struct JobProbe {
    token: Arc<CancelToken>,
}

impl RunProbe for JobProbe {
    fn check(&self, iteration: u32) -> Option<StopReason> {
        crate::faults::fire(crate::faults::site::ENGINE_ITERATION);
        self.token.check(iteration)
    }
}

/// Handle to one admitted job; wait on it for the outcome.
#[derive(Debug)]
pub struct JobHandle {
    /// Id assigned at admission (use for [`Scheduler::cancel`]).
    pub id: u64,
    rx: mpsc::Receiver<JobOutcome>,
    graph: String,
    algo: String,
    clock: Clock,
    admitted_ns: u64,
}

impl JobHandle {
    /// Block until the job reaches a terminal state.
    ///
    /// Never panics: if the worker died without reporting (its thread
    /// was killed, or the scheduler was torn down mid-job), the outcome
    /// is a synthesized [`JobStatus::Failed`] instead.
    pub fn wait(self) -> JobOutcome {
        match self.rx.recv() {
            Ok(out) => out,
            Err(_) => JobOutcome {
                id: self.id,
                graph: self.graph,
                algo: self.algo,
                status: JobStatus::Failed,
                error: Some(
                    "worker dropped without reporting (worker thread died or the scheduler \
                     was torn down mid-job)"
                        .to_string(),
                ),
                cache: None,
                config: None,
                wall_ms: self.clock.elapsed_ms(self.admitted_ns),
                sim_ms: 0.0,
                converged: false,
                metrics: Vec::new(),
                iterations: Vec::new(),
                payload: None,
            },
        }
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<JobOutcome> {
        self.rx.try_recv().ok()
    }
}

/// The worker pool.
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    capacity: usize,
    default_timeout_ms: u64,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Start `config.workers` workers over `registry` and `cache`, with
    /// a private [`RuntimeObs`] (metrics still work; nobody reads them).
    pub fn new(
        registry: Arc<GraphRegistry>,
        cache: Arc<ConfigCache>,
        config: SchedulerConfig,
    ) -> Self {
        Self::with_obs(registry, cache, config, Arc::new(RuntimeObs::new()))
    }

    /// Start workers reporting into a caller-owned observability root:
    /// scheduler gauges/counters/latency histograms land in
    /// `obs.metrics`, the cache counters are bound into the same
    /// registry, and decision traces (when `obs` has tracing on) land
    /// in `obs.trace`.
    pub fn with_obs(
        registry: Arc<GraphRegistry>,
        cache: Arc<ConfigCache>,
        config: SchedulerConfig,
        obs: Arc<RuntimeObs>,
    ) -> Self {
        cache.bind_metrics(&obs.metrics);
        let shared = Arc::new(Shared {
            registry,
            cache,
            m: SchedulerMetrics::bind(&obs.metrics),
            obs,
            device: config.device.clone(),
            verify_every: config.verify_every,
            queue: Lock::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cancelled: Lock::new(HashSet::new()),
            running: Lock::new(HashMap::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gswitch-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i as u32))
                    .expect("spawn worker")
            })
            .collect();
        Scheduler {
            shared,
            next_id: AtomicU64::new(1),
            capacity: config.queue_capacity.max(1),
            default_timeout_ms: config.default_timeout_ms,
            workers,
        }
    }

    /// Submit a job; fails fast on admission problems.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared.m.rejected.inc();
            return Err(SubmitError::ShuttingDown);
        }
        if self.shared.registry.get(&spec.graph).is_none() {
            self.shared.m.rejected.inc();
            return Err(SubmitError::UnknownGraph(spec.graph.clone()));
        }
        let deadline = Duration::from_millis(spec.timeout_ms.unwrap_or(self.default_timeout_ms));
        let (tx, rx) = mpsc::channel();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let graph = spec.graph.clone();
        let algo = spec.query.algo().to_string();
        let clock = self.shared.obs.clock();
        let admitted_ns = clock.now_ns();
        let span_id = self.shared.obs.span_collector().alloc_id();
        {
            let mut q = self.shared.queue.lock();
            if q.len() >= self.capacity {
                self.shared.m.rejected.inc();
                return Err(SubmitError::QueueFull);
            }
            q.push_back(Job { id, spec, admitted_ns, span_id, deadline, tx });
            self.shared.m.queue_depth.set(q.len() as i64);
        }
        self.shared.m.submitted.inc();
        self.shared.work_ready.notify_one();
        Ok(JobHandle { id, rx, graph, algo, clock, admitted_ns })
    }

    /// Submit `spec`, wait for the outcome, and transparently resubmit
    /// when the outcome is retryable (a worker [`JobStatus::Failed`],
    /// never a user error) — up to `retries` extra attempts, sleeping
    /// `backoff` before the first retry and doubling it each time.
    /// Admission errors propagate immediately; each retry is counted in
    /// the `jobs_retried` metric.
    pub fn submit_with_retry(
        &self,
        spec: JobSpec,
        retries: u32,
        backoff: Duration,
    ) -> Result<JobOutcome, SubmitError> {
        let mut delay = backoff;
        for attempt in 0..=retries {
            let out = self.submit(spec.clone())?.wait();
            if !out.status.is_retryable() || attempt == retries {
                return Ok(out);
            }
            self.shared.m.retried.inc();
            std::thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
        unreachable!("the final attempt returns above")
    }

    /// Request cancellation of job `id`, wherever it is:
    ///
    /// * still queued — it never runs and reports
    ///   [`JobStatus::Cancelled`];
    /// * currently executing — its engine run is stopped at the next
    ///   super-step and reports [`JobStatus::Cancelled`];
    /// * already finished (or unknown) — no-op, and nothing is
    ///   remembered, so cancelling completed ids cannot grow any state.
    pub fn cancel(&self, id: u64) {
        // Order matters: a job moves queue → running, never backwards,
        // so checking the queue first narrows the race window to the
        // instant between pickup and token registration (where a cancel
        // is a benign no-op).
        {
            let q = self.shared.queue.lock();
            if q.iter().any(|j| j.id == id) {
                self.shared.cancelled.lock().insert(id);
                return;
            }
        }
        if let Some(token) = self.shared.running.lock().get(&id) {
            token.cancel();
        }
    }

    /// Jobs currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// The observability root this scheduler reports into.
    pub fn obs(&self) -> &Arc<RuntimeObs> {
        &self.shared.obs
    }

    /// Stop accepting jobs, drain the queue, and join the workers.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn outcome_skeleton(job: &Job, status: JobStatus, clock: &Clock) -> JobOutcome {
    JobOutcome {
        id: job.id,
        graph: job.spec.graph.clone(),
        algo: job.spec.query.algo().to_string(),
        status,
        error: None,
        cache: None,
        config: None,
        wall_ms: clock.elapsed_ms(job.admitted_ns),
        sim_ms: 0.0,
        converged: false,
        metrics: Vec::new(),
        iterations: Vec::new(),
        payload: None,
    }
}

/// Render a `catch_unwind` payload for the outcome's `error` field.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn worker_loop(shared: &Shared, worker: u32) {
    let collector = shared.obs.span_collector();
    let clock = shared.obs.clock();
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    shared.m.queue_depth.set(q.len() as i64);
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = recover(shared.work_ready.wait(q));
            }
        };
        let spans = collector.local(worker, job.id);
        // The Request span is closed on every path out of this job,
        // covering admission → terminal state (queue wait included).
        let finish_request = |job: &Job| {
            let now = clock.now_ns();
            spans.record(SpanRecord {
                id: job.span_id,
                parent: 0,
                kind: SpanKind::Request,
                job: job.id,
                worker,
                shard: None,
                iter: 0,
                start_ns: job.admitted_ns,
                dur_ns: now.saturating_sub(job.admitted_ns),
            });
        };
        let picked_ns = clock.now_ns();
        spans.record_interval(
            SpanKind::QueueWait,
            job.span_id,
            job.admitted_ns,
            picked_ns,
            None,
            0,
        );
        shared.m.queue_wait_ms.observe(picked_ns.saturating_sub(job.admitted_ns) as f64 / 1e6);

        // Cancelled while queued? Previously this outcome vanished from
        // every aggregate — the counter is the only server-side record.
        // The `remove` also prunes the id, keeping the set bounded.
        if shared.cancelled.lock().remove(&job.id) {
            shared.m.cancelled.inc();
            let out = outcome_skeleton(&job, JobStatus::Cancelled, &clock);
            shared.m.total_ms.observe(out.wall_ms);
            finish_request(&job);
            let _ = job.tx.send(out);
            continue;
        }
        // Deadline passed while queued? Same silent-loss fix as above.
        if picked_ns.saturating_sub(job.admitted_ns) > job.deadline_ns() {
            shared.m.timeout_queued.inc();
            let out = outcome_skeleton(&job, JobStatus::DeadlineExceeded, &clock);
            shared.m.total_ms.observe(out.wall_ms);
            finish_request(&job);
            let _ = job.tx.send(out);
            continue;
        }

        let entry = match shared.registry.get(&job.spec.graph) {
            Some(e) => e,
            None => {
                // Registered at admission but replaced/removed since.
                shared.m.error.inc();
                let mut out = outcome_skeleton(&job, JobStatus::Error, &clock);
                out.error = Some(format!("graph `{}` disappeared", job.spec.graph));
                finish_request(&job);
                let _ = job.tx.send(out);
                continue;
            }
        };

        let recorder = shared.obs.recorder_for(job.id, &job.spec.graph, job.spec.query.algo());
        // The job's cancel token doubles as its deadline probe: the
        // engine polls it each super-step, and `Scheduler::cancel` can
        // reach it through the `running` map while the job executes.
        // A manual (test) clock has no `Instant` anchor; such jobs run
        // without a mid-run deadline and are still caught at completion.
        let token = Arc::new(
            match clock.instant_at_ns(job.admitted_ns.saturating_add(job.deadline_ns())) {
                Some(at) => CancelToken::with_deadline(at),
                None => CancelToken::new(),
            },
        );
        shared.running.lock().insert(job.id, Arc::clone(&token));
        let exec_guard = spans.start(SpanKind::Execute, job.span_id);
        let exec_spans = SpanCtx::new(collector.clone(), exec_guard.id(), worker, job.id);
        let exec_start = clock.now_ns();
        // Panic isolation: a panicking job must not take the worker —
        // or any lock-holding bystander — down with it. The shared
        // state is poison-recovering, so unwinding through it is safe.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(
                &entry,
                &job.spec.query,
                &shared.cache,
                &AutoPolicy,
                &shared.device,
                recorder,
                ProbeHandle::new(Arc::new(JobProbe { token: Arc::clone(&token) })),
                shared.verify_every,
                exec_spans,
            )
        }));
        drop(exec_guard);
        shared.running.lock().remove(&job.id);
        shared.m.execute_ms.observe(clock.elapsed_ms(exec_start));

        let mut midrun_deadline = false;
        let mut out = match result {
            Ok(Ok(exec)) => match exec.stopped {
                Some(StopReason::Cancelled) => outcome_skeleton(&job, JobStatus::Cancelled, &clock),
                Some(StopReason::DeadlineExceeded) => {
                    midrun_deadline = true;
                    outcome_skeleton(&job, JobStatus::DeadlineExceeded, &clock)
                }
                None => {
                    let mut out = outcome_skeleton(&job, JobStatus::Ok, &clock);
                    out.cache = Some(if exec.cache_hit { "hit" } else { "miss" }.to_string());
                    out.config = exec.config;
                    out.sim_ms = exec.sim_ms;
                    out.converged = exec.converged;
                    out.metrics = exec.metrics;
                    out.iterations = exec.iterations;
                    out.payload = Some(exec.payload);
                    out
                }
            },
            Ok(Err(msg)) => {
                let mut out = outcome_skeleton(&job, JobStatus::Error, &clock);
                out.error = Some(msg);
                out
            }
            Err(payload) => {
                let mut out = outcome_skeleton(&job, JobStatus::Failed, &clock);
                out.error = Some(format!("worker panic: {}", panic_message(payload)));
                out
            }
        };
        // Deadline also enforced at completion: late results are
        // withheld even when the run finished.
        if out.status == JobStatus::Ok
            && clock.now_ns().saturating_sub(job.admitted_ns) > job.deadline_ns()
        {
            out.status = JobStatus::DeadlineExceeded;
            out.metrics.clear();
            out.iterations.clear();
            out.payload = None;
        }
        match out.status {
            JobStatus::Ok => shared.m.ok.inc(),
            JobStatus::Error => shared.m.error.inc(),
            JobStatus::Failed => shared.m.failed.inc(),
            JobStatus::Cancelled => shared.m.cancelled.inc(),
            JobStatus::DeadlineExceeded => {
                if midrun_deadline {
                    shared.m.timeout_midrun.inc()
                } else {
                    shared.m.timeout_late.inc()
                }
            }
        }
        out.wall_ms = clock.elapsed_ms(job.admitted_ns);
        shared.m.total_ms.observe(out.wall_ms);
        finish_request(&job);
        let _ = job.tx.send(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use gswitch_graph::gen;

    fn make_scheduler(workers: usize) -> (Scheduler, Arc<GraphRegistry>, Arc<ConfigCache>) {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let config = SchedulerConfig { workers, ..Default::default() };
        let s = Scheduler::new(Arc::clone(&registry), Arc::clone(&cache), config);
        (s, registry, cache)
    }

    fn bfs_spec(src: u32) -> JobSpec {
        JobSpec { graph: "kron".into(), query: Query::Bfs { src }, timeout_ms: None }
    }

    #[test]
    fn unknown_graph_is_rejected_at_admission() {
        let (s, _r, _c) = make_scheduler(1);
        let err = s
            .submit(JobSpec { graph: "nope".into(), query: Query::Cc, timeout_ms: None })
            .err()
            .unwrap();
        assert_eq!(err, SubmitError::UnknownGraph("nope".into()));
        s.shutdown();
    }

    #[test]
    fn queue_overflow_fails_fast() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        // Zero workers are clamped to one, so stuff the queue faster than
        // a single worker drains it by using a tiny capacity.
        let config = SchedulerConfig { workers: 1, queue_capacity: 2, ..Default::default() };
        let s = Scheduler::new(registry, cache, config);
        let mut handles = Vec::new();
        let mut saw_full = false;
        for src in 0..64 {
            match s.submit(bfs_spec(src)) {
                Ok(h) => handles.push(h),
                Err(SubmitError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(saw_full, "a capacity-2 queue never filled under burst submission");
        for h in handles {
            assert_eq!(h.wait().status, JobStatus::Ok);
        }
        s.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let (s, _r, _c) = make_scheduler(1);
        s.shared.shutdown.store(true, Ordering::SeqCst);
        s.shared.work_ready.notify_all();
        match s.submit(bfs_spec(0)) {
            Err(SubmitError::ShuttingDown) => {}
            Err(e) => panic!("wrong admission error: {e}"),
            Ok(_) => panic!("job accepted after shutdown"),
        }
    }

    #[test]
    fn zero_deadline_times_out_without_running() {
        let (s, _r, _c) = make_scheduler(1);
        let spec = JobSpec { graph: "kron".into(), query: Query::Cc, timeout_ms: Some(0) };
        let out = s.submit(spec).unwrap().wait();
        assert_eq!(out.status, JobStatus::DeadlineExceeded);
        assert!(out.iterations.is_empty(), "timed-out job must not leak results");
        assert!(out.payload.is_none());
        s.shutdown();
    }

    #[test]
    fn cancel_while_queued_prevents_execution() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let config = SchedulerConfig { workers: 1, ..Default::default() };
        let s = Scheduler::new(registry, cache, config);
        // One long-ish job occupies the single worker while we cancel
        // the jobs stacked behind it.
        let busy = s.submit(JobSpec {
            graph: "kron".into(),
            query: Query::Pr { eps: 1e-6 },
            timeout_ms: None,
        });
        let mut cancelled = 0;
        let mut handles = Vec::new();
        for src in 0..8 {
            let h = s.submit(bfs_spec(src)).unwrap();
            s.cancel(h.id);
            handles.push(h);
        }
        for h in handles {
            let out = h.wait();
            if out.status == JobStatus::Cancelled {
                cancelled += 1;
                assert!(out.iterations.is_empty());
            }
        }
        assert!(cancelled > 0, "no queued job observed its cancellation");
        assert_eq!(busy.unwrap().wait().status, JobStatus::Ok);
        s.shutdown();
    }

    #[test]
    fn lost_outcomes_surface_as_counters() {
        // Deadline-exceeded-while-queued and cancelled-while-queued jobs
        // used to leave no server-side record at all; both must show up
        // in the unified registry now.
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let obs = Arc::new(RuntimeObs::new());
        let config = SchedulerConfig { workers: 1, ..Default::default() };
        let s = Scheduler::with_obs(registry, cache, config, Arc::clone(&obs));

        // A busy job pins the single worker so queued jobs age.
        let busy = s.submit(JobSpec {
            graph: "kron".into(),
            query: Query::Pr { eps: 1e-6 },
            timeout_ms: None,
        });
        let dead = s
            .submit(JobSpec { graph: "kron".into(), query: Query::Cc, timeout_ms: Some(0) })
            .unwrap();
        let doomed = s.submit(bfs_spec(0)).unwrap();
        s.cancel(doomed.id);
        let _ = s.submit(JobSpec { graph: "nope".into(), query: Query::Cc, timeout_ms: None });

        assert_eq!(dead.wait().status, JobStatus::DeadlineExceeded);
        let doomed_status = doomed.wait().status;
        assert_eq!(busy.unwrap().wait().status, JobStatus::Ok);

        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter(metric::JOBS_TIMEOUT_QUEUED), 1);
        if doomed_status == JobStatus::Cancelled {
            assert_eq!(snap.counter(metric::JOBS_CANCELLED), 1);
        }
        assert_eq!(snap.counter(metric::JOBS_REJECTED), 1);
        assert!(snap.counter(metric::JOBS_SUBMITTED) >= 3);
        assert!(snap.counter(metric::JOBS_OK) >= 1);
        // Stage histograms saw every terminal job.
        let waits = snap.histograms.get(metric::QUEUE_WAIT_MS).expect("wait histogram");
        assert!(waits.count >= 3);
        let totals = snap.histograms.get(metric::JOB_TOTAL_MS).expect("total histogram");
        assert!(totals.count >= 3);
        // Cache counters live in the same registry (shared state).
        assert!(snap.counter(metric::CACHE_MISSES) >= 1);
        s.shutdown();
    }

    #[test]
    fn tracing_produces_events_for_scheduled_jobs() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let obs = Arc::new(RuntimeObs::new());
        obs.set_tracing(true);
        let s = Scheduler::with_obs(
            registry,
            cache,
            SchedulerConfig { workers: 2, ..Default::default() },
            Arc::clone(&obs),
        );
        let out = s.submit(bfs_spec(0)).unwrap().wait();
        assert_eq!(out.status, JobStatus::Ok);
        let events = obs.trace.snapshot();
        assert!(!events.is_empty(), "traced job produced no events");
        assert!(events.iter().all(|e| e.algo == "bfs" && e.graph == "kron"));
        assert_eq!(events.len(), out.iterations.len());
        s.shutdown();
    }

    /// Every scheduled job leaves a causal span tree: a root `Request`
    /// span with `QueueWait` and `Execute` children, and the engine's
    /// super-steps nested under `Execute`.
    #[test]
    fn jobs_emit_request_queue_execute_spans() {
        use gswitch_obs::SpanKind;
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let obs = Arc::new(RuntimeObs::new());
        let s = Scheduler::with_obs(
            registry,
            cache,
            SchedulerConfig { workers: 2, ..Default::default() },
            Arc::clone(&obs),
        );
        let out = s.submit(bfs_spec(0)).unwrap().wait();
        assert_eq!(out.status, JobStatus::Ok);
        // Worker-local span buffers flush when the workers wind down.
        s.shutdown();

        let spans = obs.spans.snapshot();
        let requests: Vec<_> = spans.iter().filter(|r| r.kind == SpanKind::Request).collect();
        assert_eq!(requests.len(), 1, "one job, one request span");
        let req = requests[0];
        assert_eq!(req.parent, 0, "request spans are roots");
        let qw = spans.iter().find(|r| r.kind == SpanKind::QueueWait).expect("queue-wait span");
        assert_eq!(qw.parent, req.id);
        let ex = spans.iter().find(|r| r.kind == SpanKind::Execute).expect("execute span");
        assert_eq!(ex.parent, req.id);
        assert!(ex.dur_ns <= req.dur_ns, "execute cannot outlast its request");
        // The engine's super-steps nest under this job's execute span.
        let steps: Vec<_> = spans.iter().filter(|r| r.kind == SpanKind::SuperStep).collect();
        assert!(!steps.is_empty(), "engine emitted no super-step spans");
        assert!(steps.iter().all(|st| st.parent == ex.id && st.job == req.job));
        // Self-time accounting holds over the whole tree.
        let p = gswitch_obs::profile(&spans);
        assert!(p.excl_total_ms() <= p.total_ms + 1e-9);
    }

    /// The satellite concurrency test: a mixed batch through a real
    /// worker pool, every answer checked against the sequential
    /// reference implementations.
    #[test]
    fn concurrent_mixed_queries_match_references() {
        use crate::query::Payload;
        use gswitch_algos::reference;

        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        registry.insert("grid", gen::grid2d(16, 16, 0.0, 5));
        let cache = Arc::new(ConfigCache::new());
        let s = Scheduler::new(
            Arc::clone(&registry),
            cache,
            SchedulerConfig { workers: 4, ..Default::default() },
        );

        let mut handles = Vec::new();
        for graph in ["kron", "grid"] {
            for src in [0u32, 7, 99] {
                for query in [Query::Bfs { src }, Query::Sssp { src }, Query::Cc] {
                    let spec = JobSpec { graph: graph.into(), query, timeout_ms: None };
                    handles.push((graph, spec.clone(), s.submit(spec).unwrap()));
                }
            }
        }

        for (graph, spec, h) in handles {
            let out = h.wait();
            assert_eq!(out.status, JobStatus::Ok, "{graph}/{}: {:?}", out.algo, out.error);
            let entry = registry.get(graph).unwrap();
            match (spec.query, out.payload.expect("payload")) {
                (Query::Bfs { src }, Payload::Levels { values }) => {
                    assert_eq!(values, reference::bfs(entry.graph(), src), "{graph} bfs {src}");
                }
                (Query::Sssp { src }, Payload::Distances { values }) => {
                    assert_eq!(
                        values,
                        reference::sssp(&entry.weighted(), src),
                        "{graph} sssp {src}"
                    );
                }
                (Query::Cc, Payload::Labels { values }) => {
                    assert_eq!(values, reference::cc(entry.graph()), "{graph} cc");
                }
                (q, p) => panic!("mismatched payload for {q:?}: {p:?}"),
            }
        }
        s.shutdown();
    }

    /// Regression: `wait()` used to panic with "worker dropped without
    /// reporting" when the sender side vanished. It must synthesize a
    /// structured `Failed` outcome instead.
    #[test]
    fn wait_on_dropped_worker_reports_failed_not_panic() {
        let (tx, rx) = mpsc::channel::<JobOutcome>();
        let clock = Clock::monotonic();
        let admitted_ns = clock.now_ns();
        let handle =
            JobHandle { id: 42, rx, graph: "kron".into(), algo: "bfs".into(), clock, admitted_ns };
        drop(tx); // the "worker died" case
        let out = handle.wait();
        assert_eq!(out.status, JobStatus::Failed);
        assert_eq!(out.id, 42);
        assert_eq!(out.graph, "kron");
        assert!(out.error.as_deref().unwrap_or("").contains("worker dropped"));
    }

    /// Regression: cancelling ids of completed (or never-admitted) jobs
    /// used to accumulate forever in the `cancelled` set. Now only ids
    /// actually found in the queue are remembered, so the set stays
    /// bounded and arbitrary cancels leave no residue.
    #[test]
    fn cancel_of_completed_ids_leaves_no_residue() {
        let (s, _r, _c) = make_scheduler(2);
        let h = s.submit(bfs_spec(0)).unwrap();
        let finished = h.id;
        assert_eq!(h.wait().status, JobStatus::Ok);

        // Cancel the finished job plus a pile of ids that never existed.
        s.cancel(finished);
        for bogus in 1_000..1_100 {
            s.cancel(bogus);
        }
        assert_eq!(
            s.shared.cancelled.lock().len(),
            0,
            "cancelled set must not retain ids that were not queued"
        );

        // The scheduler still works afterwards.
        assert_eq!(s.submit(bfs_spec(1)).unwrap().wait().status, JobStatus::Ok);
        s.shutdown();
    }

    /// A scheduler with the divergence sentinel on still produces
    /// reference-exact answers on healthy runs (the sentinel only
    /// intervenes on divergence, which a correct engine never shows).
    #[test]
    fn sentinel_enabled_scheduler_matches_references() {
        use crate::query::Payload;
        use gswitch_algos::reference;

        let registry = Arc::new(GraphRegistry::new());
        registry.insert("kron", gen::kronecker(8, 8, 3));
        let cache = Arc::new(ConfigCache::new());
        let config = SchedulerConfig { workers: 2, verify_every: 2, ..Default::default() };
        let s = Scheduler::new(Arc::clone(&registry), cache, config);
        let out = s.submit(bfs_spec(0)).unwrap().wait();
        assert_eq!(out.status, JobStatus::Ok);
        let entry = registry.get("kron").unwrap();
        match out.payload.expect("payload") {
            Payload::Levels { values } => {
                assert_eq!(values, reference::bfs(entry.graph(), 0));
            }
            p => panic!("wrong payload: {p:?}"),
        }
        s.shutdown();
    }

    /// `submit_with_retry` with zero budget behaves exactly like
    /// `submit().wait()` for healthy jobs, and never sleeps.
    #[test]
    fn submit_with_retry_passes_healthy_jobs_through() {
        let (s, _r, _c) = make_scheduler(2);
        let out = s.submit_with_retry(bfs_spec(0), 2, Duration::from_millis(1)).unwrap();
        assert_eq!(out.status, JobStatus::Ok);
        let snap = s.obs().metrics.snapshot();
        assert_eq!(snap.counter(metric::JOBS_RETRIED), 0);
        s.shutdown();
    }
}
