//! The feature database: one record per iteration (§4.4).
//!
//! "We ran all the implementations of the kernel library on 644 graphs for
//! all the benchmarks and gathered a total of 386,780 records (one record
//! for each iteration). The true optimal configurations were attained via
//! brute-force experimentation."

use serde::{Deserialize, Serialize};

/// Number of features per record (Table 1).
pub const FEATURE_COUNT: usize = 21;

/// Feature names in record order, matching Table 1 and the example record
/// of §4.4 (dataset attributes, runtime characteristics, historical
/// information).
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "N",           // number of vertices
    "M",           // number of edges
    "d_avg",       // average degree
    "d_std",       // degree standard deviation
    "d_rel_range", // relative range of degrees
    "gini",        // Gini coefficient
    "h_er",        // relative edge distribution entropy
    "v_a",         // active vertices
    "v_ia",        // inactive vertices
    "e_a",         // active edges
    "e_ia",        // inactive edges
    "v_ap",        // active vertex ratio
    "v_iap",       // inactive vertex ratio
    "e_ap",        // active edge ratio
    "e_iap",       // inactive edge ratio
    "cd",          // average degree of current workload
    "r_cd",        // relative degree range of current workload
    "t_f",         // last Filter time (ms)
    "t_e",         // last Expand time (ms)
    "t_f_avg",     // mean of previous Filter times (ms)
    "t_e_avg",     // mean of previous Expand times (ms)
];

/// The five decision targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// P1 — Push / Pull.
    Direction,
    /// P2 — Bitmap / UnsortedQueue / SortedQueue.
    Format,
    /// P3 — TWC / WM / CM / STRICT.
    LoadBalance,
    /// P4 — Increase / Decrease / Remain.
    Stepping,
    /// P5 — Standalone / Fused.
    Fusion,
}

impl Pattern {
    /// All patterns in decision order (§4.5: direction first, then load
    /// balance, then format, then stepping, then fusion).
    pub const DECISION_ORDER: [Pattern; 5] = [
        Pattern::Direction,
        Pattern::LoadBalance,
        Pattern::Format,
        Pattern::Stepping,
        Pattern::Fusion,
    ];

    /// Class names for rule export and confusion matrices.
    pub fn class_names(self) -> &'static [&'static str] {
        match self {
            Pattern::Direction => &["push", "pull"],
            Pattern::Format => &["bitmap", "unsorted_queue", "sorted_queue"],
            Pattern::LoadBalance => &["twc", "wm", "cm", "strict"],
            Pattern::Stepping => &["increase", "decrease", "remain"],
            Pattern::Fusion => &["standalone", "fused"],
        }
    }

    /// Number of candidate classes.
    pub fn n_classes(self) -> usize {
        self.class_names().len()
    }
}

/// Brute-forced optimal labels for one iteration. `None` when the pattern
/// does not apply (e.g. stepping on a non-monotonic algorithm, fusion on a
/// duplicate-intolerant one).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Labels {
    /// Optimal P1 class index.
    pub direction: Option<u8>,
    /// Optimal P2 class index.
    pub format: Option<u8>,
    /// Optimal P3 class index.
    pub load_balance: Option<u8>,
    /// Optimal P4 class index.
    pub stepping: Option<u8>,
    /// Optimal P5 class index.
    pub fusion: Option<u8>,
}

impl Labels {
    /// Label for one pattern.
    pub fn get(&self, p: Pattern) -> Option<u8> {
        match p {
            Pattern::Direction => self.direction,
            Pattern::Format => self.format,
            Pattern::LoadBalance => self.load_balance,
            Pattern::Stepping => self.stepping,
            Pattern::Fusion => self.fusion,
        }
    }
}

/// One iteration of one benchmark on one graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// The 21-entry feature vector (order of [`FEATURE_NAMES`]).
    pub features: [f64; FEATURE_COUNT],
    /// Brute-forced optimal candidates.
    pub labels: Labels,
    /// Benchmark tag ("bfs", "sssp", ...) for slicing analyses.
    pub benchmark: String,
    /// Dataset name.
    pub graph: String,
}

/// A collection of records with train/eval helpers.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FeatureDb {
    /// All records, in collection order.
    pub records: Vec<Record>,
}

impl FeatureDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn push(&mut self, r: Record) {
        self.records.push(r);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Merge another database into this one.
    pub fn extend(&mut self, other: FeatureDb) {
        self.records.extend(other.records);
    }

    /// Extract the (rows, labels) training matrix for one pattern,
    /// skipping records where the pattern does not apply.
    pub fn training_matrix(&self, p: Pattern) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for r in &self.records {
            if let Some(l) = r.labels.get(p) {
                rows.push(r.features.to_vec());
                labels.push(l as usize);
            }
        }
        (rows, labels)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("db serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Save as JSON to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load a JSON file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(v_a: f64, dir: u8) -> Record {
        let mut features = [0.0; FEATURE_COUNT];
        features[7] = v_a;
        Record {
            features,
            labels: Labels { direction: Some(dir), ..Default::default() },
            benchmark: "bfs".into(),
            graph: "g".into(),
        }
    }

    #[test]
    fn names_match_count() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
        assert_eq!(FEATURE_COUNT, 21, "Table 1 has 21 features");
    }

    #[test]
    fn decision_order_is_p1_p3_p2_p4_p5() {
        assert_eq!(
            Pattern::DECISION_ORDER,
            [
                Pattern::Direction,
                Pattern::LoadBalance,
                Pattern::Format,
                Pattern::Stepping,
                Pattern::Fusion
            ]
        );
    }

    #[test]
    fn class_counts() {
        assert_eq!(Pattern::Direction.n_classes(), 2);
        assert_eq!(Pattern::Format.n_classes(), 3);
        assert_eq!(Pattern::LoadBalance.n_classes(), 4);
        assert_eq!(Pattern::Stepping.n_classes(), 3);
        assert_eq!(Pattern::Fusion.n_classes(), 2);
    }

    #[test]
    fn training_matrix_skips_unlabelled() {
        let mut db = FeatureDb::new();
        db.push(record(10.0, 0));
        db.push(record(20.0, 1));
        let mut no_dir = record(30.0, 0);
        no_dir.labels.direction = None;
        no_dir.labels.fusion = Some(1);
        db.push(no_dir);

        let (rows, labels) = db.training_matrix(Pattern::Direction);
        assert_eq!(rows.len(), 2);
        assert_eq!(labels, vec![0, 1]);
        let (rows, labels) = db.training_matrix(Pattern::Fusion);
        assert_eq!(rows.len(), 1);
        assert_eq!(labels, vec![1]);
        let (rows, _) = db.training_matrix(Pattern::Stepping);
        assert!(rows.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let mut db = FeatureDb::new();
        db.push(record(1.0, 1));
        let db2 = FeatureDb::from_json(&db.to_json()).unwrap();
        assert_eq!(db.records, db2.records);
    }

    #[test]
    fn extend_merges() {
        let mut a = FeatureDb::new();
        a.push(record(1.0, 0));
        let mut b = FeatureDb::new();
        b.push(record(2.0, 1));
        a.extend(b);
        assert_eq!(a.len(), 2);
    }
}
