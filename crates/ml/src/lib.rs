//! Machine-learning backend of the GSWITCH Selector.
//!
//! The paper (§4.4) treats each pattern as an independent classification
//! problem, trains one CART tree per pattern on 386,780 iteration records
//! from 644 graphs, and deliberately keeps the trees shallow so they
//! convert to portable if-else rules with microsecond inference.
//!
//! * [`tree`] — CART with Gini impurity, depth capping ("we tailor the
//!   generated decision tree and keep its height as low as possible"),
//!   JSON persistence and if-else rule export.
//! * [`dataset`] — the feature-database record format: one row per
//!   iteration, 21 features (Table 1) plus the brute-forced optimal label
//!   for each pattern.
//! * [`cv`] — k-fold cross-validation and accuracy/confusion reporting
//!   (the paper's §5.4 uses 10-fold).

#![warn(missing_docs)]

pub mod cv;
pub mod dataset;
pub mod tree;

pub use cv::{cross_validate, CvReport};
pub use dataset::{FeatureDb, Labels, Pattern, Record, FEATURE_COUNT, FEATURE_NAMES};
pub use tree::{DecisionTree, TrainError, TrainParams};
