//! k-fold cross-validation (the paper's §5.1 uses ten-fold to evaluate
//! model accuracy; §5.4 reports the resulting per-pattern accuracies).

use crate::tree::{DecisionTree, TrainParams};
use rayon::prelude::*;

/// Result of a cross-validation run.
#[derive(Clone, Debug)]
pub struct CvReport {
    /// Per-fold accuracy on the held-out fold.
    pub fold_accuracy: Vec<f64>,
    /// Confusion matrix summed over folds: `confusion[truth][predicted]`.
    pub confusion: Vec<Vec<usize>>,
    /// Number of classes.
    pub n_classes: usize,
}

impl CvReport {
    /// Mean held-out accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        if self.fold_accuracy.is_empty() {
            return 0.0;
        }
        self.fold_accuracy.iter().sum::<f64>() / self.fold_accuracy.len() as f64
    }

    /// Per-class recall (diagonal over row sums); `None` for unseen
    /// classes.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row = self.confusion.get(class)?;
        let total: usize = row.iter().sum();
        if total == 0 {
            None
        } else {
            Some(row[class] as f64 / total as f64)
        }
    }
}

/// Run `k`-fold cross-validation. Folds are assigned round-robin
/// (`i % k`), which is deterministic and — because records arrive grouped
/// by graph/iteration — spreads each graph's iterations across folds the
/// same way for every run.
///
/// # Panics
/// Panics when `k < 2` or there are fewer than `k` samples.
pub fn cross_validate(
    rows: &[Vec<f64>],
    labels: &[usize],
    k: usize,
    params: TrainParams,
) -> CvReport {
    assert!(k >= 2, "need at least 2 folds");
    assert!(rows.len() >= k, "need at least k samples");
    assert_eq!(rows.len(), labels.len());
    let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;

    let folds: Vec<(f64, Vec<Vec<usize>>)> = (0..k)
        .into_par_iter()
        .map(|fold| {
            let mut train_rows = Vec::new();
            let mut train_labels = Vec::new();
            let mut test_rows = Vec::new();
            let mut test_labels = Vec::new();
            for (i, (r, &l)) in rows.iter().zip(labels).enumerate() {
                if i % k == fold {
                    test_rows.push(r.clone());
                    test_labels.push(l);
                } else {
                    train_rows.push(r.clone());
                    train_labels.push(l);
                }
            }
            let tree = DecisionTree::train(&train_rows, &train_labels, params)
                .expect("cv folds are non-empty and rectangular");
            let mut confusion = vec![vec![0usize; n_classes]; n_classes];
            let mut hits = 0usize;
            for (r, &l) in test_rows.iter().zip(&test_labels) {
                let p = tree.predict(r).min(n_classes - 1);
                confusion[l][p] += 1;
                if p == l {
                    hits += 1;
                }
            }
            let acc = if test_rows.is_empty() { 1.0 } else { hits as f64 / test_rows.len() as f64 };
            (acc, confusion)
        })
        .collect();

    let mut confusion = vec![vec![0usize; n_classes]; n_classes];
    let mut fold_accuracy = Vec::with_capacity(k);
    for (acc, c) in folds {
        fold_accuracy.push(acc);
        for (row, crow) in confusion.iter_mut().zip(&c) {
            for (cell, &v) in row.iter_mut().zip(crow) {
                *cell += v;
            }
        }
    }
    CvReport { fold_accuracy, confusion, n_classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        // Noisy but separable: class = x > 50 with interleaved order.
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![((i * 37) % 100) as f64]).collect();
        let labels = rows.iter().map(|r| usize::from(r[0] > 50.0)).collect();
        (rows, labels)
    }

    #[test]
    fn ten_fold_on_separable_data_is_accurate() {
        let (rows, labels) = dataset(500);
        let rep = cross_validate(&rows, &labels, 10, TrainParams::default());
        assert_eq!(rep.fold_accuracy.len(), 10);
        assert!(rep.mean_accuracy() > 0.95, "acc = {}", rep.mean_accuracy());
    }

    #[test]
    fn confusion_matrix_accounts_all_samples() {
        let (rows, labels) = dataset(100);
        let rep = cross_validate(&rows, &labels, 5, TrainParams::default());
        let total: usize = rep.confusion.iter().flatten().sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn recall_defined_for_seen_classes() {
        let (rows, labels) = dataset(200);
        let rep = cross_validate(&rows, &labels, 4, TrainParams::default());
        assert!(rep.recall(0).unwrap() > 0.9);
        assert!(rep.recall(1).unwrap() > 0.9);
        assert!(rep.recall(7).is_none());
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn rejects_single_fold() {
        let (rows, labels) = dataset(10);
        cross_validate(&rows, &labels, 1, TrainParams::default());
    }
}
