//! CART decision trees (Gini impurity, axis-aligned threshold splits).
//!
//! Chosen for the same two reasons the paper gives (§4.4): the rules
//! export to portable if-else chains, and inference costs a handful of
//! compares — negligible against a kernel launch.

use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainParams {
    /// Maximum tree height. The paper prunes aggressively to fight CART's
    /// overfitting; 6 reproduces "as low as possible" shallow trees.
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
    /// Require each child to keep at least this many samples.
    pub min_samples_leaf: usize,
    /// Minimum Gini improvement to accept a split.
    pub min_gain: f64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams { max_depth: 6, min_samples_split: 8, min_samples_leaf: 2, min_gain: 1e-4 }
    }
}

/// One tree node. Children are indices into the tree's node arena so the
/// whole model serializes flat.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub enum Node {
    /// Majority-class leaf.
    Leaf {
        /// Predicted class.
        class: usize,
        /// Training samples that reached the leaf (diagnostics).
        weight: usize,
    },
    /// `feature < threshold` goes left, else right.
    Split {
        /// Feature column index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Arena index of the `<` child.
        left: usize,
        /// Arena index of the `>=` child.
        right: usize,
    },
}

/// A trained classifier.
///
/// ```
/// use gswitch_ml::{DecisionTree, TrainParams};
/// // Learn "class = (x > 4)". (Default params refuse to split nodes
/// // with fewer than 8 samples.)
/// let rows: Vec<Vec<f64>> = (1..=8).map(|x| vec![x as f64]).collect();
/// let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
/// let tree = DecisionTree::train(&rows, &labels, TrainParams::default());
/// assert_eq!(tree.predict(&[1.5]), 0);
/// assert_eq!(tree.predict(&[7.5]), 1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
}

impl DecisionTree {
    /// Train on `rows` (each of equal length) with class `labels`.
    ///
    /// # Panics
    /// Panics on empty input, ragged rows, or labels out of range of the
    /// observed class count.
    pub fn train(rows: &[Vec<f64>], labels: &[usize], params: TrainParams) -> Self {
        assert!(!rows.is_empty(), "cannot train on an empty dataset");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let n_features = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == n_features), "ragged feature rows");
        let n_classes = labels.iter().copied().max().unwrap() + 1;

        let mut tree = DecisionTree { nodes: Vec::new(), n_features, n_classes };
        let mut index: Vec<u32> = (0..rows.len() as u32).collect();
        tree.build(rows, labels, &mut index, 0, &params);
        tree
    }

    /// Recursive node construction over `index` (the sample subset);
    /// returns the arena index of the built node.
    fn build(
        &mut self,
        rows: &[Vec<f64>],
        labels: &[usize],
        index: &mut [u32],
        depth: usize,
        params: &TrainParams,
    ) -> usize {
        let counts = self.class_counts(labels, index);
        let majority = argmax(&counts);
        let node_gini = gini(&counts, index.len());

        let stop =
            depth >= params.max_depth || index.len() < params.min_samples_split || node_gini == 0.0;
        if !stop {
            if let Some((feature, threshold, gain)) =
                best_split(rows, labels, index, self.n_classes, params.min_samples_leaf)
            {
                if gain >= params.min_gain {
                    // Partition the index in place by the split predicate.
                    let mid = partition(rows, index, feature, threshold);
                    // Defensive: a degenerate split keeps this a leaf.
                    if mid > 0 && mid < index.len() {
                        let slot = self.nodes.len();
                        self.nodes.push(Node::Leaf { class: majority, weight: index.len() });
                        let (l, r) = index.split_at_mut(mid);
                        let left = self.build(rows, labels, l, depth + 1, params);
                        let right = self.build(rows, labels, r, depth + 1, params);
                        self.nodes[slot] = Node::Split { feature, threshold, left, right };
                        return slot;
                    }
                }
            }
        }
        self.nodes.push(Node::Leaf { class: majority, weight: index.len() });
        self.nodes.len() - 1
    }

    fn class_counts(&self, labels: &[usize], index: &[u32]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &i in index {
            counts[labels[i as usize]] += 1;
        }
        counts
    }

    /// Predict the class of one feature row.
    ///
    /// # Panics
    /// Panics when `row` has the wrong arity.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.n_features, "feature arity mismatch");
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { class, .. } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    at = if row[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Fraction of `rows` predicted as their label.
    pub fn accuracy(&self, rows: &[Vec<f64>], labels: &[usize]) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        let hits = rows.iter().zip(labels).filter(|(r, &l)| self.predict(r) == l).count();
        hits as f64 / rows.len() as f64
    }

    /// Height of the tree (a single leaf has height 0).
    pub fn height(&self) -> usize {
        fn h(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + h(nodes, *left).max(h(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            h(&self.nodes, 0)
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes (never produced by `train`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of feature columns expected by `predict`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes seen at training time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Render the tree as portable if-else rules, naming features with
    /// `feature_names` and classes with `class_names` — the paper's
    /// "convert the resulting rules to if-else sentences".
    pub fn to_rules(&self, feature_names: &[&str], class_names: &[&str]) -> String {
        let mut out = String::new();
        self.rule(0, 0, feature_names, class_names, &mut out);
        out
    }

    fn rule(&self, at: usize, indent: usize, fnames: &[&str], cnames: &[&str], out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(indent);
        match &self.nodes[at] {
            Node::Leaf { class, weight } => {
                let name = cnames.get(*class).copied().unwrap_or("?");
                let _ = writeln!(out, "{pad}choose {name};  // {weight} samples");
            }
            Node::Split { feature, threshold, left, right } => {
                let name = fnames.get(*feature).copied().unwrap_or("?");
                let _ = writeln!(out, "{pad}if ({name} < {threshold:.6}) {{");
                self.rule(*left, indent + 1, fnames, cnames, out);
                let _ = writeln!(out, "{pad}}} else {{");
                self.rule(*right, indent + 1, fnames, cnames, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("tree serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Gini impurity of a class-count vector over `n` samples.
fn gini(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

fn argmax(counts: &[usize]) -> usize {
    counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i).unwrap_or(0)
}

/// Exhaustive best split over features × thresholds: sort the subset by
/// each feature and sweep, maintaining incremental class counts.
/// Returns (feature, threshold, gini_gain).
fn best_split(
    rows: &[Vec<f64>],
    labels: &[usize],
    index: &[u32],
    n_classes: usize,
    min_leaf: usize,
) -> Option<(usize, f64, f64)> {
    let n = index.len();
    let mut total = vec![0usize; n_classes];
    for &i in index {
        total[labels[i as usize]] += 1;
    }
    let parent = gini(&total, n);
    let n_features = rows[0].len();

    let mut best: Option<(usize, f64, f64)> = None;
    let mut sorted: Vec<u32> = index.to_vec();
    #[allow(clippy::needless_range_loop)] // u/f index several arrays
    for f in 0..n_features {
        sorted.sort_unstable_by(|&a, &b| {
            rows[a as usize][f]
                .partial_cmp(&rows[b as usize][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left = vec![0usize; n_classes];
        for k in 1..n {
            let prev = sorted[k - 1] as usize;
            left[labels[prev]] += 1;
            let (a, b) = (rows[prev][f], rows[sorted[k] as usize][f]);
            if a == b {
                continue; // no threshold separates equal values
            }
            if k < min_leaf || n - k < min_leaf {
                continue;
            }
            let mut right = vec![0usize; n_classes];
            for c in 0..n_classes {
                right[c] = total[c] - left[c];
            }
            let w = k as f64 / n as f64;
            let child = w * gini(&left, k) + (1.0 - w) * gini(&right, n - k);
            let gain = parent - child;
            let threshold = 0.5 * (a + b);
            if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 0.0) {
                best = Some((f, threshold, gain));
            }
        }
    }
    best
}

/// In-place stable partition of `index` by `rows[i][feature] < threshold`;
/// returns the size of the left side.
fn partition(rows: &[Vec<f64>], index: &mut [u32], feature: usize, threshold: f64) -> usize {
    let mut left: Vec<u32> = Vec::with_capacity(index.len());
    let mut right: Vec<u32> = Vec::with_capacity(index.len());
    for &i in index.iter() {
        if rows[i as usize][feature] < threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    let mid = left.len();
    index[..mid].copy_from_slice(&left);
    index[mid..].copy_from_slice(&right);
    mid
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable 2-D data: class = x0 > 0.5.
    fn separable(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![i as f64 / n as f64, (i * 7 % 13) as f64]).collect();
        let labels = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        (rows, labels)
    }

    #[test]
    fn learns_separable_data_perfectly() {
        let (rows, labels) = separable(200);
        let t = DecisionTree::train(&rows, &labels, TrainParams::default());
        assert_eq!(t.accuracy(&rows, &labels), 1.0);
        assert!(t.height() <= 2, "height {}", t.height());
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![1, 1, 1];
        let t = DecisionTree::train(&rows, &labels, TrainParams::default());
        assert_eq!(t.len(), 1);
        assert_eq!(t.predict(&[9.0]), 1);
    }

    #[test]
    fn depth_cap_respected() {
        // XOR-ish checkerboard needs depth; cap at 2 and verify.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                rows.push(vec![i as f64, j as f64]);
                labels.push(((i / 4) + (j / 4)) % 2);
            }
        }
        let t =
            DecisionTree::train(&rows, &labels, TrainParams { max_depth: 2, ..Default::default() });
        assert!(t.height() <= 2);
    }

    #[test]
    fn three_class_problem() {
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..300).map(|i| i / 100).collect();
        let t = DecisionTree::train(&rows, &labels, TrainParams::default());
        assert_eq!(t.n_classes(), 3);
        assert_eq!(t.predict(&[50.0]), 0);
        assert_eq!(t.predict(&[150.0]), 1);
        assert_eq!(t.predict(&[250.0]), 2);
    }

    #[test]
    fn min_leaf_blocks_tiny_splits() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![0, 1, 1, 1];
        let t = DecisionTree::train(
            &rows,
            &labels,
            TrainParams { min_samples_leaf: 2, min_samples_split: 2, ..Default::default() },
        );
        // Splitting off the single 0-label sample is forbidden; the next
        // best legal split (1 vs rest at 1.5) may still happen, but no
        // leaf may hold fewer than 2 samples.
        fn check(t: &DecisionTree, at: usize) {
            match &t.nodes[at] {
                Node::Leaf { weight, .. } => assert!(*weight >= 2),
                Node::Split { left, right, .. } => {
                    check(t, *left);
                    check(t, *right);
                }
            }
        }
        check(&t, 0);
    }

    #[test]
    fn rules_render() {
        let (rows, labels) = separable(50);
        let t = DecisionTree::train(&rows, &labels, TrainParams::default());
        let rules = t.to_rules(&["x", "noise"], &["push", "pull"]);
        assert!(rules.contains("if (x <"), "{rules}");
        assert!(rules.contains("choose pull"));
        assert!(rules.contains("choose push"));
    }

    #[test]
    fn json_roundtrip() {
        let (rows, labels) = separable(64);
        let t = DecisionTree::train(&rows, &labels, TrainParams::default());
        let t2 = DecisionTree::from_json(&t.to_json()).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.predict(&[0.9, 0.0]), 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_training_set() {
        DecisionTree::train(&[], &[], TrainParams::default());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity_predict() {
        let (rows, labels) = separable(10);
        let t = DecisionTree::train(&rows, &labels, TrainParams::default());
        t.predict(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[], 0), 0.0);
    }
}
