//! CART decision trees (Gini impurity, axis-aligned threshold splits).
//!
//! Chosen for the same two reasons the paper gives (§4.4): the rules
//! export to portable if-else chains, and inference costs a handful of
//! compares — negligible against a kernel launch.

use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainParams {
    /// Maximum tree height. The paper prunes aggressively to fight CART's
    /// overfitting; 6 reproduces "as low as possible" shallow trees.
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
    /// Require each child to keep at least this many samples.
    pub min_samples_leaf: usize,
    /// Minimum Gini improvement to accept a split.
    pub min_gain: f64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams { max_depth: 6, min_samples_split: 8, min_samples_leaf: 2, min_gain: 1e-4 }
    }
}

/// Why [`DecisionTree::train`] rejected its input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrainError {
    /// The training set is empty.
    EmptyDataset,
    /// `rows` and `labels` differ in length.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A row's arity differs from the first row's.
    RaggedRows {
        /// Index of the offending row.
        row: usize,
        /// Arity of the first row.
        expected: usize,
        /// Arity of the offending row.
        got: usize,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
            TrainError::LengthMismatch { rows, labels } => {
                write!(f, "rows/labels length mismatch: {rows} rows, {labels} labels")
            }
            TrainError::RaggedRows { row, expected, got } => {
                write!(f, "ragged feature rows: row {row} has {got} features, expected {expected}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// One tree node. Children are indices into the tree's node arena so the
/// whole model serializes flat.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub enum Node {
    /// Majority-class leaf.
    Leaf {
        /// Predicted class.
        class: usize,
        /// Training samples that reached the leaf (diagnostics).
        weight: usize,
    },
    /// `feature < threshold` goes left, else right.
    Split {
        /// Feature column index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Arena index of the `<` child.
        left: usize,
        /// Arena index of the `>=` child.
        right: usize,
    },
}

/// A trained classifier.
///
/// ```
/// use gswitch_ml::{DecisionTree, TrainParams};
/// // Learn "class = (x > 4)". (Default params refuse to split nodes
/// // with fewer than 8 samples.)
/// let rows: Vec<Vec<f64>> = (1..=8).map(|x| vec![x as f64]).collect();
/// let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
/// let tree = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
/// assert_eq!(tree.predict(&[1.5]), 0);
/// assert_eq!(tree.predict(&[7.5]), 1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
}

impl DecisionTree {
    /// Train on `rows` (each of equal length) with class `labels`.
    /// Malformed input — an empty set, mismatched lengths, ragged rows —
    /// is a [`TrainError`], never a panic: training data may come from a
    /// feature database on disk.
    pub fn train(
        rows: &[Vec<f64>],
        labels: &[usize],
        params: TrainParams,
    ) -> Result<Self, TrainError> {
        if rows.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        if rows.len() != labels.len() {
            return Err(TrainError::LengthMismatch { rows: rows.len(), labels: labels.len() });
        }
        let n_features = rows[0].len();
        if let Some((i, r)) = rows.iter().enumerate().find(|(_, r)| r.len() != n_features) {
            return Err(TrainError::RaggedRows { row: i, expected: n_features, got: r.len() });
        }
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;

        let mut tree = DecisionTree { nodes: Vec::new(), n_features, n_classes };
        let mut index: Vec<u32> = (0..rows.len() as u32).collect();
        tree.build(rows, labels, &mut index, 0, &params);
        Ok(tree)
    }

    /// Recursive node construction over `index` (the sample subset);
    /// returns the arena index of the built node.
    fn build(
        &mut self,
        rows: &[Vec<f64>],
        labels: &[usize],
        index: &mut [u32],
        depth: usize,
        params: &TrainParams,
    ) -> usize {
        let counts = self.class_counts(labels, index);
        let majority = argmax(&counts);
        let node_gini = gini(&counts, index.len());

        let stop =
            depth >= params.max_depth || index.len() < params.min_samples_split || node_gini == 0.0;
        if !stop {
            if let Some((feature, threshold, gain)) =
                best_split(rows, labels, index, self.n_classes, params.min_samples_leaf)
            {
                if gain >= params.min_gain {
                    // Partition the index in place by the split predicate.
                    let mid = partition(rows, index, feature, threshold);
                    // Defensive: a degenerate split keeps this a leaf.
                    if mid > 0 && mid < index.len() {
                        let slot = self.nodes.len();
                        self.nodes.push(Node::Leaf { class: majority, weight: index.len() });
                        let (l, r) = index.split_at_mut(mid);
                        let left = self.build(rows, labels, l, depth + 1, params);
                        let right = self.build(rows, labels, r, depth + 1, params);
                        self.nodes[slot] = Node::Split { feature, threshold, left, right };
                        return slot;
                    }
                }
            }
        }
        self.nodes.push(Node::Leaf { class: majority, weight: index.len() });
        self.nodes.len() - 1
    }

    fn class_counts(&self, labels: &[usize], index: &[u32]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &i in index {
            counts[labels[i as usize]] += 1;
        }
        counts
    }

    /// Predict the class of one feature row.
    ///
    /// A row shorter than the tree's arity cannot answer every split:
    /// the walk stops at the first split whose feature is missing and
    /// returns that subtree's majority class. Extra columns are
    /// ignored. The walk is bounded, so even a structurally corrupt
    /// tree (one that skipped [`validate`](Self::validate)) returns a
    /// class rather than hanging or panicking.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut at = 0usize;
        for _ in 0..=self.nodes.len() {
            match self.nodes.get(at) {
                None => return 0,
                Some(Node::Leaf { class, .. }) => return *class,
                Some(Node::Split { feature, threshold, left, right }) => match row.get(*feature) {
                    Some(x) => at = if *x < *threshold { *left } else { *right },
                    None => return self.subtree_majority(at),
                },
            }
        }
        0
    }

    /// Majority class of the training samples under node `at`, by leaf
    /// weight. Bounded like `predict` so corrupt trees cannot hang it.
    fn subtree_majority(&self, at: usize) -> usize {
        let mut counts = vec![0usize; self.n_classes.max(1)];
        let mut stack = vec![at];
        for _ in 0..self.nodes.len() {
            let Some(i) = stack.pop() else { break };
            match self.nodes.get(i) {
                None => {}
                Some(Node::Leaf { class, weight }) => {
                    if let Some(c) = counts.get_mut(*class) {
                        *c += (*weight).max(1);
                    }
                }
                Some(Node::Split { left, right, .. }) => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        argmax(&counts)
    }

    /// Structural validation for trees that arrived from outside
    /// `train` (a model file): child indices in range, every node
    /// reachable exactly once from the root (acyclic, no sharing),
    /// finite thresholds, split features within arity, leaf classes
    /// below `n_classes`, and depth at most 64.
    pub fn validate(&self) -> Result<(), String> {
        const MAX_DEPTH: usize = 64;
        if self.nodes.is_empty() {
            return Err("tree has no nodes".into());
        }
        if self.n_classes == 0 {
            return Err("tree declares zero classes".into());
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![(0usize, 0usize)];
        let mut seen = 0usize;
        while let Some((at, depth)) = stack.pop() {
            if at >= self.nodes.len() {
                return Err(format!("child index {at} out of range ({} nodes)", self.nodes.len()));
            }
            if visited[at] {
                return Err(format!("node {at} is reachable twice (cycle or shared subtree)"));
            }
            visited[at] = true;
            seen += 1;
            if depth > MAX_DEPTH {
                return Err(format!("tree depth exceeds bound {MAX_DEPTH}"));
            }
            match &self.nodes[at] {
                Node::Leaf { class, .. } => {
                    if *class >= self.n_classes {
                        return Err(format!(
                            "leaf class {class} out of range (n_classes = {})",
                            self.n_classes
                        ));
                    }
                }
                Node::Split { feature, threshold, left, right } => {
                    if *feature >= self.n_features {
                        return Err(format!(
                            "split feature {feature} out of range (n_features = {})",
                            self.n_features
                        ));
                    }
                    if !threshold.is_finite() {
                        return Err(format!("non-finite split threshold {threshold}"));
                    }
                    stack.push((*left, depth + 1));
                    stack.push((*right, depth + 1));
                }
            }
        }
        if seen != self.nodes.len() {
            return Err(format!(
                "{} of {} nodes unreachable from the root",
                self.nodes.len() - seen,
                self.nodes.len()
            ));
        }
        Ok(())
    }

    /// Fraction of `rows` predicted as their label.
    pub fn accuracy(&self, rows: &[Vec<f64>], labels: &[usize]) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        let hits = rows.iter().zip(labels).filter(|(r, &l)| self.predict(r) == l).count();
        hits as f64 / rows.len() as f64
    }

    /// Height of the tree (a single leaf has height 0).
    pub fn height(&self) -> usize {
        fn h(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + h(nodes, *left).max(h(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            h(&self.nodes, 0)
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes (never produced by `train`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of feature columns expected by `predict`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes seen at training time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The node arena, root at index 0. Read-only: external passes
    /// (e.g. the static analyzer's model-soundness checks) walk the
    /// tree without being able to break the arena invariants.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Render the tree as portable if-else rules, naming features with
    /// `feature_names` and classes with `class_names` — the paper's
    /// "convert the resulting rules to if-else sentences".
    pub fn to_rules(&self, feature_names: &[&str], class_names: &[&str]) -> String {
        let mut out = String::new();
        self.rule(0, 0, feature_names, class_names, &mut out);
        out
    }

    fn rule(&self, at: usize, indent: usize, fnames: &[&str], cnames: &[&str], out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(indent);
        match &self.nodes[at] {
            Node::Leaf { class, weight } => {
                let name = cnames.get(*class).copied().unwrap_or("?");
                let _ = writeln!(out, "{pad}choose {name};  // {weight} samples");
            }
            Node::Split { feature, threshold, left, right } => {
                let name = fnames.get(*feature).copied().unwrap_or("?");
                let _ = writeln!(out, "{pad}if ({name} < {threshold:.6}) {{");
                self.rule(*left, indent + 1, fnames, cnames, out);
                let _ = writeln!(out, "{pad}}} else {{");
                self.rule(*right, indent + 1, fnames, cnames, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("tree serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Gini impurity of a class-count vector over `n` samples.
fn gini(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

fn argmax(counts: &[usize]) -> usize {
    counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i).unwrap_or(0)
}

/// Exhaustive best split over features × thresholds: sort the subset by
/// each feature and sweep, maintaining incremental class counts.
/// Returns (feature, threshold, gini_gain).
fn best_split(
    rows: &[Vec<f64>],
    labels: &[usize],
    index: &[u32],
    n_classes: usize,
    min_leaf: usize,
) -> Option<(usize, f64, f64)> {
    let n = index.len();
    let mut total = vec![0usize; n_classes];
    for &i in index {
        total[labels[i as usize]] += 1;
    }
    let parent = gini(&total, n);
    let n_features = rows[0].len();

    let mut best: Option<(usize, f64, f64)> = None;
    let mut sorted: Vec<u32> = index.to_vec();
    #[allow(clippy::needless_range_loop)] // u/f index several arrays
    for f in 0..n_features {
        sorted.sort_unstable_by(|&a, &b| {
            rows[a as usize][f]
                .partial_cmp(&rows[b as usize][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left = vec![0usize; n_classes];
        for k in 1..n {
            let prev = sorted[k - 1] as usize;
            left[labels[prev]] += 1;
            let (a, b) = (rows[prev][f], rows[sorted[k] as usize][f]);
            if a == b {
                continue; // no threshold separates equal values
            }
            if k < min_leaf || n - k < min_leaf {
                continue;
            }
            let mut right = vec![0usize; n_classes];
            for c in 0..n_classes {
                right[c] = total[c] - left[c];
            }
            let w = k as f64 / n as f64;
            let child = w * gini(&left, k) + (1.0 - w) * gini(&right, n - k);
            let gain = parent - child;
            let threshold = 0.5 * (a + b);
            if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 0.0) {
                best = Some((f, threshold, gain));
            }
        }
    }
    best
}

/// In-place stable partition of `index` by `rows[i][feature] < threshold`;
/// returns the size of the left side.
fn partition(rows: &[Vec<f64>], index: &mut [u32], feature: usize, threshold: f64) -> usize {
    let mut left: Vec<u32> = Vec::with_capacity(index.len());
    let mut right: Vec<u32> = Vec::with_capacity(index.len());
    for &i in index.iter() {
        if rows[i as usize][feature] < threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    let mid = left.len();
    index[..mid].copy_from_slice(&left);
    index[mid..].copy_from_slice(&right);
    mid
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable 2-D data: class = x0 > 0.5.
    fn separable(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![i as f64 / n as f64, (i * 7 % 13) as f64]).collect();
        let labels = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        (rows, labels)
    }

    #[test]
    fn learns_separable_data_perfectly() {
        let (rows, labels) = separable(200);
        let t = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
        assert_eq!(t.accuracy(&rows, &labels), 1.0);
        assert!(t.height() <= 2, "height {}", t.height());
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![1, 1, 1];
        let t = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.predict(&[9.0]), 1);
    }

    #[test]
    fn depth_cap_respected() {
        // XOR-ish checkerboard needs depth; cap at 2 and verify.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                rows.push(vec![i as f64, j as f64]);
                labels.push(((i / 4) + (j / 4)) % 2);
            }
        }
        let t =
            DecisionTree::train(&rows, &labels, TrainParams { max_depth: 2, ..Default::default() })
                .unwrap();
        assert!(t.height() <= 2);
    }

    #[test]
    fn three_class_problem() {
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..300).map(|i| i / 100).collect();
        let t = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
        assert_eq!(t.n_classes(), 3);
        assert_eq!(t.predict(&[50.0]), 0);
        assert_eq!(t.predict(&[150.0]), 1);
        assert_eq!(t.predict(&[250.0]), 2);
    }

    #[test]
    fn min_leaf_blocks_tiny_splits() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![0, 1, 1, 1];
        let t = DecisionTree::train(
            &rows,
            &labels,
            TrainParams { min_samples_leaf: 2, min_samples_split: 2, ..Default::default() },
        )
        .unwrap();
        // Splitting off the single 0-label sample is forbidden; the next
        // best legal split (1 vs rest at 1.5) may still happen, but no
        // leaf may hold fewer than 2 samples.
        fn check(t: &DecisionTree, at: usize) {
            match &t.nodes[at] {
                Node::Leaf { weight, .. } => assert!(*weight >= 2),
                Node::Split { left, right, .. } => {
                    check(t, *left);
                    check(t, *right);
                }
            }
        }
        check(&t, 0);
    }

    #[test]
    fn rules_render() {
        let (rows, labels) = separable(50);
        let t = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
        let rules = t.to_rules(&["x", "noise"], &["push", "pull"]);
        assert!(rules.contains("if (x <"), "{rules}");
        assert!(rules.contains("choose pull"));
        assert!(rules.contains("choose push"));
    }

    #[test]
    fn json_roundtrip() {
        let (rows, labels) = separable(64);
        let t = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
        let t2 = DecisionTree::from_json(&t.to_json()).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.predict(&[0.9, 0.0]), 1);
    }

    #[test]
    fn train_rejects_malformed_input_without_panicking() {
        assert_eq!(
            DecisionTree::train(&[], &[], TrainParams::default()),
            Err(TrainError::EmptyDataset)
        );
        let rows = vec![vec![1.0], vec![2.0]];
        assert_eq!(
            DecisionTree::train(&rows, &[0], TrainParams::default()),
            Err(TrainError::LengthMismatch { rows: 2, labels: 1 })
        );
        let ragged = vec![vec![1.0], vec![2.0, 3.0]];
        assert_eq!(
            DecisionTree::train(&ragged, &[0, 1], TrainParams::default()),
            Err(TrainError::RaggedRows { row: 1, expected: 1, got: 2 })
        );
        // Errors render a useful message.
        assert!(TrainError::EmptyDataset.to_string().contains("empty"));
    }

    #[test]
    fn short_row_predicts_majority_not_panic() {
        let (rows, labels) = separable(100);
        let t = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
        assert!(t.height() >= 1, "need a split for this test to bite");
        // An empty row cannot answer the root split: the fallback is the
        // root's majority class, which must be one of the two classes.
        let c = t.predict(&[]);
        assert!(c < t.n_classes());
        // Extra columns are ignored.
        assert_eq!(t.predict(&[0.9, 0.0, 42.0, 42.0]), 1);
    }

    #[test]
    fn validate_accepts_trained_trees() {
        let (rows, labels) = separable(100);
        let t = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();
        t.validate().unwrap();
    }

    #[test]
    fn validate_rejects_corrupt_trees() {
        let (rows, labels) = separable(100);
        let good = DecisionTree::train(&rows, &labels, TrainParams::default()).unwrap();

        // Child index out of range.
        let mut bad = good.clone();
        if let Node::Split { right, .. } = &mut bad.nodes[0] {
            *right = 999;
        }
        assert!(bad.validate().unwrap_err().contains("out of range"));

        // Cycle: the root is its own child.
        let mut bad = good.clone();
        if let Node::Split { left, .. } = &mut bad.nodes[0] {
            *left = 0;
        }
        assert!(bad.validate().is_err());
        // And predict on it still terminates.
        let _ = bad.predict(&[0.1, 0.0]);

        // Non-finite threshold.
        let mut bad = good.clone();
        if let Node::Split { threshold, .. } = &mut bad.nodes[0] {
            *threshold = f64::NAN;
        }
        assert!(bad.validate().unwrap_err().contains("threshold"));

        // Leaf class out of range.
        let mut bad = good.clone();
        bad.n_classes = 1;
        assert!(bad.validate().is_err());

        // Empty arena.
        let empty = DecisionTree { nodes: Vec::new(), n_features: 1, n_classes: 2 };
        assert!(empty.validate().is_err());
        assert_eq!(empty.predict(&[1.0]), 0);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[], 0), 0.0);
    }
}
