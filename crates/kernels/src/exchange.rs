//! Inter-shard frontier-exchange accounting.
//!
//! When the graph is partitioned (`gswitch_graph::shard`), an Expand
//! that activates a *halo* vertex produces an activation record that
//! must be routed to the owning shard before the next super-step. This
//! module is the cost-accounting side of that exchange: it counts the
//! records a super-step produced, applies the duplicate-merge policy
//! (`EdgeApp::DUP_TOLERANT` decides whether duplicates may ride along
//! or must be merged before routing), and converts the result into the
//! bytes the interconnect actually moves — which
//! `gswitch_simt::DeviceSpec::exchange_time_ms` then prices.

/// Exchange-volume profile of one sharded super-step (or an aggregate
/// over a run — the fields add).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeProfile {
    /// Halo-activation records Expand produced (every successful or
    /// attempted remote update counts — this is the raw fan-out).
    pub records: u64,
    /// Distinct halo vertices touched (the post-merge lower bound).
    pub distinct: u64,
    /// Records actually routed after the duplicate policy: all of them
    /// for a duplicate-tolerant app (merging costs more than it saves,
    /// the owner's `comp_atomic` is idempotent/monotonic), the distinct
    /// set otherwise (the owner must see each vertex exactly once).
    pub routed: u64,
    /// Payload bytes per record (the app's message size).
    pub payload_bytes: u32,
}

impl ExchangeProfile {
    /// Bytes of the vertex id in every routed record.
    pub const ID_BYTES: u32 = 4;

    /// Build a profile from raw counts under an app's duplicate policy.
    pub fn for_app(records: u64, distinct: u64, dup_tolerant: bool, payload_bytes: u32) -> Self {
        ExchangeProfile {
            records,
            distinct,
            routed: if dup_tolerant { records } else { distinct },
            payload_bytes,
        }
    }

    /// Bytes this exchange moves over the interconnect: each routed
    /// record carries a global vertex id plus the app's message payload.
    pub fn bytes(&self) -> u64 {
        self.routed * (Self::ID_BYTES + self.payload_bytes) as u64
    }

    /// Duplicate records the merge policy removed before routing.
    pub fn merged(&self) -> u64 {
        self.records - self.routed
    }

    /// Fold another profile into this one (same payload size expected;
    /// the larger wins so aggregates stay conservative).
    pub fn absorb(&mut self, other: &ExchangeProfile) {
        self.records += other.records;
        self.distinct += other.distinct;
        self.routed += other.routed;
        self.payload_bytes = self.payload_bytes.max(other.payload_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dup_tolerant_routes_everything() {
        let p = ExchangeProfile::for_app(100, 40, true, 4);
        assert_eq!(p.routed, 100);
        assert_eq!(p.merged(), 0);
        assert_eq!(p.bytes(), 100 * 8);
    }

    #[test]
    fn dup_sensitive_merges_to_distinct() {
        let p = ExchangeProfile::for_app(100, 40, false, 8);
        assert_eq!(p.routed, 40);
        assert_eq!(p.merged(), 60);
        assert_eq!(p.bytes(), 40 * 12);
    }

    #[test]
    fn absorb_adds_counts() {
        let mut a = ExchangeProfile::for_app(10, 5, false, 4);
        a.absorb(&ExchangeProfile::for_app(20, 7, false, 4));
        assert_eq!(a.records, 30);
        assert_eq!(a.distinct, 12);
        assert_eq!(a.routed, 12);
    }

    #[test]
    fn empty_exchange_is_free() {
        let p = ExchangeProfile::default();
        assert_eq!(p.bytes(), 0);
        assert_eq!(p.merged(), 0);
    }
}
