//! Lock-free per-vertex storage.
//!
//! On the GPU these are plain device arrays hit with `atomicMin`,
//! `atomicAdd`, `atomicCAS`. On the CPU we mirror them with `AtomicU32` /
//! `AtomicU64` and bit-pattern encodings for floats. All operations use
//! `Relaxed` ordering: kernels only need per-location atomicity inside a
//! super-step, and the rayon join at the end of every kernel provides the
//! cross-thread happens-before the next step needs.

use gswitch_graph::VertexId;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

/// A scalar storable in an [`AtomicArray`].
pub trait Value: Copy + PartialEq + Send + Sync + 'static {
    /// The backing atomic bit width's unsigned integer type.
    type Bits: Copy;
    /// Encode to bits.
    fn to_bits_(self) -> u64;
    /// Decode from bits.
    fn from_bits_(bits: u64) -> Self;
    /// Total order used by `fetch_min`/`fetch_max` (IEEE semantics for
    /// floats on non-NaN data).
    fn lt(self, other: Self) -> bool;
    /// Addition used by `fetch_add`.
    fn add(self, other: Self) -> Self;
}

macro_rules! impl_value_int {
    ($t:ty) => {
        impl Value for $t {
            type Bits = u64;
            #[inline]
            fn to_bits_(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_bits_(bits: u64) -> Self {
                bits as $t
            }
            #[inline]
            fn lt(self, other: Self) -> bool {
                self < other
            }
            #[inline]
            fn add(self, other: Self) -> Self {
                self.wrapping_add(other)
            }
        }
    };
}
impl_value_int!(u32);
impl_value_int!(u64);

impl Value for f32 {
    type Bits = u64;
    #[inline]
    fn to_bits_(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits_(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
    #[inline]
    fn lt(self, other: Self) -> bool {
        self < other
    }
    #[inline]
    fn add(self, other: Self) -> Self {
        self + other
    }
}

impl Value for f64 {
    type Bits = u64;
    #[inline]
    fn to_bits_(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits_(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    #[inline]
    fn lt(self, other: Self) -> bool {
        self < other
    }
    #[inline]
    fn add(self, other: Self) -> Self {
        self + other
    }
}

/// Fixed-size array of atomically updatable values, indexed by vertex.
pub struct AtomicArray<T: Value> {
    cells: Box<[AtomicU64]>,
    _t: std::marker::PhantomData<T>,
}

impl<T: Value> AtomicArray<T> {
    /// An array of `n` copies of `init`.
    pub fn filled(n: usize, init: T) -> Self {
        let bits = init.to_bits_();
        AtomicArray {
            cells: (0..n).map(|_| AtomicU64::new(bits)).collect(),
            _t: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Read element `v`.
    #[inline]
    pub fn load(&self, v: VertexId) -> T {
        T::from_bits_(self.cells[v as usize].load(Relaxed))
    }

    /// Write element `v`.
    #[inline]
    pub fn store(&self, v: VertexId, val: T) {
        self.cells[v as usize].store(val.to_bits_(), Relaxed);
    }

    /// Unconditional atomic exchange; returns the previous value.
    #[inline]
    pub fn swap(&self, v: VertexId, val: T) -> T {
        T::from_bits_(self.cells[v as usize].swap(val.to_bits_(), Relaxed))
    }

    /// Atomic min by `Value::lt`; returns the *previous* value (so
    /// `prev.lt(msg) == false && msg.lt(prev)` means we improved it).
    #[inline]
    pub fn fetch_min(&self, v: VertexId, val: T) -> T {
        let cell = &self.cells[v as usize];
        let mut cur = cell.load(Relaxed);
        loop {
            let cur_v = T::from_bits_(cur);
            if !val.lt(cur_v) {
                return cur_v;
            }
            match cell.compare_exchange_weak(cur, val.to_bits_(), Relaxed, Relaxed) {
                Ok(_) => return cur_v,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: VertexId, val: T) -> T {
        let cell = &self.cells[v as usize];
        let mut cur = cell.load(Relaxed);
        loop {
            let next = T::from_bits_(cur).add(val);
            match cell.compare_exchange_weak(cur, next.to_bits_(), Relaxed, Relaxed) {
                Ok(_) => return T::from_bits_(cur),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Compare-and-set: store `new` iff the current value equals
    /// `expected`; returns success.
    #[inline]
    pub fn compare_set(&self, v: VertexId, expected: T, new: T) -> bool {
        self.cells[v as usize]
            .compare_exchange(expected.to_bits_(), new.to_bits_(), Relaxed, Relaxed)
            .is_ok()
    }

    /// Snapshot into a plain vector (host-side readback).
    pub fn to_vec(&self) -> Vec<T> {
        self.cells.iter().map(|c| T::from_bits_(c.load(Relaxed))).collect()
    }

    /// Overwrite every element with `val`.
    pub fn fill(&self, val: T) {
        let bits = val.to_bits_();
        for c in self.cells.iter() {
            c.store(bits, Relaxed);
        }
    }
}

impl<T: Value> std::fmt::Debug for AtomicArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicArray(len={})", self.len())
    }
}

/// Concurrent bitset over vertices: the activation marker the kernels use
/// for duplicate detection, and the storage behind the Bitmap frontier.
pub struct AtomicBitSet {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl AtomicBitSet {
    /// All-zero bitset over `n` bits.
    pub fn new(n: usize) -> Self {
        AtomicBitSet { words: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(), len: n }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `v`; returns `true` when this call flipped it (i.e. `v` was
    /// not already set) — the duplicate detector.
    #[inline]
    pub fn set(&self, v: VertexId) -> bool {
        let (w, b) = (v as usize / 64, v as usize % 64);
        let prev = self.words[w].fetch_or(1 << b, Relaxed);
        prev & (1 << b) == 0
    }

    /// Clear bit `v`; returns `true` when this call flipped it.
    #[inline]
    pub fn unset(&self, v: VertexId) -> bool {
        let (w, b) = (v as usize / 64, v as usize % 64);
        let prev = self.words[w].fetch_and(!(1 << b), Relaxed);
        prev & (1 << b) != 0
    }

    /// Test bit `v`.
    #[inline]
    pub fn get(&self, v: VertexId) -> bool {
        let (w, b) = (v as usize / 64, v as usize % 64);
        self.words[w].load(Relaxed) & (1 << b) != 0
    }

    /// Clear all bits (sequential; called between iterations).
    pub fn clear(&self) {
        for w in self.words.iter() {
            w.store(0, Relaxed);
        }
    }

    /// Population count.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.load(Relaxed).count_ones() as usize).sum()
    }

    /// Whether any bit is set — stops at the first nonzero word, unlike
    /// [`count`](Self::count) which always sweeps every word. This is the
    /// BSP termination probe: on a live frontier the answer is almost
    /// always in the first few words.
    pub fn any(&self) -> bool {
        self.words.iter().any(|w| w.load(Relaxed) != 0)
    }

    /// Number of backing 64-bit words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Load backing word `w` (bits `64*w..64*w+64`).
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w].load(Relaxed)
    }

    /// Software-prefetch hint for the word holding bit `v` (no-op off
    /// x86_64). Purely a cache hint: never reads the bit.
    #[inline(always)]
    pub fn prefetch(&self, v: VertexId) {
        #[cfg(target_arch = "x86_64")]
        {
            let w = v as usize / 64;
            if w < self.words.len() {
                // SAFETY: w is in bounds, so the pointer is valid;
                // PREFETCHT0 never faults and performs no memory access.
                unsafe {
                    std::arch::x86_64::_mm_prefetch(
                        self.words.as_ptr().add(w) as *const i8,
                        std::arch::x86_64::_MM_HINT_T0,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = v;
    }

    /// Collect the set bits in ascending order.
    pub fn to_sorted_vec(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.count());
        for (wi, w) in self.words.iter().enumerate() {
            let mut bits = w.load(Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((wi * 64) as VertexId + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

impl std::fmt::Debug for AtomicBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBitSet(len={}, set={})", self.len, self.count())
    }
}

/// A plain 32-bit atomic counter for queue append cursors.
pub type Cursor = AtomicU32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_min_and_add() {
        let a = AtomicArray::<u32>::filled(3, 100);
        assert_eq!(a.fetch_min(0, 40), 100);
        assert_eq!(a.load(0), 40);
        assert_eq!(a.fetch_min(0, 60), 40); // no improvement
        assert_eq!(a.load(0), 40);
        assert_eq!(a.fetch_add(1, 5), 100);
        assert_eq!(a.load(1), 105);
    }

    #[test]
    fn f32_add_and_min() {
        let a = AtomicArray::<f32>::filled(2, 1.5);
        a.fetch_add(0, 2.25);
        assert_eq!(a.load(0), 3.75);
        a.fetch_min(1, 0.5);
        assert_eq!(a.load(1), 0.5);
    }

    #[test]
    fn f64_swap_roundtrip() {
        let a = AtomicArray::<f64>::filled(1, std::f64::consts::PI);
        let old = a.swap(0, 2.0);
        assert_eq!(old, std::f64::consts::PI);
        assert_eq!(a.load(0), 2.0);
    }

    #[test]
    fn compare_set_success_and_failure() {
        let a = AtomicArray::<u32>::filled(1, 7);
        assert!(a.compare_set(0, 7, 9));
        assert!(!a.compare_set(0, 7, 11));
        assert_eq!(a.load(0), 9);
    }

    #[test]
    fn concurrent_min_is_exact() {
        let a = AtomicArray::<u32>::filled(1, u32::MAX);
        std::thread::scope(|s| {
            for t in 0..8 {
                let a = &a;
                s.spawn(move || {
                    for i in 0..1000u32 {
                        a.fetch_min(0, i * 8 + t);
                    }
                });
            }
        });
        assert_eq!(a.load(0), 0);
    }

    #[test]
    fn concurrent_add_conserves_sum() {
        let a = AtomicArray::<f64>::filled(1, 0.0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let a = &a;
                s.spawn(move || {
                    for _ in 0..1000 {
                        a.fetch_add(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(a.load(0), 8000.0);
    }

    #[test]
    fn any_early_exit_agrees_with_count() {
        let b = AtomicBitSet::new(1000);
        assert!(!b.any());
        assert_eq!(b.count(), 0);
        b.set(999); // last word: the worst case for the early exit
        assert!(b.any());
        b.unset(999);
        assert!(!b.any());
        b.set(0);
        assert!(b.any());
        assert_eq!(b.word(0), 1);
        assert_eq!(b.num_words(), 1000usize.div_ceil(64));
        b.prefetch(0);
        b.prefetch(999_999); // out of range: no-op
    }

    #[test]
    fn bitset_set_get_dup() {
        let b = AtomicBitSet::new(130);
        assert!(b.set(0));
        assert!(b.set(64));
        assert!(b.set(129));
        assert!(!b.set(64), "second set is a duplicate");
        assert!(b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count(), 3);
        assert_eq!(b.to_sorted_vec(), vec![0, 64, 129]);
        b.clear();
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn to_vec_snapshot() {
        let a = AtomicArray::<u64>::filled(4, 9);
        a.store(2, 1);
        assert_eq!(a.to_vec(), vec![9, 9, 1, 9]);
        a.fill(0);
        assert_eq!(a.to_vec(), vec![0, 0, 0, 0]);
    }
}
