//! Active-set data structures — Pattern 2 (Fig. 4).
//!
//! The semantic content of all three formats is the same vertex set; they
//! differ in generation cost and in how the Expand step walks them:
//!
//! * **Bitmap** — no generation scan; Expand visits *all* vertices and
//!   idles on unset bits.
//! * **Unsorted queue** — warp-aggregated atomic append, coalesced writes,
//!   cheap generation; Expand visits exactly the entries.
//! * **Sorted queue** — device-wide prefix scan (expensive generation),
//!   entries in ascending vertex order so Expand's CSR row reads become
//!   contiguous (locality discount).
//!
//! A fused Expand (P5) emits a **raw queue**: an unsorted queue that may
//! contain duplicates, which the next Expand simply reprocesses.

use crate::atomics::AtomicBitSet;
use crate::pattern::AsFormat;
use gswitch_graph::VertexId;

/// A materialized workload set for one iteration.
#[derive(Debug)]
pub enum Frontier {
    /// One bit per vertex; `Expand` scans all `n` slots.
    Bitmap(AtomicBitSet),
    /// Compact queue, unspecified order, no duplicates.
    UnsortedQueue(Vec<VertexId>),
    /// Compact queue in ascending vertex order, no duplicates.
    SortedQueue(Vec<VertexId>),
    /// Output of a fused Expand: compact queue, unspecified order, *may
    /// contain duplicates*.
    RawQueue(Vec<VertexId>),
}

impl Frontier {
    /// An empty frontier of the given format over `n` vertices.
    pub fn empty(format: AsFormat, n: usize) -> Self {
        match format {
            AsFormat::Bitmap => Frontier::Bitmap(AtomicBitSet::new(n)),
            AsFormat::UnsortedQueue => Frontier::UnsortedQueue(Vec::new()),
            AsFormat::SortedQueue => Frontier::SortedQueue(Vec::new()),
        }
    }

    /// Number of workload entries (bitmap: set bits; queues: length,
    /// duplicates included for a raw queue).
    pub fn len(&self) -> usize {
        match self {
            Frontier::Bitmap(b) => b.count(),
            Frontier::UnsortedQueue(q) | Frontier::SortedQueue(q) | Frontier::RawQueue(q) => {
                q.len()
            }
        }
    }

    /// True when no work remains — the BSP termination test. For a
    /// bitmap this stops at the first nonzero word
    /// ([`AtomicBitSet::any`]) instead of popcounting all of them.
    pub fn is_empty(&self) -> bool {
        match self {
            Frontier::Bitmap(b) => !b.any(),
            Frontier::UnsortedQueue(q) | Frontier::SortedQueue(q) | Frontier::RawQueue(q) => {
                q.is_empty()
            }
        }
    }

    /// The P2 format this frontier realises (a raw queue behaves as an
    /// unsorted queue).
    pub fn format(&self) -> AsFormat {
        match self {
            Frontier::Bitmap(_) => AsFormat::Bitmap,
            Frontier::UnsortedQueue(_) | Frontier::RawQueue(_) => AsFormat::UnsortedQueue,
            Frontier::SortedQueue(_) => AsFormat::SortedQueue,
        }
    }

    /// Whether Expand may rely on ascending-vertex locality.
    pub fn is_sorted(&self) -> bool {
        matches!(self, Frontier::SortedQueue(_))
    }

    /// Whether entries may repeat (fused output only).
    pub fn may_have_duplicates(&self) -> bool {
        matches!(self, Frontier::RawQueue(_))
    }

    /// View queue entries; `None` for a bitmap.
    pub fn as_queue(&self) -> Option<&[VertexId]> {
        match self {
            Frontier::Bitmap(_) => None,
            Frontier::UnsortedQueue(q) | Frontier::SortedQueue(q) | Frontier::RawQueue(q) => {
                Some(q)
            }
        }
    }

    /// Materialize the entry list regardless of format (bitmap: ascending
    /// order; raw queue: duplicates preserved). Test/diagnostic helper.
    pub fn to_vec(&self) -> Vec<VertexId> {
        match self {
            Frontier::Bitmap(b) => b.to_sorted_vec(),
            Frontier::UnsortedQueue(q) | Frontier::SortedQueue(q) | Frontier::RawQueue(q) => {
                q.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_constructors() {
        for fmt in [AsFormat::Bitmap, AsFormat::UnsortedQueue, AsFormat::SortedQueue] {
            let f = Frontier::empty(fmt, 100);
            assert!(f.is_empty());
            assert_eq!(f.len(), 0);
            assert_eq!(f.format(), fmt);
        }
    }

    #[test]
    fn bitmap_len_counts_bits() {
        let b = AtomicBitSet::new(100);
        b.set(3);
        b.set(99);
        let f = Frontier::Bitmap(b);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert_eq!(f.to_vec(), vec![3, 99]);
        assert!(f.as_queue().is_none());
    }

    #[test]
    fn raw_queue_reports_duplicates_and_unsorted_format() {
        let f = Frontier::RawQueue(vec![5, 5, 2]);
        assert!(f.may_have_duplicates());
        assert_eq!(f.format(), AsFormat::UnsortedQueue);
        assert_eq!(f.len(), 3);
        assert_eq!(f.as_queue().unwrap(), &[5, 5, 2]);
    }

    #[test]
    fn sorted_flag() {
        assert!(Frontier::SortedQueue(vec![1, 2]).is_sorted());
        assert!(!Frontier::UnsortedQueue(vec![2, 1]).is_sorted());
        assert!(!Frontier::Bitmap(AtomicBitSet::new(4)).is_sorted());
    }
}
