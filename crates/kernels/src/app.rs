//! The user-facing 4-function programming API (paper §4.2, Fig. 11).
//!
//! An application implements [`EdgeApp`] and stores its per-vertex data in
//! the lock-free arrays of [`crate::atomics`]; the kernels drive the
//! callbacks. All tuning details (direction, format, load balance,
//! stepping, fusion) are opaque to the app — exactly the paper's promise.

use gswitch_graph::{VertexId, Weight};

/// Per-iteration vertex classification returned by `filter`.
///
/// `Active` vertices form the push workload and send messages; `Inactive`
/// vertices are the default pull receivers; `Fixed` vertices are converged
/// and touched by no kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Participates in this iteration's computation as a source.
    Active = 0,
    /// Not active; may receive updates (pull) and activate later.
    Inactive = 1,
    /// Converged; never touched again.
    Fixed = 2,
}

/// A graph application in the GSWITCH abstraction.
///
/// The engine guarantees BSP semantics: within one super-step, `filter` /
/// `prepare` run first over all vertices (the Filter kernel), then `emit` +
/// `comp`/`comp_atomic` run over edges (the Expand kernel). App state must
/// use interior mutability ([`crate::atomics`]) because kernels share the
/// app across rayon workers.
pub trait EdgeApp: Sync {
    /// The message an active source sends along an edge (paper: `vmsg`).
    type Msg: Copy + Send;

    /// Classify `v` for the current iteration.
    fn filter(&self, v: VertexId) -> Status;

    /// Update the private data of an *active* vertex (the "Apply/Update"
    /// step the paper folds into Filter, §2.1). Runs exactly once per
    /// active vertex per super-step, before any `emit` of that step.
    fn prepare(&self, _v: VertexId) {}

    /// The message `u` sends over an edge of weight `w` (1 when the graph
    /// is unweighted).
    fn emit(&self, u: VertexId, w: Weight) -> Self::Msg;

    /// Combine `msg` into `dst` with atomic operations (push mode; many
    /// writers). Returns `true` when `dst`'s value changed (it becomes an
    /// activation candidate).
    fn comp_atomic(&self, dst: VertexId, msg: Self::Msg) -> bool;

    /// Combine `msg` into `dst` without atomics (pull mode; `dst` is owned
    /// by the calling lane). Returns `true` when the value changed.
    fn comp(&self, dst: VertexId, msg: Self::Msg) -> bool;

    /// Hook invoked once when a super-step begins, with its index
    /// (0-based). Apps tracking a level/iteration counter update it here.
    fn advance(&self, _iteration: u32) {}

    /// May a pull-mode scan of one destination stop at the first
    /// successful `comp`? True for level-synchronous traversal (BFS: any
    /// parent at the current level gives the same result); false for
    /// value-combining apps (SSSP min, PR sum).
    const PULL_EARLY_EXIT: bool = false;

    /// Whether duplicate frontier entries are harmless (idempotent /
    /// monotonic `comp`). Gates the P5 fused variant.
    const DUP_TOLERANT: bool = true;

    /// Whether `emit` consumes edge weights; when false the kernels skip
    /// the weight loads (and their simulated bytes).
    const NEEDS_WEIGHTS: bool = false;

    /// Whether the app maintains a priority threshold that the P4 stepping
    /// pattern should drive (`adjust_priority`). Only monotonic algorithms
    /// with deferred work (SSSP dynamic stepping) set this.
    const PRIORITY_DRIVEN: bool = false;

    /// Should a vertex with classification `status` receive messages in
    /// pull mode? Default: only `Inactive` (BFS-style: unvisited gather).
    /// Dense value-propagating apps (PR) override to include `Active`.
    fn pull_receives(status: Status) -> bool {
        matches!(status, Status::Inactive)
    }

    /// Adjust the priority threshold per the P4 stepping decision. Only
    /// priority-driven apps (SSSP dynamic stepping) implement this.
    fn adjust_priority(&self, _delta: crate::pattern::SteppingDelta) {}

    /// The engine found no active vertex. Return `true` after unlocking
    /// more work (e.g. a priority-driven SSSP advancing its threshold past
    /// the pending set) — the engine re-classifies; `false` means the
    /// algorithm has genuinely converged. Default: converged.
    fn rescue(&self) -> bool {
        false
    }

    /// Would a concurrent writer racing with this `msg` have enqueued a
    /// duplicate? On the GPU, two parents writing the *same* value to `dst`
    /// in one fused kernel both see their update "succeed" and both
    /// enqueue `dst`; our CPU atomics resolve the tie exactly, so the
    /// fused Expand asks this hook after a failed `comp_atomic` to decide
    /// whether the losing lane would have enqueued anyway. Default: no
    /// ties (apps that never fuse can ignore it). A duplicate-tolerant app
    /// should return `true` when `msg` equals `dst`'s current value.
    fn would_tie(&self, _dst: VertexId, _msg: Self::Msg) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomics::AtomicArray;

    /// Minimal test app: propagate the minimum seen value.
    struct MinApp {
        vals: AtomicArray<u32>,
    }

    impl EdgeApp for MinApp {
        type Msg = u32;
        fn filter(&self, v: VertexId) -> Status {
            if self.vals.load(v) == u32::MAX {
                Status::Inactive
            } else {
                Status::Active
            }
        }
        fn emit(&self, u: VertexId, _w: Weight) -> u32 {
            self.vals.load(u)
        }
        fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
            self.vals.fetch_min(dst, msg) > msg
        }
        fn comp(&self, dst: VertexId, msg: u32) -> bool {
            let old = self.vals.load(dst);
            if msg < old {
                self.vals.store(dst, msg);
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn default_trait_plumbing() {
        let app = MinApp { vals: AtomicArray::filled(4, u32::MAX) };
        app.vals.store(0, 3);
        assert_eq!(app.filter(0), Status::Active);
        assert_eq!(app.filter(1), Status::Inactive);
        assert!(app.comp_atomic(1, 7));
        assert!(!app.comp_atomic(1, 9));
        assert!(app.comp(2, 5));
        assert!(MinApp::pull_receives(Status::Inactive));
        assert!(!MinApp::pull_receives(Status::Active));
        // default hooks are no-ops
        app.prepare(0);
        app.advance(3);
        app.adjust_priority(crate::pattern::SteppingDelta::Increase);
    }
}
