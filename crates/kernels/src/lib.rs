//! The GSWITCH parameterized kernel library.
//!
//! The paper's back-end compiles the five algorithmic patterns into 12
//! standalone filter kernels and 144 expand variants (§4.5) as C++
//! templates. Here the same variant space is realised as Rust generics over
//! an [`EdgeApp`] (the 4-function user API of Fig. 11) running on the CPU
//! via rayon, with every variant exactly instrumented for the
//! `gswitch-simt` pricing model:
//!
//! * [`pattern`] — the candidate enums of the five patterns and the
//!   [`pattern::KernelConfig`] tuple the Selector chooses each iteration.
//! * [`app`] — the [`EdgeApp`] trait (`filter`/`emit`/`comp`/`comp_atomic`
//!   plus the `prepare` "Apply/Update" hook folded into Filter, §2.1).
//! * [`atomics`] — lock-free vertex-value arrays (`u32`/`u64`/`f32`/`f64`)
//!   and an atomic bitset, the building blocks every app stores its data in.
//! * [`bucket`] — degree-bucketed work partitioning: frontier degree
//!   prefix sums formed into small/warp/cta task blocks (the SpMSpV/SpMV
//!   load balancer), cacheable across super-steps for prefix-sum reuse.
//! * [`frontier`] — the P2 active-set formats (bitmap / unsorted queue /
//!   sorted queue) with their generation cost accounting (Fig. 4).
//! * [`filter`] — the Filter primitive: classify all vertices, update
//!   private data of actives, emit runtime characteristics, and build the
//!   workload frontier in the chosen format.
//! * [`expand()`](fn@expand) — the Expand primitive in push and pull
//!   modes with fused/standalone variants (P1, P5).
//! * [`lb`] — the P3 load-balancing strategies (TWC/WM/CM/STRICT of Fig. 6)
//!   as warp-task pricing over the measured per-vertex workload, including
//!   the `price_all` oracle entry point used for brute-force labelling.
//! * [`exchange`] — inter-shard frontier-exchange volume accounting for
//!   partitioned execution (duplicate-merge policy + routed-byte counts).

#![warn(missing_docs)]

pub mod app;
pub mod atomics;
pub mod bucket;
pub mod exchange;
pub mod expand;
pub mod filter;
pub mod frontier;
pub mod lb;
pub mod pattern;

pub use app::{EdgeApp, Status};
pub use bucket::{DegreeSource, WorkPlan};
pub use exchange::ExchangeProfile;
pub use expand::{expand, expand_planned, ExpandOutput};
pub use filter::{classify, materialize, ClassifyOutput, IterStats, WorkloadStats};
pub use frontier::Frontier;
pub use pattern::{AsFormat, Direction, Fusion, KernelConfig, LoadBalance, SteppingDelta};
