//! The Filter primitive, split into its two device passes:
//!
//! 1. [`classify`] — evaluate the app's `filter` predicate over all
//!    vertices, run the folded-in "Apply/Update" (`prepare`) on actives,
//!    and accumulate the runtime characteristics of Table 1 for *both*
//!    directions' prospective workloads. Its outputs feed the Inspector.
//! 2. [`materialize`] — after the Selector has fixed direction (P1) and
//!    active-set format (P2), build the workload frontier in that format,
//!    paying that format's generation cost (Fig. 4).
//!
//! Together they are the paper's Filter step; the engine sums both
//! profiles into the iteration's `t_f`.

use crate::app::{EdgeApp, Status};
use crate::atomics::AtomicBitSet;
use crate::frontier::Frontier;
use crate::pattern::{AsFormat, Direction};
use gswitch_graph::{Graph, VertexId};
use gswitch_simt::{DeviceSpec, KernelProfile, TaskStats};
use rayon::prelude::*;

/// Cycles a lane spends evaluating the filter predicate (a couple of
/// compares on already-loaded data).
const FILTER_PREDICATE_CYCLES: f64 = 6.0;

/// Parallel chunk size for classification.
const CHUNK: usize = 1 << 13;

/// Degree statistics of one prospective workload (Table 1: `cd`, `r_cd`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkloadStats {
    /// Workload entries (push: active vertices; pull: receivers).
    pub vertices: u64,
    /// Edges the workload would touch at most (push: out-edges of
    /// actives; pull: in-edges of receivers).
    pub edges: u64,
    /// Largest workload degree.
    pub max_degree: u32,
    /// Smallest workload degree.
    pub min_degree: u32,
}

impl WorkloadStats {
    /// Average workload degree (`cd`).
    pub fn avg_degree(&self) -> f64 {
        if self.vertices == 0 {
            0.0
        } else {
            self.edges as f64 / self.vertices as f64
        }
    }

    /// Relative workload degree range (`r_cd`).
    pub fn rel_range(&self) -> f64 {
        let avg = self.avg_degree();
        if avg == 0.0 {
            0.0
        } else {
            self.max_degree.saturating_sub(self.min_degree) as f64 / avg
        }
    }

    fn observe(&mut self, deg: u32) {
        self.vertices += 1;
        self.edges += deg as u64;
        self.max_degree = self.max_degree.max(deg);
        self.min_degree = self.min_degree.min(deg);
    }

    fn merge(&mut self, o: &WorkloadStats) {
        self.vertices += o.vertices;
        self.edges += o.edges;
        self.max_degree = self.max_degree.max(o.max_degree);
        self.min_degree = self.min_degree.min(o.min_degree);
    }

    fn finish(&mut self) {
        if self.min_degree == u32::MAX {
            self.min_degree = 0;
        }
    }
}

/// Runtime characteristics of one iteration (Table 1, middle block).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IterStats {
    /// Active vertices (V_a).
    pub v_active: u64,
    /// Inactive vertices (V_ia).
    pub v_inactive: u64,
    /// Fixed (converged) vertices.
    pub v_fixed: u64,
    /// Out-edges of active vertices (E_a).
    pub e_active: u64,
    /// Out-edges of inactive vertices (E_ia).
    pub e_inactive: u64,
    /// Push workload: active vertices with out-degrees.
    pub push: WorkloadStats,
    /// Pull workload: receiver vertices with in-degrees.
    pub pull: WorkloadStats,
}

impl IterStats {
    /// Total vertices classified.
    pub fn n(&self) -> u64 {
        self.v_active + self.v_inactive + self.v_fixed
    }

    /// The workload stats for a direction.
    pub fn workload(&self, d: Direction) -> &WorkloadStats {
        match d {
            Direction::Push => &self.push,
            Direction::Pull => &self.pull,
        }
    }
}

/// Result of [`classify`].
#[derive(Debug)]
pub struct ClassifyOutput {
    /// Per-vertex classification (`Status` as `u8`) — the snapshot pull
    /// kernels probe and `materialize` compacts.
    pub status: Vec<u8>,
    /// Runtime characteristics for the Inspector.
    pub stats: IterStats,
    /// Simulated cost of this pass.
    pub profile: KernelProfile,
}

/// Status byte decoding (`Status` is `repr(u8)`).
#[inline]
pub fn status_of(byte: u8) -> Status {
    match byte {
        0 => Status::Active,
        1 => Status::Inactive,
        _ => Status::Fixed,
    }
}

/// Classification pass: statuses, prepare, Table 1 runtime features.
pub fn classify<A: EdgeApp>(g: &Graph, app: &A, spec: &DeviceSpec) -> ClassifyOutput {
    let n = g.num_vertices();
    let out = g.out_csr();
    let incoming = g.in_csr();
    let mut status = vec![0u8; n];

    let fresh = || IterStats {
        push: WorkloadStats { min_degree: u32::MAX, ..Default::default() },
        pull: WorkloadStats { min_degree: u32::MAX, ..Default::default() },
        ..Default::default()
    };

    let partials: Vec<IterStats> = status
        .par_chunks_mut(CHUNK)
        .enumerate()
        .map(|(ci, chunk)| {
            let base = (ci * CHUNK) as VertexId;
            let mut s = fresh();
            for (i, slot) in chunk.iter_mut().enumerate() {
                let v = base + i as VertexId;
                let st = app.filter(v);
                *slot = st as u8;
                let out_deg = out.degree(v);
                match st {
                    Status::Active => {
                        app.prepare(v);
                        s.v_active += 1;
                        s.e_active += out_deg as u64;
                        s.push.observe(out_deg);
                    }
                    Status::Inactive => {
                        s.v_inactive += 1;
                        s.e_inactive += out_deg as u64;
                    }
                    Status::Fixed => s.v_fixed += 1,
                }
                if A::pull_receives(st) {
                    s.pull.observe(incoming.degree(v));
                }
            }
            s
        })
        .collect();

    let mut stats = fresh();
    for p in &partials {
        stats.v_active += p.v_active;
        stats.v_inactive += p.v_inactive;
        stats.v_fixed += p.v_fixed;
        stats.e_active += p.e_active;
        stats.e_inactive += p.e_inactive;
        stats.push.merge(&p.push);
        stats.pull.merge(&p.pull);
    }
    stats.push.finish();
    stats.pull.finish();

    // Price: one coalesced scan of vertex data + degrees, status write.
    let mut profile = KernelProfile::launch();
    let mut tasks = TaskStats::default();
    let warp = spec.warp_size as u64;
    for _ in 0..(n as u64).div_ceil(warp) {
        tasks.add_task(FILTER_PREDICATE_CYCLES + 2.0 * spec.coalesced_cycles);
    }
    profile.tasks = tasks;
    profile.bytes_read = 8 * n as u64; // vertex value + degree offsets
    profile.bytes_written = n as u64; // status byte
    ClassifyOutput { status, stats, profile }
}

/// Analytic cost of materializing a `w`-entry workload over `n` vertices
/// in `format` — what [`materialize`] charges, without building anything.
/// Used by the oracle to price unchosen formats.
pub fn materialize_cost(format: AsFormat, n: usize, w: u64, spec: &DeviceSpec) -> KernelProfile {
    let mut profile = KernelProfile::launch();
    profile.bytes_read = n as u64;
    match format {
        AsFormat::Bitmap => {
            profile.bytes_written += (n as u64).div_ceil(8);
        }
        AsFormat::UnsortedQueue => {
            profile.bytes_written += 4 * w;
            profile.atomics += w.div_ceil(spec.warp_size as u64);
        }
        AsFormat::SortedQueue => {
            // A device-wide prefix scan is its own kernel with real
            // memory traffic: read the flags/offsets, write the
            // intermediate sums, scatter the entries.
            profile.launches += 1;
            profile.scan_elems += n as u64;
            profile.bytes_read += 4 * n as u64;
            profile.bytes_written += 4 * n as u64 + 4 * w;
        }
    }
    profile
}

/// Materialization pass: compact the chosen workload out of the status
/// snapshot into the chosen P2 format, paying its generation cost.
pub fn materialize<A: EdgeApp>(
    g: &Graph,
    status: &[u8],
    direction: Direction,
    format: AsFormat,
    spec: &DeviceSpec,
) -> (Frontier, KernelProfile) {
    let n = g.num_vertices();
    let in_workload = |v: VertexId| -> bool {
        let st = status_of(status[v as usize]);
        match direction {
            Direction::Push => st == Status::Active,
            Direction::Pull => A::pull_receives(st),
        }
    };

    let (frontier, w) = match format {
        AsFormat::Bitmap => {
            let bits = AtomicBitSet::new(n);
            let count: u64 = (0..n)
                .into_par_iter()
                .filter(|&v| in_workload(v as VertexId))
                .map(|v| {
                    bits.set(v as VertexId);
                    1u64
                })
                .sum();
            (Frontier::Bitmap(bits), count)
        }
        fmt => {
            // Two-pass block compaction (the device's count → scan →
            // scatter): a parallel count per block, then one fill of a
            // single exactly-sized allocation, skipping empty blocks.
            // Block-order filling gives ascending vertex ids (the sorted
            // queue's promise; the unsorted queue holds the same entries
            // without the promise) with no per-block vector allocations.
            let counts: Vec<usize> = (0..n)
                .into_par_iter()
                .chunks(CHUNK)
                .map(|chunk| chunk.into_iter().filter(|&v| in_workload(v as VertexId)).count())
                .collect();
            let w: u64 = counts.iter().map(|&c| c as u64).sum();
            let mut q = Vec::with_capacity(w as usize);
            for (ci, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let block = ci * CHUNK..((ci + 1) * CHUNK).min(n);
                q.extend(block.map(|v| v as VertexId).filter(|&v| in_workload(v)));
            }
            let f = match fmt {
                AsFormat::SortedQueue => Frontier::SortedQueue(q),
                _ => Frontier::UnsortedQueue(q),
            };
            (f, w)
        }
    };
    (frontier, materialize_cost(format, n, w, spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomics::AtomicArray;
    use gswitch_graph::GraphBuilder;

    /// BFS-like test app over explicit levels.
    struct LevelApp {
        level: AtomicArray<u32>,
        current: u32,
    }

    impl EdgeApp for LevelApp {
        type Msg = u32;
        fn filter(&self, v: VertexId) -> Status {
            let l = self.level.load(v);
            if l == self.current {
                Status::Active
            } else if l == u32::MAX {
                Status::Inactive
            } else {
                Status::Fixed
            }
        }
        fn emit(&self, u: VertexId, _w: u32) -> u32 {
            self.level.load(u) + 1
        }
        fn comp_atomic(&self, dst: VertexId, msg: u32) -> bool {
            self.level.fetch_min(dst, msg) > msg
        }
        fn comp(&self, dst: VertexId, msg: u32) -> bool {
            if msg < self.level.load(dst) {
                self.level.store(dst, msg);
                true
            } else {
                false
            }
        }
    }

    fn setup() -> (Graph, LevelApp) {
        // Path 0-1-2-3 plus hub edges 1-{4,5}.
        let g = GraphBuilder::new(6).edges([(0, 1), (1, 2), (2, 3), (1, 4), (1, 5)]).build();
        let app = LevelApp { level: AtomicArray::filled(6, u32::MAX), current: 1 };
        app.level.store(0, 0);
        app.level.store(1, 1);
        (g, app)
    }

    #[test]
    fn classification_counts_both_workloads() {
        let (g, app) = setup();
        let co = classify(&g, &app, &DeviceSpec::k40m());
        assert_eq!(co.stats.v_active, 1); // vertex 1
        assert_eq!(co.stats.v_fixed, 1); // vertex 0
        assert_eq!(co.stats.v_inactive, 4);
        assert_eq!(co.stats.e_active, 4); // deg(1) = 4
        assert_eq!(co.stats.n(), 6);
        // Push workload = {1}, 4 out-edges.
        assert_eq!(co.stats.push.vertices, 1);
        assert_eq!(co.stats.push.edges, 4);
        // Pull workload = inactive {2,3,4,5} with in-degrees 2,1,1,1.
        assert_eq!(co.stats.pull.vertices, 4);
        assert_eq!(co.stats.pull.edges, 5);
        assert_eq!(co.stats.pull.max_degree, 2);
        assert_eq!(co.stats.pull.min_degree, 1);
        assert_eq!(status_of(co.status[0]), Status::Fixed);
        assert_eq!(status_of(co.status[1]), Status::Active);
        assert_eq!(status_of(co.status[2]), Status::Inactive);
    }

    #[test]
    fn materialize_push_and_pull() {
        let (g, app) = setup();
        let spec = DeviceSpec::k40m();
        let co = classify(&g, &app, &spec);
        let (fp, _) =
            materialize::<LevelApp>(&g, &co.status, Direction::Push, AsFormat::SortedQueue, &spec);
        assert_eq!(fp.to_vec(), vec![1]);
        let (fq, _) =
            materialize::<LevelApp>(&g, &co.status, Direction::Pull, AsFormat::SortedQueue, &spec);
        assert_eq!(fq.to_vec(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn bitmap_matches_queue_contents() {
        let (g, app) = setup();
        let spec = DeviceSpec::k40m();
        let co = classify(&g, &app, &spec);
        let (fb, _) =
            materialize::<LevelApp>(&g, &co.status, Direction::Push, AsFormat::Bitmap, &spec);
        let (fq, _) = materialize::<LevelApp>(
            &g,
            &co.status,
            Direction::Push,
            AsFormat::UnsortedQueue,
            &spec,
        );
        assert_eq!(fb.to_vec(), fq.to_vec());
        assert_eq!(fb.format(), AsFormat::Bitmap);
    }

    #[test]
    fn generation_costs_differ_by_format() {
        let (g, app) = setup();
        let spec = DeviceSpec::k40m();
        let co = classify(&g, &app, &spec);
        let (_, pb) =
            materialize::<LevelApp>(&g, &co.status, Direction::Push, AsFormat::Bitmap, &spec);
        let (_, pu) = materialize::<LevelApp>(
            &g,
            &co.status,
            Direction::Push,
            AsFormat::UnsortedQueue,
            &spec,
        );
        let (_, ps) =
            materialize::<LevelApp>(&g, &co.status, Direction::Push, AsFormat::SortedQueue, &spec);
        assert_eq!(pb.scan_elems, 0);
        assert_eq!(pb.atomics, 0);
        assert!(pu.atomics > 0);
        assert_eq!(ps.scan_elems, g.num_vertices() as u64);
    }

    #[test]
    fn workload_stats_derived_metrics() {
        let w = WorkloadStats { vertices: 4, edges: 12, max_degree: 6, min_degree: 1 };
        assert_eq!(w.avg_degree(), 3.0);
        assert!((w.rel_range() - 5.0 / 3.0).abs() < 1e-12);
        let empty = WorkloadStats::default();
        assert_eq!(empty.avg_degree(), 0.0);
        assert_eq!(empty.rel_range(), 0.0);
    }

    #[test]
    fn prepare_runs_once_per_active() {
        use std::sync::atomic::{AtomicU32, Ordering};
        struct CountApp {
            calls: AtomicU32,
        }
        impl EdgeApp for CountApp {
            type Msg = ();
            fn filter(&self, v: VertexId) -> Status {
                if v < 3 {
                    Status::Active
                } else {
                    Status::Inactive
                }
            }
            fn prepare(&self, _v: VertexId) {
                self.calls.fetch_add(1, Ordering::Relaxed);
            }
            fn emit(&self, _u: VertexId, _w: u32) {}
            fn comp_atomic(&self, _d: VertexId, _m: ()) -> bool {
                false
            }
            fn comp(&self, _d: VertexId, _m: ()) -> bool {
                false
            }
        }
        let g = GraphBuilder::new(8).edges([(0, 1)]).build();
        let app = CountApp { calls: AtomicU32::new(0) };
        classify(&g, &app, &DeviceSpec::p100());
        assert_eq!(app.calls.load(std::sync::atomic::Ordering::Relaxed), 3);
    }
}
