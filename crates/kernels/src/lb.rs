//! Load-balancing strategies — Pattern 3 (Fig. 6).
//!
//! The *semantics* of Expand are identical under every strategy (the same
//! edges get processed); what differs is how the workload's per-vertex edge
//! counts are packed into warp tasks, and therefore the lockstep waste,
//! search overheads, synchronization, and partitioning setup each strategy
//! pays. This module turns a measured per-slot `touched` vector into
//! [`TaskStats`] for any strategy — which also makes brute-force oracle
//! labelling cheap: one semantic traversal prices all strategies.

use crate::pattern::{Direction, LoadBalance};
use gswitch_simt::{DeviceSpec, TaskStats};
use rayon::prelude::*;

/// Per-edge cycle costs for the current direction/locality combination.
#[derive(Clone, Copy, Debug)]
pub struct EdgeCosts {
    /// Lane cycles to process one edge (neighbor read + vertex-data touch).
    pub lane: f64,
    /// Extra per-edge lane cycles for WM's log2(warp) binary search plus
    /// shared-memory staging.
    pub wm_extra: f64,
    /// Extra per-edge lane cycles for CM's log2(cta) search plus staging.
    pub cm_extra: f64,
    /// Extra per-edge lane cycles for STRICT's sorted-search bookkeeping.
    pub strict_extra: f64,
    /// Cycles burned by a lane assigned an empty (inactive) bitmap slot.
    pub idle: f64,
}

/// Cost table for one direction on one device. `sorted_locality` applies
/// the sorted-queue discount: ascending vertex order makes CSR row reads
/// contiguous, halving the neighbor-read component (Fig. 4's "potentially
/// contiguous memory access").
pub fn edge_costs(spec: &DeviceSpec, direction: Direction, sorted_locality: bool) -> EdgeCosts {
    let c = spec.coalesced_cycles;
    let random = c * spec.random_penalty;
    let read = if sorted_locality { c * 0.5 } else { c };
    let lane = match direction {
        // Push: coalesced neighbor-id read + random write to dst data
        // (the atomic itself is priced separately in the profile).
        Direction::Push => read + random,
        // Pull: coalesced source-id read + cached frontier-bit probe +
        // (on hit) random read of the source value. The hit cost is
        // averaged in: probes dominate, hits are rare after the first.
        Direction::Pull => read + 0.25 * random + c,
    };
    EdgeCosts {
        lane,
        wm_extra: 5.0 * c + 2.0 * spec.shared_cycles, // log2(32) search
        cm_extra: 8.0 * c + 2.0 * spec.shared_cycles, // log2(256) search
        strict_extra: 2.0 * c,
        idle: c,
    }
}

/// Priced warp tasks plus the strategy's side costs.
#[derive(Clone, Copy, Debug, Default)]
pub struct LbPrice {
    /// Warp-task cycle statistics.
    pub tasks: TaskStats,
    /// CTA barriers executed (CM, STRICT).
    pub syncs: u64,
    /// Prefix-scan / sorted-search elements (STRICT partitioning).
    pub scan_elems: u64,
    /// Additional kernel launches the strategy needs (STRICT runs its
    /// merge-path partition as a separate kernel, as Gunrock's LB does).
    pub extra_launches: u32,
}

/// Fraction of expand memory traffic a sorted frontier saves: ascending
/// vertex order turns scattered CSR row reads into near-contiguous ones,
/// so fewer 32-byte sectors move (Fig. 4's "potentially contiguous
/// memory access"). Applied uniformly by the executor and the oracle.
pub const SORTED_BYTES_DISCOUNT: f64 = 0.25;

/// Price a workload under one strategy.
///
/// `touched[i]` is the number of edges slot `i` will process. For queue
/// frontiers, slots are exactly the queue entries; for a bitmap
/// (`bitmap = true`), slots are *all* vertices and inactive ones carry
/// `touched = 0` but still occupy a lane.
pub fn price(
    spec: &DeviceSpec,
    lb: LoadBalance,
    costs: &EdgeCosts,
    touched: &[u32],
    bitmap: bool,
) -> LbPrice {
    match lb {
        LoadBalance::Twc => price_twc(spec, costs, touched, bitmap),
        LoadBalance::Wm => price_wm(spec, costs, touched, bitmap),
        LoadBalance::Cm => price_cm(spec, costs, touched, bitmap),
        LoadBalance::Strict => price_strict(spec, costs, touched, bitmap),
    }
}

/// Price all four strategies from one traversal (oracle entry point).
pub fn price_all(
    spec: &DeviceSpec,
    costs: &EdgeCosts,
    touched: &[u32],
    bitmap: bool,
) -> [(LoadBalance, LbPrice); 4] {
    [
        (LoadBalance::Twc, price_twc(spec, costs, touched, bitmap)),
        (LoadBalance::Wm, price_wm(spec, costs, touched, bitmap)),
        (LoadBalance::Cm, price_cm(spec, costs, touched, bitmap)),
        (LoadBalance::Strict, price_strict(spec, costs, touched, bitmap)),
    ]
}

/// Minimum slots per rayon chunk when pricing in parallel.
const PAR_CHUNK: usize = 1 << 14;

/// TWC: degree-bucketed Thread / Warp / CTA mapping (B40C).
///
/// * `d < warp_size`: thread-mapped. 32 consecutive such slots share a
///   warp; lockstep means the warp runs as long as its busiest lane —
///   the intra-warp divergence that makes TWC lose on skewed frontiers.
/// * `warp_size ≤ d < cta_size`: one warp strip-mines the vertex.
/// * `d ≥ cta_size`: the whole CTA (one warp task per member warp).
fn price_twc(spec: &DeviceSpec, costs: &EdgeCosts, touched: &[u32], bitmap: bool) -> LbPrice {
    let warp = spec.warp_size;
    let cta = spec.cta_size;
    let wpc = spec.warps_per_cta() as u64;
    let tasks = touched
        .par_chunks(PAR_CHUNK)
        .fold(TaskStats::default, |mut t, chunk| {
            // Thread bucket: group small-degree slots 32 at a time.
            let mut group_max = 0u32;
            let mut group_fill = 0u32;
            for &d in chunk {
                if d < warp {
                    // Inactive bitmap slots land here with d == 0.
                    group_max = group_max.max(d);
                    group_fill += 1;
                    if group_fill == warp {
                        t.add_task(group_max as f64 * costs.lane + costs.idle);
                        group_max = 0;
                        group_fill = 0;
                    }
                } else if d < cta {
                    // Warp bucket: ceil(d / 32) lockstep steps.
                    let steps = d.div_ceil(warp) as f64;
                    t.add_task(steps * costs.lane);
                } else {
                    // CTA bucket: each of the CTA's warps strides the list.
                    let steps = d.div_ceil(cta) as f64;
                    for _ in 0..wpc {
                        t.add_task(steps * costs.lane);
                    }
                }
            }
            if group_fill > 0 {
                t.add_task(group_max as f64 * costs.lane + costs.idle);
            }
            t
        })
        .reduce(TaskStats::default, |mut a, b| {
            a.merge(&b);
            a
        });
    let _ = bitmap; // idle lanes already carried by zero-degree slots
    LbPrice { tasks, syncs: 0, scan_elems: 0, extra_launches: 0 }
}

/// WM: a warp takes 32 consecutive slots as a batch, pools their edges,
/// and strip-mines the pool with a log2(32)-step binary search per edge.
fn price_wm(spec: &DeviceSpec, costs: &EdgeCosts, touched: &[u32], bitmap: bool) -> LbPrice {
    let warp = spec.warp_size as usize;
    let per_edge = costs.lane + costs.wm_extra;
    let tasks = touched
        .par_chunks(PAR_CHUNK)
        .fold(TaskStats::default, |mut t, big| {
            for chunk in big.chunks(warp) {
                let edges: u64 = chunk.iter().map(|&d| d as u64).sum();
                let steps = edges.div_ceil(warp as u64) as f64;
                // A batch always pays at least the slot-scan cost.
                t.add_task(steps * per_edge + costs.idle);
            }
            t
        })
        .reduce(TaskStats::default, |mut a, b| {
            a.merge(&b);
            a
        });
    let _ = bitmap;
    LbPrice { tasks, syncs: 0, scan_elems: 0, extra_launches: 0 }
}

/// CM: as WM at CTA granularity — 256-slot batches, log2(256)-step search,
/// one CTA barrier per 256-edge stage.
fn price_cm(spec: &DeviceSpec, costs: &EdgeCosts, touched: &[u32], bitmap: bool) -> LbPrice {
    let cta = spec.cta_size as usize;
    let wpc = spec.warps_per_cta() as u64;
    let per_edge = costs.lane + costs.cm_extra;
    let (tasks, syncs) = touched
        .par_chunks(PAR_CHUNK)
        .fold(
            || (TaskStats::default(), 0u64),
            |(mut t, mut syncs), big| {
                for chunk in big.chunks(cta) {
                    let edges: u64 = chunk.iter().map(|&d| d as u64).sum();
                    let stages = edges.div_ceil(cta as u64);
                    let warp_cycles = stages as f64 * per_edge + costs.idle;
                    for _ in 0..wpc {
                        t.add_task(warp_cycles);
                    }
                    syncs += stages;
                }
                (t, syncs)
            },
        )
        .reduce(
            || (TaskStats::default(), 0u64),
            |(mut t, s), (t2, s2)| {
                t.merge(&t2);
                (t, s + s2)
            },
        );
    let _ = bitmap;
    LbPrice { tasks, syncs, scan_elems: 0, extra_launches: 0 }
}

/// STRICT: merge-path partitioning — every CTA gets an equal share of the
/// *edge* list, found by sorted search over the scanned offsets. Perfectly
/// balanced tasks; pays the partition scan up front (plus a compaction
/// when fed a bitmap, which has no offsets array to search).
fn price_strict(spec: &DeviceSpec, costs: &EdgeCosts, touched: &[u32], bitmap: bool) -> LbPrice {
    let total_edges: u64 = touched.par_iter().map(|&d| d as u64).sum();
    let per_edge = costs.lane + costs.strict_extra;
    let mut tasks = TaskStats::default();
    let mut scan_elems = touched.len() as u64; // offset scan for partitioning
    if bitmap {
        scan_elems += touched.len() as u64; // compaction before partitioning
    }
    let mut syncs = 0u64;
    if total_edges > 0 {
        // The merge-path partition runs as a serialized prologue — about
        // half a launch of dead time before any expand lane starts. This
        // is the fixed cost that hands small frontiers to TWC (Fig. 7)
        // while STRICT keeps the large irregular ones.
        let setup_cycles = 0.5 * spec.launch_overhead_us * spec.clock_ghz * 1e3;
        tasks.add_task(setup_cycles);
        // Aim for ~4 waves of tasks across the machine. Work divides
        // exactly (merge-path splits mid-row), so price it exactly —
        // integer step quantization would add sub-percent noise that
        // breaks monotonicity in total work.
        let slots = spec.warp_slots();
        let target_tasks = (slots * 4).max(1);
        let edges_per_task = total_edges.div_ceil(target_tasks).max(spec.warp_size as u64);
        let n_tasks = total_edges.div_ceil(edges_per_task);
        let warp = spec.warp_size as f64;
        let work = TaskStats {
            total_cycles: total_edges as f64 / warp * per_edge,
            max_cycles: edges_per_task as f64 / warp * per_edge,
            count: n_tasks,
        };
        tasks.merge(&work);
        syncs = n_tasks; // one barrier per CTA chunk hand-off
    }
    // The sorted-search partition runs as its own kernel before the
    // expand proper.
    LbPrice { tasks, syncs, scan_elems, extra_launches: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Direction;

    fn spec() -> DeviceSpec {
        DeviceSpec::k40m()
    }

    fn costs() -> EdgeCosts {
        edge_costs(&spec(), Direction::Push, false)
    }

    /// A uniform machine-filling workload: 64Ki slots of degree 8 (small
    /// workloads leave slots idle and the makespan degenerates to the
    /// longest task, which is not what this test probes).
    fn uniform() -> Vec<u32> {
        vec![8; 1 << 16]
    }

    /// A hub workload: one slot of degree 100_000 among 1023 of degree 2.
    fn hubby() -> Vec<u32> {
        let mut v = vec![2; 1024];
        v[512] = 100_000;
        v
    }

    fn time_of(lb: LoadBalance, touched: &[u32]) -> f64 {
        let p = price(&spec(), lb, &costs(), touched, false);
        let prof = gswitch_simt::KernelProfile {
            tasks: p.tasks,
            syncs: p.syncs,
            scan_elems: p.scan_elems,
            launches: 0,
            ..Default::default()
        };
        spec().kernel_time_ms(&prof)
    }

    #[test]
    fn twc_cheapest_on_uniform_work() {
        let u = uniform();
        let twc = time_of(LoadBalance::Twc, &u);
        for lb in [LoadBalance::Wm, LoadBalance::Cm, LoadBalance::Strict] {
            assert!(twc <= time_of(lb, &u) * 1.05, "TWC should win on uniform, lost to {lb:?}");
        }
    }

    #[test]
    fn strict_wins_on_hub() {
        let h = hubby();
        let strict = time_of(LoadBalance::Strict, &h);
        let twc = time_of(LoadBalance::Twc, &h);
        assert!(strict < twc, "strict {strict} vs twc {twc}");
    }

    #[test]
    fn wm_beats_twc_on_skewed_small_degrees() {
        // Degrees alternate 0 and 30: TWC's thread bucket wastes ~15/30
        // lanes, WM pools the edges.
        let v: Vec<u32> = (0..2048).map(|i| if i % 2 == 0 { 30 } else { 0 }).collect();
        assert!(time_of(LoadBalance::Wm, &v) < time_of(LoadBalance::Twc, &v));
    }

    #[test]
    fn all_strategies_price_empty_workload() {
        for lb in [LoadBalance::Twc, LoadBalance::Wm, LoadBalance::Cm, LoadBalance::Strict] {
            let p = price(&spec(), lb, &costs(), &[], false);
            assert_eq!(p.tasks.count, 0, "{lb:?}");
            assert_eq!(p.tasks.total_cycles, 0.0);
        }
    }

    #[test]
    fn strict_tasks_are_balanced() {
        let p = price(&spec(), LoadBalance::Strict, &costs(), &hubby(), false);
        // All edge-processing tasks are identical; only the partition
        // prologue (one fixed setup task) breaks exact uniformity.
        assert!(p.tasks.imbalance() <= 3.0, "imbalance {}", p.tasks.imbalance());
        assert!(p.scan_elems >= 1024);
        // No task is hub-sized: the hub's 100k edges are split evenly.
        let hub_cycles = 100_000.0 * costs().lane;
        assert!(p.tasks.max_cycles < hub_cycles / 10.0);
    }

    #[test]
    fn twc_hub_lands_in_cta_bucket() {
        let p = price(&spec(), LoadBalance::Twc, &costs(), &[100_000], false);
        // 8 warp tasks (one per CTA warp), each ceil(1e5/256) steps.
        assert_eq!(p.tasks.count, 8);
        let expect = (100_000u32.div_ceil(256)) as f64 * costs().lane;
        assert!((p.tasks.max_cycles - expect).abs() < 1.0);
    }

    #[test]
    fn bitmap_mode_charges_strict_compaction() {
        let v = vec![0u32; 4096];
        let q = price(&spec(), LoadBalance::Strict, &costs(), &v, false);
        let b = price(&spec(), LoadBalance::Strict, &costs(), &v, true);
        assert!(b.scan_elems > q.scan_elems);
    }

    #[test]
    fn pull_cheaper_per_edge_than_push() {
        let s = spec();
        let push = edge_costs(&s, Direction::Push, false);
        let pull = edge_costs(&s, Direction::Pull, false);
        assert!(pull.lane < push.lane);
    }

    #[test]
    fn sorted_locality_discount_applies() {
        let s = spec();
        let plain = edge_costs(&s, Direction::Push, false);
        let sorted = edge_costs(&s, Direction::Push, true);
        assert!(sorted.lane < plain.lane);
    }

    #[test]
    fn twc_bucket_boundaries() {
        let s = spec();
        let c = costs();
        // Degree 31 = thread bucket (one group task); 32 = warp bucket
        // (one task of 1 step); 256 = CTA bucket (8 warp tasks).
        let p31 = price(&s, LoadBalance::Twc, &c, &[31], false);
        assert_eq!(p31.tasks.count, 1);
        let p32 = price(&s, LoadBalance::Twc, &c, &[32], false);
        assert_eq!(p32.tasks.count, 1);
        assert!((p32.tasks.max_cycles - c.lane).abs() < 1e-9);
        let p256 = price(&s, LoadBalance::Twc, &c, &[256], false);
        assert_eq!(p256.tasks.count, 8);
    }

    #[test]
    fn price_monotone_in_degree() {
        let s = spec();
        let c = costs();
        for lb in [LoadBalance::Twc, LoadBalance::Wm, LoadBalance::Cm, LoadBalance::Strict] {
            let lo = price(&s, lb, &c, &vec![4u32; 4096], false);
            let hi = price(&s, lb, &c, &vec![16u32; 4096], false);
            assert!(hi.tasks.total_cycles > lo.tasks.total_cycles, "{lb:?} not monotone");
        }
    }

    #[test]
    fn wm_batches_pay_minimum_scan() {
        // 64 empty slots = 2 WM batches, each paying at least the idle
        // scan — never zero tasks.
        let p = price(&spec(), LoadBalance::Wm, &costs(), &[0u32; 64], true);
        assert_eq!(p.tasks.count, 2);
        assert!(p.tasks.total_cycles > 0.0);
    }

    #[test]
    fn cm_syncs_scale_with_edges() {
        let s = spec();
        let c = costs();
        let small = price(&s, LoadBalance::Cm, &c, &vec![1u32; 256], false);
        let big = price(&s, LoadBalance::Cm, &c, &vec![64u32; 256], false);
        assert!(big.syncs > small.syncs);
    }

    #[test]
    fn strict_task_count_tracks_machine_width() {
        let s = spec();
        let p = price(&s, LoadBalance::Strict, &costs(), &vec![100u32; 100_000], false);
        // ~4 waves over the warp slots.
        let expect = s.warp_slots() * 4;
        assert!(
            (p.tasks.count as i64 - expect as i64).unsigned_abs() <= expect / 2,
            "tasks {} vs expected ~{expect}",
            p.tasks.count
        );
    }

    #[test]
    fn price_all_matches_individual() {
        let v = hubby();
        let all = price_all(&spec(), &costs(), &v, false);
        for (lb, p) in all {
            let q = price(&spec(), lb, &costs(), &v, false);
            assert_eq!(p.tasks.total_cycles, q.tasks.total_cycles, "{lb:?}");
            assert_eq!(p.tasks.count, q.tasks.count);
        }
    }
}
