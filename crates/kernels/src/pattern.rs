//! The five algorithmic patterns and their candidates (§3 of the paper).

use serde::{Deserialize, Serialize};

/// P1 — Direction: push touches out-edges of active vertices and updates
/// destinations with atomics; pull touches in-edges of receiver vertices
/// and combines atomic-free, skipping edges once satisfied (Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Data-driven scatter from the active set.
    Push,
    /// Gather into not-yet-satisfied vertices.
    Pull,
}

/// P2 — Active-set data structure (Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsFormat {
    /// One bit per vertex. No generation scan, but warp lanes assigned
    /// inactive vertices idle.
    Bitmap,
    /// Compact queue built with warp-aggregated atomic append: cheap to
    /// generate (coalesced), out of order.
    UnsortedQueue,
    /// Compact queue built with a device-wide prefix scan: costly to
    /// generate, but the Expand enjoys contiguous access.
    SortedQueue,
}

/// P3 — Load balancing (Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadBalance {
    /// Thread/Warp/CTA mapping by degree bucket (B40C). Lowest overhead,
    /// worst balance.
    Twc,
    /// Warp Mapping: a warp stages 32 vertices' edges through shared
    /// memory with a log2(32)-step binary search per edge batch.
    Wm,
    /// CTA Mapping: as WM at CTA granularity with log2(cta_size) search
    /// and CTA barriers.
    Cm,
    /// Equal edges per CTA via sorted search over the offsets (merge-path
    /// LB partitioning). Best balance, highest fixed overhead.
    Strict,
}

/// P4 — Stepping: how the dynamic priority threshold of a monotonic
/// algorithm moves between iterations (±35% active-edge trigger, §3 P4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SteppingDelta {
    /// Widen the priority window (workload shrank — seek parallelism).
    Increase,
    /// Narrow the window (workload exploded — seek work efficiency).
    Decrease,
    /// Keep the current window.
    Remain,
}

/// P5 — Kernel fusion (Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fusion {
    /// Separate Filter and Expand kernels with deduplicated frontiers.
    Standalone,
    /// One kernel: Expand emits the next frontier directly, tolerating
    /// duplicates; saves a launch and the dedup/scan pass.
    Fused,
}

/// The per-iteration kernel configuration the Selector assembles. One value
/// of this struct identifies one of the paper's variants (2 directions × 3
/// formats × 4 load balancers × 2 fusion modes = 48 expand shapes, × 3
/// stepping moves = 144 expand candidates; 12 filter candidates).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelConfig {
    /// P1 direction.
    pub direction: Direction,
    /// P2 active-set format.
    pub format: AsFormat,
    /// P3 load-balancing strategy.
    pub lb: LoadBalance,
    /// P4 stepping move (only consulted by priority-driven apps).
    pub stepping: SteppingDelta,
    /// P5 fusion mode.
    pub fusion: Fusion,
}

impl KernelConfig {
    /// The paper's reference static configuration (what a non-switching
    /// push-based framework would run): push + unsorted queue + TWC +
    /// standalone.
    pub fn push_baseline() -> Self {
        KernelConfig {
            direction: Direction::Push,
            format: AsFormat::UnsortedQueue,
            lb: LoadBalance::Twc,
            stepping: SteppingDelta::Remain,
            fusion: Fusion::Standalone,
        }
    }

    /// Gunrock-like static configuration: push + LB(strict) partitioning.
    pub fn gunrock_like() -> Self {
        KernelConfig {
            direction: Direction::Push,
            format: AsFormat::UnsortedQueue,
            lb: LoadBalance::Strict,
            stepping: SteppingDelta::Remain,
            fusion: Fusion::Standalone,
        }
    }

    /// Is the fused variant legal for an app? (Needs duplicate tolerance
    /// and push direction — pull produces no queue to fuse over.)
    pub fn fusion_legal(dup_tolerant: bool, direction: Direction) -> bool {
        dup_tolerant && direction == Direction::Push
    }

    /// Enumerate every (direction, format, lb, fusion) shape; stepping is
    /// orthogonal and omitted. Used by brute-force oracles and tests.
    pub fn all_shapes() -> Vec<KernelConfig> {
        let mut v = Vec::with_capacity(48);
        for &direction in &[Direction::Push, Direction::Pull] {
            for &format in &[AsFormat::Bitmap, AsFormat::UnsortedQueue, AsFormat::SortedQueue] {
                for &lb in
                    &[LoadBalance::Twc, LoadBalance::Wm, LoadBalance::Cm, LoadBalance::Strict]
                {
                    for &fusion in &[Fusion::Standalone, Fusion::Fused] {
                        v.push(KernelConfig {
                            direction,
                            format,
                            lb,
                            stepping: SteppingDelta::Remain,
                            fusion,
                        });
                    }
                }
            }
        }
        v
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::push_baseline()
    }
}

impl std::fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}/{:?}/{:?}/{:?}/{:?}",
            self.direction, self.format, self.lb, self.stepping, self.fusion
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shapes_covers_48() {
        let shapes = KernelConfig::all_shapes();
        assert_eq!(shapes.len(), 48);
        let uniq: std::collections::HashSet<_> = shapes.iter().collect();
        assert_eq!(uniq.len(), 48);
    }

    #[test]
    fn variant_count_matches_paper() {
        // 48 shapes × 3 stepping moves = 144 expand candidates (§4.5).
        assert_eq!(KernelConfig::all_shapes().len() * 3, 144);
    }

    #[test]
    fn fusion_legality() {
        assert!(KernelConfig::fusion_legal(true, Direction::Push));
        assert!(!KernelConfig::fusion_legal(false, Direction::Push));
        assert!(!KernelConfig::fusion_legal(true, Direction::Pull));
    }

    #[test]
    fn display_is_compact() {
        let s = KernelConfig::push_baseline().to_string();
        assert!(s.contains("Push") && s.contains("Twc"));
    }
}
